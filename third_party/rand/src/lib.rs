//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets, so
//! streams (and therefore every seeded simulation) match the real crate.

/// Core random-number generation: the raw output interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (identical to
    /// real rand's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        if p >= 1.0 {
            return true;
        }
        // 2^64 * p compared against a full 64-bit draw (exact for p = 0).
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: small, fast, and statistically strong — the same
    /// generator real `rand` 0.8 uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // The all-zero state is a fixed point; nudge it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_frequencies_are_sane() {
        let mut r = SmallRng::seed_from_u64(42);
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..20_000).filter(|_| r.gen_bool(p)).count();
            let frac = hits as f64 / 20_000.0;
            assert!((frac - p).abs() < 0.02, "p={p} measured {frac}");
        }
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn all_zero_seed_is_escaped() {
        let mut r = SmallRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
