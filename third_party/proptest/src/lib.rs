//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the assertion
//!   message; inputs are whatever the deterministic generator produced.
//! * **Deterministic.** Case `i` of every test draws from a generator
//!   seeded by `i`, so failures reproduce bit-identically on every run —
//!   no `proptest-regressions` files.
//! * **Generation-only strategies.** [`strategy::Strategy`] is just
//!   "produce a value from an RNG"; the supported combinators are integer
//!   ranges, tuples, [`collection::vec`], [`sample::select`] and
//!   [`arbitrary::any`].

/// Test-runner configuration and the per-case RNG.
pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 96 }
        }
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a test.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0x5151_5151_0000_0000 ^ u64::from(case),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0)");
            // Multiply-shift reduction; bias is negligible for test sizes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A / a),
        (A / a, B / b),
        (A / a, B / b, C / c),
        (A / a, B / b, C / c, D / d),
    );

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

/// `any::<T>()`: full-range values of primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw a full-range value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    /// Crate alias so `prop::sample::select(..)` etc. resolve.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
        crate::collection::vec((1u64..100, any::<u64>()), 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u8..9, b in 10u64..20, c in 0usize..1) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert_eq!(c, 0);
        }

        /// Vec strategy respects length bounds; tuple elements in range.
        #[test]
        fn vec_and_tuples(v in pairs()) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&(a, _)| (1..100).contains(&a)));
        }

        /// Select only yields listed options.
        #[test]
        fn select_is_closed(x in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8, "got {}", x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn range_strategies_cover_span() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[(0u8..6).generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 should appear");
    }
}
