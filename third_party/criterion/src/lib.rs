//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Benches compile and run under `cargo bench`; each benchmark executes its
//! closure a small fixed number of iterations and prints the mean wall time
//! (plus throughput when configured). There is no statistical analysis,
//! plotting, or baseline comparison — just cheap, dependency-free timing.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock time measurement (the only one supported).
    pub struct WallTime;
}

/// Per-iteration work, used to print a rate next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label a benchmark by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Label a benchmark by function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and records their timing.
pub struct Bencher {
    iters: u32,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, running it a small fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters);
    }
}

fn report(group: &str, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (mean_ns / 1e9) / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("bench {label:<40} {:>12.0} ns/iter{rate}", mean_ns);

    // Machine-readable export for the perf-regression gate: when
    // HPSOCK_BENCH_JSON names a file, append one JSON line per result.
    // Appending lets several bench binaries (and repeated runs, for a
    // best-of-N reading) share one output file.
    if let Ok(path) = std::env::var("HPSOCK_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write as _;
            let line = format!("{{\"id\":\"{label}\",\"mean_ns\":{mean_ns:.1}}}");
            let res = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = res {
                eprintln!("warning: HPSOCK_BENCH_JSON={path}: {e}");
            }
        }
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Heavy simulated workloads make many iterations pointless here;
        // three is enough to amortize warm-up for a smoke-level signal.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            _m: PhantomData,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            mean_ns: 0.0,
        };
        f(&mut b);
        report("", &id.to_string(), b.mean_ns, None);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    _m: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Attach a throughput so results also print as a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.mean_ns, self.throughput);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.mean_ns, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
