//! An interactive digitized-microscopy session against the visualization
//! server: a pathologist opens a slide (complete update), pans around
//! (partial updates) and zooms in (zoom queries), over each sockets layer.
//!
//! Run with: `cargo run --release --example microscopy_server`

use hpsock_net::{Cluster, TransportKind};
use hpsock_sim::Sim;
use hpsock_vizserver::{
    complete_update, partial_update, zoom_query, BlockedImage, ComputeModel, PipelineCfg, Plan,
    QueryDesc, QueryDriver, QueryKind, VizPipeline,
};
use socketvia::Provider;

/// A plausible viewing session: open, pan x4, zoom, pan x2, re-open.
fn session(img: &BlockedImage) -> Vec<QueryDesc> {
    let mut s = vec![complete_update(img)];
    for _ in 0..4 {
        s.push(partial_update(img, 1));
    }
    s.push(zoom_query(img));
    for _ in 0..2 {
        s.push(partial_update(img, 1));
    }
    s.push(complete_update(img));
    s
}

fn run_session(kind: TransportKind, block_bytes: u64) -> (f64, f64, f64) {
    let img = BlockedImage::paper_image(block_bytes);
    let mut sim = Sim::new(2026);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(kind), ComputeModel::paper_linear());
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::ClosedLoop(session(&img)));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().unwrap() = pipe.repo_pids();
    sim.run();
    let d: &QueryDriver = sim.process(driver_pid).unwrap();
    (
        d.mean_latency_us(QueryKind::Complete).unwrap() / 1_000.0,
        d.mean_latency_us(QueryKind::Partial).unwrap() / 1_000.0,
        d.mean_latency_us(QueryKind::Zoom).unwrap() / 1_000.0,
    )
}

fn main() {
    println!("== digitized microscopy session: 16 MB slide, 3x3 pipeline, 18 ns/B viewing ==\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "configuration", "open (ms)", "pan (ms)", "zoom (ms)"
    );
    // The block sizes an application developer would pick per substrate
    // (the perfect-pipelining points of paper S5.2.3).
    for (label, kind, block) in [
        ("TCP, 16KB blocks", TransportKind::KTcp, 16_384u64),
        ("SocketVIA, 16KB blocks", TransportKind::SocketVia, 16_384),
        ("SocketVIA, 2KB blocks", TransportKind::SocketVia, 2_048),
    ] {
        let (open, pan, zoom) = run_session(kind, block);
        println!("{label:<22} {open:>12.1} {pan:>12.2} {zoom:>12.2}");
    }
    println!("\nSmaller blocks on the high-performance substrate keep the slide");
    println!("opening fast while making pans and zooms interactive — the paper's");
    println!("data-repartitioning result.");
}
