//! Block-size tuning: the bandwidth/latency trade-off behind every result
//! in the paper, and what the DR planner picks for concrete guarantees.
//!
//! Run with: `cargo run --release --example block_size_tuning`

use hpsock_net::TransportKind;
use hpsock_vizserver::{block_size_for_partial_latency, block_size_for_update_rate};
use socketvia::PerfCurve;

const IMAGE: u64 = 16 * 1024 * 1024;

fn main() {
    let tcp = PerfCurve::from_kind(TransportKind::KTcp);
    let sv = PerfCurve::from_kind(TransportKind::SocketVia);

    // 1. The raw trade-off: one block's transfer time vs the bandwidth a
    //    stream of such blocks sustains.
    println!("== the chunk-size trade-off ==\n");
    println!(
        "{:>10} {:>22} {:>22}",
        "block", "TCP  t(s) / BW", "SocketVIA  t(s) / BW"
    );
    for p in 9..=17 {
        let s = 1u64 << p;
        println!(
            "{:>8} B {:>10.0}us {:>6.0}Mb {:>10.0}us {:>6.0}Mb",
            s,
            tcp.transfer_us(s),
            tcp.bandwidth_mbps(s),
            sv.transfer_us(s),
            sv.bandwidth_mbps(s),
        );
    }

    // 2. What the planner picks for an update-rate guarantee.
    println!("\n== blocks for a full-update rate guarantee (16 MB image) ==\n");
    println!("{:>8} {:>12} {:>12}", "rate", "TCP", "SocketVIA");
    for ups in [2.0, 2.5, 3.0, 3.25, 3.5, 4.0] {
        let t = block_size_for_update_rate(&tcp, IMAGE, ups)
            .map(|b| format!("{b} B"))
            .unwrap_or_else(|| "infeasible".into());
        let s = block_size_for_update_rate(&sv, IMAGE, ups)
            .map(|b| format!("{b} B"))
            .unwrap_or_else(|| "infeasible".into());
        println!("{ups:>7.2} {t:>12} {s:>12}");
    }

    // 3. What the planner picks for a partial-update latency guarantee.
    println!("\n== blocks for a partial-update latency guarantee ==\n");
    println!("{:>8} {:>12} {:>12}", "bound", "TCP", "SocketVIA");
    for us in [1000.0, 500.0, 200.0, 100.0, 50.0] {
        let t = block_size_for_partial_latency(&tcp, IMAGE, us)
            .map(|b| format!("{b} B"))
            .unwrap_or_else(|| "infeasible".into());
        let s = block_size_for_partial_latency(&sv, IMAGE, us)
            .map(|b| format!("{b} B"))
            .unwrap_or_else(|| "infeasible".into());
        println!("{us:>6.0}us {t:>12} {s:>12}");
    }
    println!("\nAt 50us kernel TCP cannot fit any block under the bound (its");
    println!("small-message latency alone is ~47.5us) — the 'TCP drops out'");
    println!("behaviour of the paper's Figure 8.");
}
