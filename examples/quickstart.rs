//! Quickstart: measure the two sockets layers on a simulated two-node
//! cLAN cluster and see the paper's core observation in one screen.
//!
//! Run with: `cargo run --release --example quickstart`

use hpsock_net::TransportKind;
use socketvia::{curves::crossover, microbench, PerfCurve, Provider};

fn main() {
    println!("== socketvia quickstart: micro-benchmarking the substrates ==\n");

    // 1. Ping-pong latency and streamed bandwidth, through the
    //    discrete-event engine (paper Figure 4).
    println!(
        "{:<12} {:>14} {:>16}",
        "transport", "latency (4B)", "bandwidth (64KB)"
    );
    for kind in TransportKind::PAPER_SET {
        let provider = Provider::new(kind);
        let lat = microbench::oneway_us(&provider, 4, 16);
        let bw = microbench::streaming_mbps(&provider, 65_536, 128);
        println!("{:<12} {:>11.2} us {:>11.1} Mbps", kind.label(), lat, bw);
    }

    // 2. The insight behind data repartitioning (paper Figure 2): a high
    //    performance substrate reaches a required bandwidth at a much
    //    smaller message size, so re-chunking the dataset cuts latency far
    //    beyond the direct substrate speedup.
    let tcp = PerfCurve::measure(&Provider::new(TransportKind::KTcp));
    let sv = PerfCurve::measure(&Provider::new(TransportKind::SocketVia));
    let x = crossover(&tcp, &sv, 400.0).expect("both reach 400 Mbps");
    println!("\nTo sustain 400 Mbps:");
    println!(
        "  kernel TCP needs {} B messages  -> chunk latency {:.0} us (L1)",
        x.u1, x.l1_us
    );
    println!(
        "  SocketVIA at the same chunk     -> {:.0} us (L2, direct win: {:.1}x)",
        x.l2_us,
        x.l1_us / x.l2_us
    );
    println!(
        "  SocketVIA re-chunked to {} B  -> {:.0} us (L3, combined win: {:.1}x)",
        x.u2,
        x.l3_us,
        x.l1_us / x.l3_us
    );
}
