//! Load balancing on a heterogeneous cluster: round-robin vs
//! demand-driven buffer scheduling when compute nodes randomly slow down,
//! and how fast the balancer notices a node going bad.
//!
//! Run with: `cargo run --release --example load_balancing`

use hpsock_datacutter::{Policy, SpeedModel};
use hpsock_net::TransportKind;
use hpsock_sim::{Dur, SimTime};
use hpsock_vizserver::hetero::lb_execution_time;
use hpsock_vizserver::{rr_reaction_time, LbSetup};

fn main() {
    println!("== load balancing 2 MB of blocks across 3 workers, 18 ns/B compute ==\n");

    // 1. Execution time with one persistently slow worker: demand-driven
    //    scheduling routes work away from it, round-robin keeps feeding it.
    println!("one worker persistently 8x slower:");
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "transport", "round-robin", "demand-driven", "DD win"
    );
    let speeds = [
        SpeedModel::Uniform(8.0),
        SpeedModel::Uniform(1.0),
        SpeedModel::Uniform(1.0),
    ];
    for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
        let setup = LbSetup::paper(kind);
        let blocks = ((2 * 1024 * 1024) / setup.block_bytes) as u32;
        let rr = lb_execution_time(&setup, Policy::RoundRobinAcked, &speeds, blocks, 7);
        let dd = lb_execution_time(&setup, Policy::demand_driven(), &speeds, blocks, 7);
        println!(
            "{:<12} {:>13.1} ms {:>13.1} ms {:>9.2}x",
            kind.label(),
            rr.as_millis_f64(),
            dd.as_millis_f64(),
            rr.as_micros_f64() / dd.as_micros_f64()
        );
    }

    // 2. Reaction time: a node turns 4x slower mid-run; how long until the
    //    balancer's acknowledgment stream reveals it? (paper Figure 10)
    println!("\none node turns 4x slower mid-run (round-robin):");
    println!(
        "{:<12} {:>12} {:>18}",
        "transport", "block", "reaction time"
    );
    let mut reactions = Vec::new();
    for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
        let setup = LbSetup::paper(kind);
        let emit = Dur::nanos((setup.ns_per_byte * setup.block_bytes as f64) as u64);
        let slow_at = SimTime::ZERO + emit.mul(100);
        let r = rr_reaction_time(&setup, 4.0, slow_at, 300, 7).expect("reaction observed");
        println!(
            "{:<12} {:>9} B {:>15.1} us",
            kind.label(),
            setup.block_bytes,
            r.as_micros_f64()
        );
        reactions.push(r.as_micros_f64());
    }
    println!(
        "\nSmaller blocks mean cheaper mistakes: the balancer reacts {:.1}x faster",
        reactions[1] / reactions[0]
    );
    println!("on the high-performance substrate (the paper reports a factor of 8).");
}
