//! The `t(s) = a + b·s` performance-curve abstraction and the planning
//! primitives behind the paper's data-repartitioning (DR) insight.
//!
//! An application developer characterizes a sockets layer by its
//! small-message latency `a` (from the ping-pong benchmark) and its peak
//! per-byte cost `b` (from the bandwidth benchmark). The paper's Figure 2
//! observations fall out directly:
//!
//! * **(a)** to attain a required bandwidth `B`, kernel sockets need message
//!   size `U1` while a high-performance substrate needs only `U2 < U1`
//!   ([`PerfCurve::min_size_for_bandwidth_mbps`]);
//! * **(b)** switching substrate at the same message size drops latency
//!   `L1 → L2`, and *re-chunking* to `U2` drops it further to `L3`
//!   ([`crossover`]).

use crate::microbench;
use crate::provider::Provider;
use hpsock_net::{PathCosts, TransportKind};

/// A fitted `t(s) = a + b·s` transfer-time curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfCurve {
    /// Latency intercept in microseconds (small-message one-way latency).
    pub a_us: f64,
    /// Per-byte cost in nanoseconds at peak bandwidth.
    pub b_ns_per_byte: f64,
}

impl PerfCurve {
    /// Curve from the calibrated closed-form model for `kind`.
    pub fn from_kind(kind: TransportKind) -> PerfCurve {
        PerfCurve::from_costs(&PathCosts::for_kind(kind))
    }

    /// Curve from an explicit cost model.
    pub fn from_costs(costs: &PathCosts) -> PerfCurve {
        let a_us = costs.oneway_latency(1).as_micros_f64();
        let big = 1u64 << 20;
        let b_ns_per_byte = costs.bottleneck_occupancy(big).as_nanos() as f64 / big as f64;
        PerfCurve {
            a_us,
            b_ns_per_byte,
        }
    }

    /// Curve *measured* with the micro-benchmarks through the
    /// discrete-event engine (what a real application developer would do).
    pub fn measure(provider: &Provider) -> PerfCurve {
        let a_us = microbench::oneway_us(provider, 4, 16);
        let big = 65_536u64;
        let mbps = microbench::streaming_mbps(provider, big, 128);
        // mbps = 8 bits/byte / (b ns/byte) * 1000.
        let b_ns_per_byte = 8_000.0 / mbps;
        PerfCurve {
            a_us,
            b_ns_per_byte,
        }
    }

    /// Transfer time in microseconds for an `s`-byte message.
    pub fn transfer_us(&self, s: u64) -> f64 {
        self.a_us + self.b_ns_per_byte * s as f64 / 1_000.0
    }

    /// Sustained bandwidth in Mbps when streaming `s`-byte messages
    /// (per-message overhead amortized over the pipeline: the bottleneck is
    /// `a` only below the pipelining threshold; we use the conservative
    /// unpipelined form `8·s / t(s)`, which matches the paper's measured
    /// single-stream curves).
    pub fn bandwidth_mbps(&self, s: u64) -> f64 {
        let t_ns = self.transfer_us(s) * 1_000.0;
        if t_ns <= 0.0 {
            0.0
        } else {
            8.0 * s as f64 / t_ns * 1_000.0
        }
    }

    /// Peak (asymptotic) bandwidth in Mbps.
    pub fn peak_bandwidth_mbps(&self) -> f64 {
        8_000.0 / self.b_ns_per_byte
    }

    /// Smallest message size attaining `target` Mbps, or `None` if the
    /// target exceeds peak bandwidth. This is Figure 2(a)'s U1/U2.
    pub fn min_size_for_bandwidth_mbps(&self, target: f64) -> Option<u64> {
        if target <= 0.0 {
            return Some(1);
        }
        // 8000 * s / (a_us*1000 + b*s) = target  =>  s*(8000 - target*b) = target*a_ns.
        let denom = 8_000.0 - target * self.b_ns_per_byte;
        if denom <= 0.0 {
            return None;
        }
        let s = target * (self.a_us * 1_000.0) / denom;
        Some(s.ceil().max(1.0) as u64)
    }

    /// Largest message size whose transfer time stays within `limit_us`,
    /// or `None` if even a 1-byte message exceeds the limit.
    pub fn max_size_for_latency_us(&self, limit_us: f64) -> Option<u64> {
        if self.transfer_us(1) > limit_us {
            return None;
        }
        let s = (limit_us - self.a_us) * 1_000.0 / self.b_ns_per_byte;
        Some(s.floor().max(1.0) as u64)
    }
}

/// The Figure 2(b) decomposition for a required bandwidth: message sizes
/// `U1` (baseline) and `U2` (substrate), and latencies `L1` (baseline at
/// U1), `L2` (substrate at U1 — the *direct* improvement) and `L3`
/// (substrate at U2 — the *indirect* improvement from repartitioning).
#[derive(Debug, Clone, Copy)]
pub struct Crossover {
    /// Message size the baseline needs for the required bandwidth.
    pub u1: u64,
    /// Message size the substrate needs for the same bandwidth.
    pub u2: u64,
    /// Baseline latency at `u1`, microseconds.
    pub l1_us: f64,
    /// Substrate latency at `u1`, microseconds.
    pub l2_us: f64,
    /// Substrate latency at `u2`, microseconds.
    pub l3_us: f64,
}

/// Compute the Figure 2 crossover between a `baseline` and a `substrate`
/// curve for a required bandwidth. Returns `None` if either curve cannot
/// attain the bandwidth.
pub fn crossover(
    baseline: &PerfCurve,
    substrate: &PerfCurve,
    required_mbps: f64,
) -> Option<Crossover> {
    let u1 = baseline.min_size_for_bandwidth_mbps(required_mbps)?;
    let u2 = substrate.min_size_for_bandwidth_mbps(required_mbps)?;
    Some(Crossover {
        u1,
        u2,
        l1_us: baseline.transfer_us(u1),
        l2_us: substrate.transfer_us(u1),
        l3_us: substrate.transfer_us(u2),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_curves_match_calibration() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        assert!((tcp.a_us - 47.5).abs() < 2.0, "TCP a = {}", tcp.a_us);
        assert!((sv.a_us - 9.5).abs() < 0.5, "SocketVIA a = {}", sv.a_us);
        assert!((tcp.peak_bandwidth_mbps() - 510.0).abs() < 20.0);
        assert!((sv.peak_bandwidth_mbps() - 763.0).abs() < 25.0);
    }

    #[test]
    fn measured_curve_close_to_closed_form() {
        let p = Provider::new(TransportKind::SocketVia);
        let m = PerfCurve::measure(&p);
        let c = PerfCurve::from_kind(TransportKind::SocketVia);
        assert!((m.a_us - c.a_us).abs() / c.a_us < 0.1, "a: {m:?} vs {c:?}");
        assert!(
            (m.b_ns_per_byte - c.b_ns_per_byte).abs() / c.b_ns_per_byte < 0.1,
            "b: {m:?} vs {c:?}"
        );
    }

    #[test]
    fn size_for_bandwidth_roundtrip() {
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        for target in [100.0, 300.0, 500.0, 700.0] {
            let s = sv.min_size_for_bandwidth_mbps(target).unwrap();
            assert!(sv.bandwidth_mbps(s) >= target * 0.999);
            if s > 1 {
                assert!(sv.bandwidth_mbps(s - 1) < target * 1.001);
            }
        }
        assert!(
            sv.min_size_for_bandwidth_mbps(800.0).is_none(),
            "beyond peak"
        );
    }

    #[test]
    fn size_for_latency_roundtrip() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let s = tcp.max_size_for_latency_us(500.0).unwrap();
        assert!(tcp.transfer_us(s) <= 500.0);
        assert!(tcp.transfer_us(s + 1_000) > 500.0 || s > 100_000);
        // TCP cannot meet a 40us bound at all (a = 47.5us): Figure 8's
        // "TCP drops out" behaviour.
        assert!(tcp.max_size_for_latency_us(40.0).is_none());
    }

    #[test]
    fn figure2_crossover_shape() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        let x = crossover(&tcp, &sv, 400.0).unwrap();
        assert!(x.u2 < x.u1 / 4, "U2={} far below U1={}", x.u2, x.u1);
        assert!(x.l2_us < x.l1_us, "direct improvement");
        assert!(
            x.l3_us < x.l2_us,
            "indirect improvement from repartitioning"
        );
    }

    #[test]
    fn trivial_targets() {
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        assert_eq!(sv.min_size_for_bandwidth_mbps(0.0), Some(1));
        assert!(sv.max_size_for_latency_us(5.0).is_none(), "below intercept");
    }
}
