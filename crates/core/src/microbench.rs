//! The two standard sockets micro-benchmarks, run through the
//! discrete-event engine: ping-pong latency and streamed bandwidth.
//! Together they regenerate the paper's Figure 4.
//!
//! As in the paper, *latency* is half the mean round-trip time of a
//! ping-pong with equal-size messages in both directions, and *bandwidth*
//! is measured by streaming many back-to-back messages and dividing bytes
//! delivered by the time of the last delivery.

use crate::provider::Provider;
use hpsock_net::{fault, Cluster, ConnId, Delivery, NodeId, StreamError, StreamErrorKind};
use hpsock_sim::{Ctx, Message, Probe, Process, Sim, SimTime};

/// One point of the latency series (Figure 4a).
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub msg_size: u64,
    /// Mean one-way latency in microseconds.
    pub oneway_us: f64,
}

/// One point of the bandwidth series (Figure 4b).
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    /// Message size in bytes.
    pub msg_size: u64,
    /// Achieved bandwidth in Mbps.
    pub mbps: f64,
}

/// The initiator side of the ping-pong: sends, waits for the echo,
/// accumulates round-trip times.
struct Pinger {
    net: hpsock_net::Network,
    conn_out: ConnId,
    bytes: u64,
    remaining: u32,
    warmup: u32,
    rtt_us_sum: f64,
    rtt_count: u32,
    sent_at: SimTime,
}

impl Process for Pinger {
    fn name(&self) -> String {
        "pinger".into()
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sent_at = ctx.now();
        self.net
            .send(ctx, self.conn_out, self.bytes, Message::new(()));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                self.net.consumed(ctx, d.conn, d.msg_id);
                let rtt = ctx.now().since(self.sent_at).as_micros_f64();
                if self.warmup > 0 {
                    self.warmup -= 1;
                } else {
                    self.rtt_us_sum += rtt;
                    self.rtt_count += 1;
                }
                if self.remaining > 0 {
                    self.remaining -= 1;
                    self.sent_at = ctx.now();
                    self.net
                        .send(ctx, self.conn_out, self.bytes, Message::new(()));
                }
                return;
            }
            Err(msg) => msg,
        };
        // Under an injected fault plan a dropped ping surfaces here as a
        // stream error; resend it so the benchmark rides out the loss —
        // the eventual RTT honestly includes the detect timeout.
        let e = msg
            .downcast::<StreamError>()
            .expect("pinger expects deliveries or stream errors");
        if matches!(e.kind, StreamErrorKind::Lost) {
            self.net
                .send(ctx, self.conn_out, self.bytes, Message::new(()));
        }
    }
}

/// The echo side of the ping-pong.
struct Ponger {
    net: hpsock_net::Network,
    conn_back: ConnId,
}

impl Process for Ponger {
    fn name(&self) -> String {
        "ponger".into()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                self.net.consumed(ctx, d.conn, d.msg_id);
                self.net
                    .send(ctx, self.conn_back, d.bytes, Message::new(()));
                return;
            }
            Err(msg) => msg,
        };
        // A lost echo (fault plan active) comes back as a stream error;
        // re-echo so the pinger's round trip completes.
        let e = msg
            .downcast::<StreamError>()
            .expect("ponger expects deliveries or stream errors");
        if matches!(e.kind, StreamErrorKind::Lost) {
            self.net
                .send(ctx, self.conn_back, e.bytes, Message::new(()));
        }
    }
}

/// Latency series over `sizes` (Figure 4a).
pub fn latency_series(provider: &Provider, sizes: &[u64], iters: u32) -> Vec<LatencyPoint> {
    sizes
        .iter()
        .map(|&s| LatencyPoint {
            msg_size: s,
            oneway_us: oneway_us(provider, s, iters),
        })
        .collect()
}

/// Mean one-way latency (half the mean ping-pong RTT) for one size.
pub fn oneway_us(provider: &Provider, bytes: u64, iters: u32) -> f64 {
    let warmup = 4u32;
    let mut sim = Sim::new(0xBEEF);
    let cluster = Cluster::build(&mut sim, 2);
    let net = cluster.network();

    // Two-phase construction: add processes with conn ids we register next.
    // Connection ids are deterministic: first registered is ConnId(0).
    let pinger = sim.add_process(Box::new(Pinger {
        net: net.clone(),
        conn_out: ConnId(0),
        bytes,
        remaining: iters + warmup - 1,
        warmup,
        rtt_us_sum: 0.0,
        rtt_count: 0,
        sent_at: SimTime::ZERO,
    }));
    let ponger = sim.add_process(Box::new(Ponger {
        net: net.clone(),
        conn_back: ConnId(1),
    }));
    let (fwd, rev) = provider.duplex(
        &net,
        cluster.endpoint(NodeId(0), pinger),
        cluster.endpoint(NodeId(1), ponger),
    );
    assert_eq!((fwd, rev), (ConnId(0), ConnId(1)));
    cluster.apply_env_shards(&mut sim);
    sim.run();
    let p: &Pinger = sim.process(pinger).expect("pinger persists");
    if fault::configured_plan().is_none() {
        // On a clean fabric every iteration must complete; under an
        // injected fault plan (crash/flap) the run may legitimately end
        // short, and we report the mean over the iterations that did.
        assert_eq!(p.rtt_count, iters, "all measured iterations completed");
    }
    p.rtt_us_sum / (2.0 * p.rtt_count.max(1) as f64)
}

/// Streams `count` messages back-to-back; the sender keeps the pipe full
/// and flow control paces it.
struct StreamSender {
    net: hpsock_net::Network,
    conn: ConnId,
    bytes: u64,
    count: u32,
}
impl Process for StreamSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.count {
            self.net.send(ctx, self.conn, self.bytes, Message::new(()));
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // Lost frames (fault plan active) are resent; other errors
        // (peer dead) end the stream short and the caller measures the
        // bytes that did arrive.
        if let Ok(e) = msg.downcast::<StreamError>() {
            if matches!(e.kind, StreamErrorKind::Lost) {
                self.net.send(ctx, self.conn, e.bytes, Message::new(()));
            }
        }
    }
}

/// Receives, consumes immediately, records first/last delivery times.
struct StreamSink {
    net: hpsock_net::Network,
    first: Option<SimTime>,
    last: SimTime,
    bytes: u64,
    msgs: u64,
}
impl Process for StreamSink {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let d = msg.downcast::<Delivery>().expect("sink expects deliveries");
        self.net.consumed(ctx, d.conn, d.msg_id);
        self.first.get_or_insert(ctx.now());
        self.last = ctx.now();
        self.bytes += d.bytes;
        self.msgs += 1;
    }
}

/// Achieved bandwidth in Mbps streaming `count` messages of `bytes` each.
pub fn streaming_mbps(provider: &Provider, bytes: u64, count: u32) -> f64 {
    streaming_mbps_probed(provider, bytes, count, |_| None).0
}

/// [`streaming_mbps`] with the probe bus attached after the cluster
/// exists (the factory receives the resource-name table), additionally
/// returning the run's end time — the horizon needed to read
/// time-weighted gauge means such as the net engine's per-connection
/// `net.conn<N>.mbps` bandwidth gauge. Probes are observational only, so
/// the measured bandwidth is identical to the unprobed run.
pub fn streaming_mbps_probed(
    provider: &Provider,
    bytes: u64,
    count: u32,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (f64, SimTime) {
    let mut sim = Sim::new(0xF00D);
    let cluster = Cluster::build(&mut sim, 2);
    let net = cluster.network();
    let sender = sim.add_process(Box::new(StreamSender {
        net: net.clone(),
        conn: ConnId(0),
        bytes,
        count,
    }));
    let sink = sim.add_process(Box::new(StreamSink {
        net: net.clone(),
        first: None,
        last: SimTime::ZERO,
        bytes: 0,
        msgs: 0,
    }));
    provider.connect(
        &net,
        cluster.endpoint(NodeId(0), sender),
        cluster.endpoint(NodeId(1), sink),
    );
    cluster.apply_env_shards(&mut sim);
    if let Some(p) = make_probe(&sim.resource_names()) {
        sim.attach_probe(p);
    }
    let end = sim.run();
    let s: &StreamSink = sim.process(sink).expect("sink persists");
    if fault::configured_plan().is_none() {
        // Exact conservation holds only on a clean fabric: a fault plan
        // can deliver short (crash) or long (a false-positive loss
        // detection retransmits a frame that was merely delayed).
        assert_eq!(s.msgs, count as u64, "all messages delivered");
        assert_eq!(s.bytes, bytes * count as u64, "byte conservation");
    }
    (
        8.0 * s.bytes as f64 / s.last.as_nanos().max(1) as f64 * 1_000.0,
        end,
    )
}

/// Bandwidth series over `sizes` (Figure 4b). `total_bytes` controls how
/// much data streams per point (message count adapts to size).
pub fn bandwidth_series(
    provider: &Provider,
    sizes: &[u64],
    total_bytes: u64,
) -> Vec<BandwidthPoint> {
    sizes
        .iter()
        .map(|&s| {
            let count = (total_bytes / s.max(1)).clamp(32, 4_000) as u32;
            BandwidthPoint {
                msg_size: s,
                mbps: streaming_mbps(provider, s, count),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::TransportKind;

    #[test]
    fn socketvia_pingpong_is_9_5us() {
        let p = Provider::new(TransportKind::SocketVia);
        let us = oneway_us(&p, 4, 16);
        assert!((us - 9.5).abs() < 0.5, "got {us}");
    }

    #[test]
    fn tcp_latency_factor_five() {
        let sv = oneway_us(&Provider::new(TransportKind::SocketVia), 4, 8);
        let tcp = oneway_us(&Provider::new(TransportKind::KTcp), 4, 8);
        let r = tcp / sv;
        assert!((4.5..5.5).contains(&r), "ratio {r}");
    }

    #[test]
    fn via_close_to_socketvia() {
        let via = oneway_us(&Provider::new(TransportKind::Via), 4, 8);
        let sv = oneway_us(&Provider::new(TransportKind::SocketVia), 4, 8);
        assert!(via < sv && sv - via < 2.0, "VIA {via} vs SocketVIA {sv}");
    }

    #[test]
    fn bandwidth_peaks() {
        let sv = streaming_mbps(&Provider::new(TransportKind::SocketVia), 65_536, 150);
        let tcp = streaming_mbps(&Provider::new(TransportKind::KTcp), 65_536, 150);
        assert!((sv - 763.0).abs() < 40.0, "SocketVIA {sv}");
        assert!((tcp - 510.0).abs() < 40.0, "TCP {tcp}");
        assert!(sv / tcp > 1.4, "the ~50% improvement claim");
    }

    #[test]
    fn microbench_rides_out_injected_frame_loss() {
        // Regression: a fault plan used to trip the "all messages
        // delivered" asserts and the Delivery-only downcasts. With loss
        // the peers resend and the measurements stay finite and sane.
        fault::with_spec("drop=0.02,detect=100us,backoff=100us", || {
            let p = Provider::new(TransportKind::SocketVia);
            let us = oneway_us(&p, 1_024, 16);
            assert!(us.is_finite() && us > 0.0, "latency {us}");
            let mbps = streaming_mbps(&p, 8_192, 64);
            assert!(mbps.is_finite() && mbps > 0.0, "bandwidth {mbps}");
        });
    }

    #[test]
    fn latency_series_is_monotone_in_size() {
        let p = Provider::new(TransportKind::SocketVia);
        let series = latency_series(&p, &[4, 64, 1024, 4096], 4);
        for w in series.windows(2) {
            assert!(w[1].oneway_us >= w[0].oneway_us);
        }
    }

    #[test]
    fn bandwidth_series_is_monotone_in_size() {
        let p = Provider::new(TransportKind::KTcp);
        let series = bandwidth_series(&p, &[256, 4096, 65_536], 1 << 21);
        for w in series.windows(2) {
            assert!(w[1].mbps >= w[0].mbps);
        }
    }
}
