//! # socketvia — high-performance sockets layers over a simulated VIA cluster
//!
//! The paper's substrate under test. This crate provides:
//!
//! * [`provider`] — the sockets-layer facade: pick a protocol stack
//!   ([`hpsock_net::TransportKind`]) or supply ablated cost parameters, and
//!   create (duplex) connections between processes on cluster nodes.
//! * [`microbench`] — the two standard micro-benchmarks (ping-pong latency
//!   and windowed streaming bandwidth) that regenerate the paper's
//!   Figure 4, run through the discrete-event engine.
//! * [`curves`] — the `t(s) = a + b·s` performance-curve abstraction an
//!   application developer extracts from the micro-benchmarks, plus the
//!   planning primitives behind the paper's *data repartitioning* (DR)
//!   insight: the minimum message size that attains a required bandwidth
//!   (Figure 2(a)'s U1/U2) and the maximum message size that honours a
//!   latency bound.
//!
//! ```
//! use socketvia::curves::PerfCurve;
//! use hpsock_net::TransportKind;
//!
//! let tcp = PerfCurve::from_kind(TransportKind::KTcp);
//! let sv = PerfCurve::from_kind(TransportKind::SocketVia);
//! // SocketVIA attains 400 Mbps at a far smaller message size (U2 << U1):
//! let u1 = tcp.min_size_for_bandwidth_mbps(400.0).unwrap();
//! let u2 = sv.min_size_for_bandwidth_mbps(400.0).unwrap();
//! assert!(u2 * 4 < u1);
//! ```

pub mod curves;
pub mod microbench;
pub mod provider;
pub mod socket;

pub use curves::PerfCurve;
pub use microbench::{
    bandwidth_series, latency_series, streaming_mbps_probed, BandwidthPoint, LatencyPoint,
};
pub use provider::Provider;
pub use socket::{Socket, SocketSet};
