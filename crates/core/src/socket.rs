//! A sockets-style API over the simulated transports.
//!
//! The paper's artifact is precisely a *sockets interface*: applications
//! written against `socket()/send()/recv()` keep working while the bytes
//! move over VIA. This module gives simulation actors the same shape: a
//! connected, bidirectional [`Socket`] pair created before the run
//! (connection setup happens up front, as in DataCutter), `send` from
//! handler code, and deliveries demultiplexed with [`Socket::accepts`] /
//! [`SocketSet`].
//!
//! ```
//! use hpsock_net::{Cluster, NodeId, TransportKind};
//! use hpsock_sim::Sim;
//! use socketvia::{socket::Socket, Provider};
//!
//! let mut sim = Sim::new(1);
//! let cluster = Cluster::build(&mut sim, 2);
//! let provider = Provider::new(TransportKind::SocketVia);
//! // pids for two endpoint processes created elsewhere...
//! # use hpsock_sim::{Ctx, Message, Process};
//! # struct Quiet;
//! # impl Process for Quiet { fn on_message(&mut self, _c: &mut Ctx<'_>, _m: Message) {} }
//! let a_pid = sim.add_process(Box::new(Quiet));
//! let b_pid = sim.add_process(Box::new(Quiet));
//! let (a_sock, b_sock) = Socket::pair(
//!     &provider,
//!     &cluster.network(),
//!     cluster.endpoint(NodeId(0), a_pid),
//!     cluster.endpoint(NodeId(1), b_pid),
//! );
//! assert!(a_sock.peer_conn() == b_sock.local_conn());
//! ```

use crate::provider::Provider;
use hpsock_net::{ConnId, Delivery, Endpoint, Network};
use hpsock_sim::{Ctx, Message};

/// One end of a connected, bidirectional byte-stream.
#[derive(Clone)]
pub struct Socket {
    net: Network,
    /// Connection this end sends on.
    out: ConnId,
    /// Connection this end receives on.
    inp: ConnId,
}

impl Socket {
    /// Create a connected pair between two endpoints (socketpair-style;
    /// the simulated analogue of `connect`+`accept` which DataCutter
    /// performs before query execution).
    pub fn pair(provider: &Provider, net: &Network, a: Endpoint, b: Endpoint) -> (Socket, Socket) {
        let (ab, ba) = provider.duplex(net, a, b);
        (
            Socket {
                net: net.clone(),
                out: ab,
                inp: ba,
            },
            Socket {
                net: net.clone(),
                out: ba,
                inp: ab,
            },
        )
    }

    /// Send `bytes` simulated bytes with an opaque payload to the peer.
    pub fn send(&self, ctx: &mut Ctx<'_>, bytes: u64, payload: Message) {
        self.net.send(ctx, self.out, bytes, payload);
    }

    /// Does this delivery belong to this socket?
    pub fn accepts(&self, d: &Delivery) -> bool {
        d.conn == self.inp
    }

    /// Mark a delivery as consumed (read by the application), releasing
    /// transport flow-control resources.
    pub fn consumed(&self, ctx: &mut Ctx<'_>, d: &Delivery) {
        self.net.consumed(ctx, d.conn, d.msg_id);
    }

    /// The connection id this end transmits on.
    pub fn local_conn(&self) -> ConnId {
        self.out
    }

    /// The connection id the peer transmits on (this end's receive side).
    pub fn peer_conn(&self) -> ConnId {
        self.inp
    }
}

/// A demultiplexer for processes holding several sockets.
#[derive(Clone, Default)]
pub struct SocketSet {
    sockets: Vec<Socket>,
}

impl SocketSet {
    /// Empty set.
    pub fn new() -> SocketSet {
        SocketSet::default()
    }

    /// Add a socket; returns its index within the set.
    pub fn add(&mut self, s: Socket) -> usize {
        self.sockets.push(s);
        self.sockets.len() - 1
    }

    /// Which socket (by index) a delivery belongs to.
    pub fn route(&self, d: &Delivery) -> Option<usize> {
        self.sockets.iter().position(|s| s.accepts(d))
    }

    /// Access a socket by index.
    pub fn get(&self, i: usize) -> &Socket {
        &self.sockets[i]
    }

    /// Number of sockets.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// True if no sockets were added.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::{Cluster, NodeId, TransportKind};
    use hpsock_sim::{Message as SimMessage, Process, Sim, SimTime};

    /// Echo client: sends `n` requests, one at a time, over the Socket API.
    struct Client {
        sock: Option<Socket>,
        sockets: std::sync::Arc<std::sync::Mutex<Vec<Socket>>>,
        remaining: u32,
        rtts_us: Vec<f64>,
        sent_at: SimTime,
    }
    impl Process for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.sock = Some(self.sockets.lock().unwrap()[0].clone());
            self.sent_at = ctx.now();
            self.sock
                .as_ref()
                .unwrap()
                .send(ctx, 512, SimMessage::new("ping"));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: SimMessage) {
            let d = msg.downcast::<Delivery>().unwrap();
            let sock = self.sock.as_ref().unwrap().clone();
            assert!(sock.accepts(&d));
            sock.consumed(ctx, &d);
            self.rtts_us
                .push(ctx.now().since(self.sent_at).as_micros_f64());
            if self.remaining > 0 {
                self.remaining -= 1;
                self.sent_at = ctx.now();
                sock.send(ctx, 512, SimMessage::new("ping"));
            }
        }
    }

    /// Echo server over the Socket API.
    struct Server {
        sockets: std::sync::Arc<std::sync::Mutex<Vec<Socket>>>,
        sock: Option<Socket>,
        served: u32,
    }
    impl Process for Server {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
            self.sock = Some(self.sockets.lock().unwrap()[1].clone());
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: SimMessage) {
            let d = msg.downcast::<Delivery>().unwrap();
            let sock = self.sock.as_ref().unwrap().clone();
            sock.consumed(ctx, &d);
            sock.send(ctx, d.bytes, SimMessage::new("pong"));
            self.served += 1;
        }
    }

    #[test]
    fn echo_over_socket_api() {
        let mut sim = Sim::new(4);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let provider = Provider::new(TransportKind::SocketVia);
        let shared = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let client = sim.add_process(Box::new(Client {
            sock: None,
            sockets: shared.clone(),
            remaining: 9,
            rtts_us: vec![],
            sent_at: SimTime::ZERO,
        }));
        let server = sim.add_process(Box::new(Server {
            sockets: shared.clone(),
            sock: None,
            served: 0,
        }));
        let (cs, ss) = Socket::pair(
            &provider,
            &net,
            cluster.endpoint(NodeId(0), client),
            cluster.endpoint(NodeId(1), server),
        );
        shared.lock().unwrap().extend([cs, ss]);
        sim.run();
        let c: &Client = sim.process(client).unwrap();
        let s: &Server = sim.process(server).unwrap();
        assert_eq!(s.served, 10);
        assert_eq!(c.rtts_us.len(), 10);
        // RTT of a 512B echo over SocketVIA: ~2x one-way(512B) ~ 30us.
        let mean = c.rtts_us.iter().sum::<f64>() / 10.0;
        assert!((25.0..40.0).contains(&mean), "mean RTT {mean}us");
    }

    #[test]
    fn socket_set_routes_by_connection() {
        let mut sim = Sim::new(4);
        let cluster = Cluster::build(&mut sim, 3);
        let net = cluster.network();
        let provider = Provider::new(TransportKind::KTcp);
        struct Quiet;
        impl Process for Quiet {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _m: SimMessage) {}
        }
        let hub = sim.add_process(Box::new(Quiet));
        let p1 = sim.add_process(Box::new(Quiet));
        let p2 = sim.add_process(Box::new(Quiet));
        let (h1, _s1) = Socket::pair(
            &provider,
            &net,
            cluster.endpoint(NodeId(0), hub),
            cluster.endpoint(NodeId(1), p1),
        );
        let (h2, _s2) = Socket::pair(
            &provider,
            &net,
            cluster.endpoint(NodeId(0), hub),
            cluster.endpoint(NodeId(2), p2),
        );
        let mut set = SocketSet::new();
        assert!(set.is_empty());
        let i1 = set.add(h1.clone());
        let i2 = set.add(h2.clone());
        assert_eq!(set.len(), 2);
        assert_ne!(i1, i2);
        assert_eq!(set.get(i1).local_conn(), h1.local_conn());
        assert_ne!(h1.peer_conn(), h2.peer_conn());
    }
}
