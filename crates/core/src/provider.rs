//! The sockets-layer facade: which protocol stack a connection speaks.
//!
//! A [`Provider`] bundles a transport's [`PathCosts`] and creates
//! connections on a [`Network`]. It is the seam the experiments flip
//! between TCP and SocketVIA without touching application code — exactly
//! the property the paper's user-level sockets layer provides to legacy
//! sockets applications.

use hpsock_net::{ConnId, Endpoint, Network, PathCosts, TransportKind};
use std::sync::Arc;

/// A configured sockets layer.
#[derive(Clone)]
pub struct Provider {
    costs: Arc<PathCosts>,
}

impl Provider {
    /// Provider with the calibrated costs for `kind`.
    pub fn new(kind: TransportKind) -> Provider {
        Provider {
            costs: Arc::new(PathCosts::for_kind(kind)),
        }
    }

    /// Provider with explicit (e.g. ablated) cost parameters.
    pub fn from_costs(costs: PathCosts) -> Provider {
        Provider {
            costs: Arc::new(costs),
        }
    }

    /// Which stack this provider speaks.
    pub fn kind(&self) -> TransportKind {
        self.costs.kind
    }

    /// The underlying cost model.
    pub fn costs(&self) -> &PathCosts {
        &self.costs
    }

    /// Shared handle to the cost model.
    pub fn costs_arc(&self) -> Arc<PathCosts> {
        Arc::clone(&self.costs)
    }

    /// Create a unidirectional connection `src -> dst`.
    pub fn connect(&self, net: &Network, src: Endpoint, dst: Endpoint) -> ConnId {
        net.connect_with(src, dst, Arc::clone(&self.costs))
    }

    /// Create a duplex pair: `(a_to_b, b_to_a)`. Data flows on the first,
    /// acknowledgments/control on the second (as in DataCutter's
    /// demand-driven scheduling).
    pub fn duplex(&self, net: &Network, a: Endpoint, b: Endpoint) -> (ConnId, ConnId) {
        (self.connect(net, a, b), self.connect(net, b, a))
    }
}

impl std::fmt::Debug for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Provider")
            .field("kind", &self.costs.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::{Cluster, NodeId};
    use hpsock_sim::{ProcessId, Sim};

    #[test]
    fn duplex_creates_two_connections() {
        let mut sim = Sim::new(0);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let p = Provider::new(TransportKind::SocketVia);
        let a = cluster.endpoint(NodeId(0), ProcessId(100));
        let b = cluster.endpoint(NodeId(1), ProcessId(101));
        let (fwd, rev) = p.duplex(&net, a, b);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn provider_reports_kind() {
        assert_eq!(
            Provider::new(TransportKind::KTcp).kind(),
            TransportKind::KTcp
        );
        let custom = Provider::from_costs(PathCosts::for_kind(TransportKind::Via));
        assert_eq!(custom.kind(), TransportKind::Via);
        assert_eq!(custom.costs().frame_payload, 65_536);
    }
}
