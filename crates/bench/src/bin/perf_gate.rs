//! Perf-regression gate over the engine benchmarks.
//!
//! Usage:
//!
//! ```text
//! perf_gate check  <current.jsonl>   # compare vs committed BENCH_engine.json
//! perf_gate update <current.jsonl>   # rewrite BENCH_engine.json from current
//! ```
//!
//! `current.jsonl` is what the vendored criterion shim appends when run
//! with `HPSOCK_BENCH_JSON=<path>` — one `{"id":…,"mean_ns":…}` object per
//! line. Run the bench several times into the same file: the gate takes
//! the **best (minimum) mean per id**, which is the noise-robust statistic
//! for "how fast can this code go".
//!
//! `check` fails (exit 1) when any baseline benchmark is slower by more
//! than [`TOLERANCE`] — i.e. throughput regressed by more than 20 % — or
//! is missing from the current results (renames must ship a baseline
//! update). New benchmarks absent from the baseline are reported but do
//! not fail; commit them via `update`.
//!
//! Baselines are machine-class-bound: absolute ns only compare against
//! runs on comparable hardware. `update` re-anchors after intentional
//! changes.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Allowed slowdown before the gate fails: 1.20 = 20 % more ns/iter.
const TOLERANCE: f64 = 1.20;

/// The committed baseline lives at the workspace root.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Extract `(id, mean_ns)` pairs from JSON text by scanning for the two
/// key tokens — accepts both the shim's JSON-lines output and the pretty
/// baseline array without a JSON dependency. Returns first-seen order.
fn parse_results(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\"") {
        rest = &rest[pos + 4..];
        let Some(q1) = rest.find('"') else { break };
        let Some(q2) = rest[q1 + 1..].find('"') else {
            break;
        };
        let id = rest[q1 + 1..q1 + 1 + q2].to_string();
        rest = &rest[q1 + 2 + q2..];
        let Some(mpos) = rest.find("\"mean_ns\"") else {
            break;
        };
        rest = &rest[mpos + 9..];
        let num_start = match rest.find(|c: char| c.is_ascii_digit()) {
            Some(i) => i,
            None => break,
        };
        let rest2 = &rest[num_start..];
        let num_end = rest2
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(rest2.len());
        if let Ok(v) = rest2[..num_end].parse::<f64>() {
            out.push((id, v));
        }
        rest = &rest2[num_end..];
    }
    out
}

/// Collapse repeated runs to the best (minimum) mean per id, keeping
/// first-appearance order.
fn best_of(results: Vec<(String, f64)>) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for (id, v) in results {
        match best.get_mut(&id) {
            Some(cur) => {
                if v < *cur {
                    *cur = v;
                }
            }
            None => {
                order.push(id.clone());
                best.insert(id, v);
            }
        }
    }
    order
        .into_iter()
        .map(|id| {
            let v = best[&id];
            (id, v)
        })
        .collect()
}

fn render_baseline(results: &[(String, f64)]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"hpsock-bench-baseline-v1\",\n  \"results\": [\n");
    for (i, (id, v)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {v:.1}}}{sep}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn load(path: &std::path::Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let parsed = best_of(parse_results(&text));
    if parsed.is_empty() {
        return Err(format!("no benchmark results in {}", path.display()));
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (mode, current_path) = match (args.get(1).map(String::as_str), args.get(2)) {
        (Some(m @ ("check" | "update")), Some(p)) => (m, PathBuf::from(p)),
        _ => {
            eprintln!("usage: perf_gate <check|update> <current.jsonl>");
            return ExitCode::from(2);
        }
    };
    let current = match load(&current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::from(2);
        }
    };

    if mode == "update" {
        let rendered = render_baseline(&current);
        if let Err(e) = std::fs::write(baseline_path(), rendered) {
            eprintln!("perf_gate: cannot write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "perf_gate: wrote {} entries to {}",
            current.len(),
            baseline_path().display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load(&baseline_path()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: {e} (run `perf_gate update` to create it)");
            return ExitCode::from(2);
        }
    };
    let current_map: BTreeMap<&str, f64> =
        current.iter().map(|(id, v)| (id.as_str(), *v)).collect();
    let baseline_ids: Vec<&str> = baseline.iter().map(|(id, _)| id.as_str()).collect();

    let mut failed = false;
    for (id, base) in &baseline {
        match current_map.get(id.as_str()) {
            None => {
                eprintln!("FAIL {id}: in baseline but not in current results");
                failed = true;
            }
            Some(&cur) => {
                let ratio = cur / base;
                let verdict = if ratio > TOLERANCE {
                    failed = true;
                    "FAIL"
                } else {
                    "ok  "
                };
                println!(
                    "{verdict} {id:<40} base {base:>12.0} ns  cur {cur:>12.0} ns  ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for (id, _) in &current {
        if !baseline_ids.contains(&id.as_str()) {
            println!("new  {id}: not in baseline (commit via `perf_gate update`)");
        }
    }
    if failed {
        eprintln!(
            "perf_gate: regression beyond {:.0}% tolerance (or missing bench)",
            (TOLERANCE - 1.0) * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("perf_gate: all benchmarks within tolerance");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_lines_and_pretty_array() {
        let lines =
            "{\"id\":\"engine/a\",\"mean_ns\":1234.5}\n{\"id\":\"engine/b\",\"mean_ns\":9}\n";
        assert_eq!(
            parse_results(lines),
            vec![("engine/a".into(), 1234.5), ("engine/b".into(), 9.0)]
        );
        let pretty = render_baseline(&[("engine/a".into(), 1234.5), ("engine/b".into(), 9.0)]);
        assert_eq!(parse_results(&pretty), parse_results(lines));
    }

    #[test]
    fn best_of_takes_min_per_id_keeping_order() {
        let runs = vec![
            ("b".to_string(), 30.0),
            ("a".to_string(), 20.0),
            ("b".to_string(), 10.0),
            ("a".to_string(), 25.0),
        ];
        assert_eq!(
            best_of(runs),
            vec![("b".to_string(), 10.0), ("a".to_string(), 20.0)]
        );
    }
}
