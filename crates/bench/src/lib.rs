//! # hpsock-bench — Criterion benchmark harness
//!
//! One benchmark group per paper table/figure (`benches/paper_figures.rs`),
//! engine micro-benchmarks (`benches/engine.rs`), and ablation benches for
//! the design choices called out in `DESIGN.md` §6
//! (`benches/ablations.rs`). Run with `cargo bench`.
//!
//! The groups deliberately use reduced workload sizes so `cargo bench`
//! completes quickly; the full-scale figure regeneration lives in the
//! `hpsock-experiments` binaries (`cargo run --release --bin all`).

/// Shared reduced-scale constants so the benches stay quick.
pub mod scale {
    /// Blocks per reduced workload.
    pub const BLOCKS: u32 = 64;
    /// Reduced image bytes for pipeline benches.
    pub const IMAGE_BYTES: u64 = 1024 * 1024;
}
