//! Engine micro-benchmarks: raw event-dispatch throughput, FCFS resource
//! scheduling, scheduler decisions, and transport message throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpsock_datacutter::{Policy, Scheduler};
use hpsock_sim::resource::Resource;
use hpsock_sim::{Ctx, Dur, Message, Process, Sim, SimTime};
use std::hint::black_box;
use std::time::Duration;

/// A self-perpetuating event chain of fixed length.
struct Chain {
    remaining: u64,
}
impl Process for Chain {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send_self_in(Dur::nanos(1), Message::new(()));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self_in(Dur::nanos(1), Message::new(()));
        }
    }
}

fn bench_event_dispatch(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(EVENTS));
    // `on_start` dispatches the first event itself, so a chain of
    // `EVENTS - 1` further sends dispatches exactly EVENTS events —
    // matching the throughput denominator above (checked below, outside
    // the timed region).
    {
        let mut sim = Sim::new(1);
        sim.add_process(Box::new(Chain {
            remaining: EVENTS - 1,
        }));
        sim.run();
        assert_eq!(sim.events_dispatched(), EVENTS);
    }
    g.bench_function("event_dispatch_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.add_process(Box::new(Chain {
                remaining: EVENTS - 1,
            }));
            black_box(sim.run())
        })
    });
    g.finish();
}

fn bench_resource_schedule(c: &mut Criterion) {
    const JOBS: u64 = 100_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(JOBS));
    g.bench_function("resource_fcfs_100k", |b| {
        b.iter(|| {
            let mut r = Resource::new("cpu", 2);
            for i in 0..JOBS {
                let t = SimTime::from_nanos(i);
                black_box(r.schedule(t, Dur::nanos(100)));
            }
            black_box(r.busy_time())
        })
    });
    g.finish();
}

fn bench_scheduler_pick(c: &mut Criterion) {
    const PICKS: u64 = 100_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(PICKS));
    for (label, policy) in [
        ("rr_pick_100k", Policy::RoundRobin),
        ("dd_pick_100k", Policy::DemandDriven { window: 8 }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut s = Scheduler::new(policy, 8);
                for i in 0..PICKS {
                    if let Some(k) = s.pick() {
                        s.on_sent(k);
                        if i % 2 == 1 {
                            s.on_ack(k);
                        }
                    } else {
                        // Window full: ack the most loaded copy.
                        let k = (0..8).max_by_key(|&k| s.unacked(k)).unwrap();
                        s.on_ack(k);
                    }
                }
                black_box(s.sent(0))
            })
        });
    }
    g.finish();
}

fn bench_transport_messages(c: &mut Criterion) {
    use hpsock_net::TransportKind;
    use socketvia::{microbench, Provider};
    const MSGS: u64 = 500;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(MSGS));
    g.bench_function("socketvia_500_msgs_2k", |b| {
        let p = Provider::new(TransportKind::SocketVia);
        b.iter(|| black_box(microbench::streaming_mbps(&p, 2_048, MSGS as u32)))
    });
    g.finish();
}

/// The sharded kernel on a 16-node cluster: 8 concurrent SocketVIA
/// streams, each crossing the shard boundary, run sequentially and at
/// 2/4 shards. The three variants are separate baselines so the gate
/// pins each against itself: the sequential number guards the kernel's
/// single-thread overhead, the sharded numbers guard the window
/// protocol's barrier/merge cost. The cross-variant *ratio* is
/// machine-class-bound — sharding pays off with ≥2 physical cores and a
/// compute-dense sim (each window must dispatch enough events to
/// amortize two barriers); on a single-core runner the sharded variants
/// are expected to trail the sequential one.
fn bench_sharded_cluster(c: &mut Criterion) {
    use hpsock_net::{Cluster, ConnId, Delivery, NodeId, TransportKind};
    use socketvia::Provider;

    const NODES: usize = 16;
    const CONNS: usize = 8;
    const MSGS_PER_CONN: u32 = 100;
    const BYTES: u64 = 16_384;

    struct Burst {
        net: hpsock_net::Network,
        conn: ConnId,
        count: u32,
    }
    impl Process for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.count {
                self.net.send(ctx, self.conn, BYTES, Message::new(()));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }
    struct Drain {
        net: hpsock_net::Network,
    }
    impl Process for Drain {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let d = msg
                .downcast::<Delivery>()
                .expect("drain expects deliveries");
            self.net.consumed(ctx, d.conn, d.msg_id);
        }
    }

    let run = |shards: usize| {
        let mut sim = Sim::new(0x5AAD);
        let cluster = Cluster::build(&mut sim, NODES);
        let net = cluster.network();
        let p = Provider::new(TransportKind::SocketVia);
        for i in 0..CONNS {
            let tx = sim.add_process(Box::new(Burst {
                net: net.clone(),
                conn: ConnId(i),
                count: MSGS_PER_CONN,
            }));
            let rx = sim.add_process(Box::new(Drain { net: net.clone() }));
            p.connect(
                &net,
                cluster.endpoint(NodeId(i), tx),
                cluster.endpoint(NodeId(CONNS + i), rx),
            );
        }
        if shards > 1 {
            sim.set_shard_plan(cluster.even_shard_plan(shards));
        }
        sim.run()
    };

    // The variants must agree on the trace before their timings mean
    // anything; run each once up-front and compare (outside the timing).
    {
        let end = run(1);
        assert_eq!(end, run(2), "2-shard run diverged from sequential");
        assert_eq!(end, run(4), "4-shard run diverged from sequential");
    }

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(
        u64::from(MSGS_PER_CONN) * CONNS as u64,
    ));
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("sharded_cluster_{shards}"), |b| {
            b.iter(|| black_box(run(shards)))
        });
    }
    g.finish();

    // Wall-clock companion to the criterion numbers: one telemetered run
    // per variant, reporting the kernel's own events/sec and utilization
    // from `run_report.json` (criterion times the whole closure, the
    // report isolates the dispatch loop).
    let tel_dir = std::env::temp_dir().join(format!("hpsock_bench_tel_{}", std::process::id()));
    for shards in [1usize, 2, 4] {
        hpsock_sim::telemetry::with_telemetry_dir(Some(&tel_dir), || run(shards));
        match hpsock_sim::telemetry::last_report() {
            Some(r) => println!(
                "run_report.json: sharded_cluster_{shards} ({} mode, {} shards): \
                 {} events in {:.2} ms wall = {:.0} events/sec, {} rounds",
                r.mode,
                r.shards,
                r.events,
                r.wall_ns as f64 / 1e6,
                r.events_per_sec,
                r.rounds,
            ),
            None => println!("run_report.json: no telemetry report for {shards} shards"),
        }
    }
    let _ = std::fs::remove_dir_all(&tel_dir);
}

/// The sharded kernel on the big rack topology (8 racks × 16 nodes, 64
/// concurrent SocketVIA streams — `hpsock_experiments::bigtopo`): the
/// workload the sharding work is supposed to *win* on. Sequential and
/// 2/4-shard variants are separate baselines, like `sharded_cluster_*`;
/// the cross-variant ratio is machine-class-bound (sharding needs ≥2
/// physical cores to pay off — CI's shard-smoke job gates the 2-shard
/// speedup on a multi-core runner).
fn bench_sharded_big(c: &mut Criterion) {
    const MSGS_PER_CONN: u32 = 40;
    let run = |shards: usize| hpsock_experiments::bigtopo::run_big(shards, MSGS_PER_CONN);

    // The variants must agree on the trace before their timings mean
    // anything; run each once up-front and compare (outside the timing).
    {
        let seq = run(1);
        assert_eq!(seq, run(2), "2-shard big run diverged from sequential");
        assert_eq!(seq, run(4), "4-shard big run diverged from sequential");
    }

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(
        u64::from(MSGS_PER_CONN) * hpsock_experiments::bigtopo::CONNS as u64,
    ));
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("sharded_big_{shards}"), |b| {
            b.iter(|| black_box(run(shards)))
        });
    }
    g.finish();

    // Wall-clock companion: the kernel's own events/sec per variant.
    let tel_dir = std::env::temp_dir().join(format!("hpsock_bench_bigtel_{}", std::process::id()));
    for shards in [1usize, 2, 4] {
        hpsock_sim::telemetry::with_telemetry_dir(Some(&tel_dir), || run(shards));
        match hpsock_sim::telemetry::last_report() {
            Some(r) => println!(
                "run_report.json: sharded_big_{shards} ({} mode, {} shards): \
                 {} events in {:.2} ms wall = {:.0} events/sec, {} rounds",
                r.mode,
                r.shards,
                r.events,
                r.wall_ns as f64 / 1e6,
                r.events_per_sec,
                r.rounds,
            ),
            None => println!("run_report.json: no telemetry report for {shards} shards"),
        }
    }
    let _ = std::fs::remove_dir_all(&tel_dir);
}

/// The big rack topology on the flow-vs-packet gate workload (64 TCP
/// streams at 32 KiB — ~120 packet-engine events per message): the same
/// run under the packet engine (`flow_big_packet`) and the fluid model
/// (`flow_big_fluid`). These are separate baselines like the sharded
/// variants; the cross-variant ratio is the fluid fast path's payoff and
/// is additionally gated in-tree (≥10× fewer events) and by the CI
/// flow-smoke job.
fn bench_flow_big(c: &mut Criterion) {
    use hpsock_experiments::bigtopo::{self, GATE_BYTES};
    use hpsock_net::{with_netmodel, NetModel, TransportKind};

    const MSGS_PER_CONN: u32 = 20;
    let run = |model: NetModel| {
        with_netmodel(model, || {
            bigtopo::run_big_custom(1, MSGS_PER_CONN, TransportKind::KTcp, GATE_BYTES)
        })
    };

    // The fast path must actually be fast before its timing means
    // anything: assert the event reduction once up-front (untimed).
    {
        let (_, _, ev_packet) = run(NetModel::Packet);
        let (_, _, ev_flow) = run(NetModel::Flow);
        assert!(
            ev_packet >= 10 * ev_flow,
            "flow model dispatched {ev_flow} events vs packet {ev_packet}: < 10x reduction"
        );
    }

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(
        u64::from(MSGS_PER_CONN) * bigtopo::CONNS as u64,
    ));
    for (label, model) in [
        ("flow_big_packet", NetModel::Packet),
        ("flow_big_fluid", NetModel::Flow),
    ] {
        g.bench_function(label, |b| b.iter(|| black_box(run(model))));
    }
    g.finish();

    // Wall-clock companion: under the fluid model the kernel's own report
    // carries flows/sec next to events/sec, so the two engines compare
    // like with like (a fluid "event" is a whole flow state change).
    let tel_dir = std::env::temp_dir().join(format!("hpsock_bench_flowtel_{}", std::process::id()));
    for (label, model) in [
        ("flow_big_packet", NetModel::Packet),
        ("flow_big_fluid", NetModel::Flow),
    ] {
        hpsock_sim::telemetry::with_telemetry_dir(Some(&tel_dir), || run(model));
        match hpsock_sim::telemetry::last_report() {
            Some(r) => println!(
                "run_report.json: {label}: {} events in {:.2} ms wall = {:.0} events/sec, \
                 {} flows = {:.0} flows/sec",
                r.events,
                r.wall_ns as f64 / 1e6,
                r.events_per_sec,
                r.flows,
                r.flows_per_sec,
            ),
            None => println!("run_report.json: no telemetry report for {label}"),
        }
    }
    let _ = std::fs::remove_dir_all(&tel_dir);
}

criterion_group!(
    engine,
    bench_event_dispatch,
    bench_resource_schedule,
    bench_scheduler_pick,
    bench_transport_messages,
    bench_sharded_cluster,
    bench_sharded_big,
    bench_flow_big,
);
criterion_main!(engine);
