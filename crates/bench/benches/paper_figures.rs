//! One Criterion group per paper table/figure. Each bench runs a reduced
//! but structurally identical version of the figure's experiment through
//! the discrete-event engine, so `cargo bench` tracks the cost (and,
//! via the printed check values, the result shape) of every reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpsock_experiments::runner::{isolated_partial_us, run_saturation_ups};
use hpsock_net::TransportKind;
use hpsock_sim::SimTime;
use hpsock_vizserver::{dd_execution_time, rr_reaction_time, ComputeModel, LbSetup};
use socketvia::{microbench, Provider};
use std::hint::black_box;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
}

/// Figure 4(a): ping-pong latency micro-benchmark.
fn bench_fig4_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_latency");
    configure(&mut g);
    for kind in TransportKind::PAPER_SET {
        let provider = Provider::new(kind);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &provider,
            |b, p| b.iter(|| black_box(microbench::oneway_us(p, black_box(4), 8))),
        );
    }
    g.finish();
}

/// Figure 4(b): streamed bandwidth micro-benchmark.
fn bench_fig4_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_bandwidth");
    configure(&mut g);
    for kind in TransportKind::PAPER_SET {
        let provider = Provider::new(kind);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &provider,
            |b, p| b.iter(|| black_box(microbench::streaming_mbps(p, black_box(65_536), 64))),
        );
    }
    g.finish();
}

/// Figure 7: isolated partial-update latency at the planned block sizes.
fn bench_fig7_partial_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_partial_latency");
    configure(&mut g);
    for (label, kind, block) in [
        ("TCP_16KB", TransportKind::KTcp, 16_384u64),
        ("SocketVIA_16KB", TransportKind::SocketVia, 16_384),
        ("SocketVIA_DR_2KB", TransportKind::SocketVia, 2_048),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(isolated_partial_us(
                    kind,
                    black_box(block),
                    ComputeModel::None,
                    2,
                    7,
                ))
            })
        });
    }
    g.finish();
}

/// Figure 8: saturation throughput (reduced to 2 updates per run).
fn bench_fig8_saturation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_saturation");
    configure(&mut g);
    for (label, kind) in [
        ("TCP", TransportKind::KTcp),
        ("SocketVIA", TransportKind::SocketVia),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_saturation_ups(
                    kind,
                    black_box(65_536),
                    ComputeModel::None,
                    2,
                    7,
                ))
            })
        });
    }
    g.finish();
}

/// Figure 9: one closed-loop mixed-query stream point.
fn bench_fig9_query_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_query_mix");
    configure(&mut g);
    for (label, kind) in [
        ("TCP_64part", TransportKind::KTcp),
        ("SocketVIA_64part", TransportKind::SocketVia),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(hpsock_experiments::fig9::mean_response_ms(
                    kind,
                    ComputeModel::None,
                    64,
                    black_box(0.5),
                    4,
                    7,
                ))
            })
        });
    }
    g.finish();
}

/// Figure 10: one round-robin reaction-time measurement.
fn bench_fig10_reaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_rr_reaction");
    configure(&mut g);
    for (label, kind) in [
        ("TCP", TransportKind::KTcp),
        ("SocketVIA", TransportKind::SocketVia),
    ] {
        let setup = LbSetup::paper(kind);
        let emit_ns = (setup.ns_per_byte * setup.block_bytes as f64) as u64;
        let slow_at = SimTime::from_nanos(emit_ns * 40);
        g.bench_function(label, |b| {
            b.iter(|| black_box(rr_reaction_time(&setup, black_box(4.0), slow_at, 120, 7)))
        });
    }
    g.finish();
}

/// Figure 11: one demand-driven heterogeneous execution.
fn bench_fig11_dd_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_dd_execution");
    configure(&mut g);
    for (label, kind) in [
        ("TCP", TransportKind::KTcp),
        ("SocketVIA", TransportKind::SocketVia),
    ] {
        let setup = LbSetup::paper(kind);
        let blocks = ((512 * 1024) / setup.block_bytes) as u32;
        g.bench_function(label, |b| {
            b.iter(|| black_box(dd_execution_time(&setup, black_box(0.3), 4.0, blocks, 7)))
        });
    }
    g.finish();
}

criterion_group!(
    paper_figures,
    bench_fig4_latency,
    bench_fig4_bandwidth,
    bench_fig7_partial_latency,
    bench_fig8_saturation,
    bench_fig9_query_mix,
    bench_fig10_reaction,
    bench_fig11_dd_execution,
);
criterion_main!(paper_figures);
