//! Ablation benches for the design choices called out in DESIGN.md §6:
//! credit-pool depth, frame size (MTU/MSS), the eager-copy cost folded into
//! SocketVIA's wire rate, and the demand-driven window.
//!
//! Each bench measures the *simulated outcome* (bandwidth, execution time)
//! at several parameter values; Criterion tracks the cost of evaluating
//! each point, and the printed labels carry the parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpsock_net::{PathCosts, TransportKind};
use hpsock_vizserver::hetero::dd_execution_time_with_window;
use hpsock_vizserver::LbSetup;
use socketvia::{microbench, Provider};
use std::hint::black_box;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
}

/// How deep must the receive-descriptor pool be before bandwidth stops
/// improving? (SocketVIA flow control.)
fn ablation_credits(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_credits");
    configure(&mut g);
    for credits in [1u32, 2, 4, 8, 32] {
        let mut costs = PathCosts::for_kind(TransportKind::SocketVia);
        costs.flow = hpsock_net::FlowModel::Credits { count: credits };
        let p = Provider::from_costs(costs);
        g.bench_with_input(BenchmarkId::from_parameter(credits), &p, |b, p| {
            b.iter(|| black_box(microbench::streaming_mbps(p, 8_192, 128)))
        });
    }
    g.finish();
}

/// Frame-size (MSS) sensitivity of the kernel TCP path.
fn ablation_mtu(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mtu");
    configure(&mut g);
    for mss in [512u32, 1_460, 4_096, 9_000] {
        let mut costs = PathCosts::for_kind(TransportKind::KTcp);
        costs.frame_payload = mss;
        let p = Provider::from_costs(costs);
        g.bench_with_input(BenchmarkId::from_parameter(mss), &p, |b, p| {
            b.iter(|| black_box(microbench::streaming_mbps(p, 65_536, 64)))
        });
    }
    g.finish();
}

/// The eager-copy memory-bus cost folded into SocketVIA's effective wire
/// rate: 10.06 ns/B is the copy-free VIA rate; higher values model more
/// expensive copies.
fn ablation_eager_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eager_copy");
    configure(&mut g);
    for tenths in [100u32, 105, 110, 120] {
        let wire = tenths as f64 / 10.0;
        let mut costs = PathCosts::for_kind(TransportKind::SocketVia);
        costs.wire_ns_per_byte = wire;
        let p = Provider::from_costs(costs);
        g.bench_with_input(BenchmarkId::from_parameter(tenths), &p, |b, p| {
            b.iter(|| black_box(microbench::streaming_mbps(p, 65_536, 64)))
        });
    }
    g.finish();
}

/// Demand-driven window depth vs heterogeneous execution time: too small
/// starves the pipeline, too large approaches round-robin blindness.
fn ablation_dd_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dd_window");
    configure(&mut g);
    let setup = LbSetup::paper(TransportKind::SocketVia);
    let blocks = ((512 * 1024) / setup.block_bytes) as u32;
    for window in [1u32, 2, 8, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                black_box(dd_execution_time_with_window(
                    &setup, w, 0.3, 4.0, blocks, 7,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_credits,
    ablation_mtu,
    ablation_eager_copy,
    ablation_dd_window,
);
criterion_main!(ablations);
