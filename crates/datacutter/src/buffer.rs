//! Data buffers and stream control messages.
//!
//! A [`DataBuffer`] is the unit applications move along logical streams: an
//! array of data elements in DataCutter terms. Buffers here carry a
//! *simulated* size plus lightweight metadata (the experiments reason about
//! timing and placement, not pixel values), and an optional tag used by
//! conservation checks.

use std::any::Any;
use std::sync::Arc;

/// Simulated wire size of a stream control message (end-of-work marker or
/// demand-driven acknowledgment).
pub const CONTROL_BYTES: u64 = 16;

/// A unit of application data flowing on a stream.
///
/// Cloneable so fault-aware filters can retain an unacknowledged buffer
/// for retry/replay; `meta` is shared, not deep-copied.
#[derive(Clone)]
pub struct DataBuffer {
    /// Unit-of-work this buffer belongs to.
    pub uow: u32,
    /// Simulated payload size in bytes.
    pub bytes: u64,
    /// Application tag (e.g. block index) used by tests and conservation
    /// checks.
    pub tag: u64,
    /// Optional shared metadata (e.g. a query descriptor).
    pub meta: Option<Arc<dyn Any + Send + Sync>>,
}

impl DataBuffer {
    /// A buffer with no metadata.
    pub fn new(uow: u32, bytes: u64, tag: u64) -> DataBuffer {
        DataBuffer {
            uow,
            bytes,
            tag,
            meta: None,
        }
    }

    /// Attach shared metadata.
    pub fn with_meta(mut self, meta: Arc<dyn Any + Send + Sync>) -> DataBuffer {
        self.meta = Some(meta);
        self
    }
}

impl std::fmt::Debug for DataBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataBuffer")
            .field("uow", &self.uow)
            .field("bytes", &self.bytes)
            .field("tag", &self.tag)
            .finish()
    }
}

/// What travels on a stream connection.
#[derive(Clone)]
pub enum StreamMsg {
    /// Application data.
    Data(DataBuffer),
    /// End-of-work marker: the sending producer copy has emitted all
    /// buffers of `uow` on this stream.
    Eow {
        /// The finished unit of work.
        uow: u32,
    },
    /// Demand-driven acknowledgment: the consumer started processing one
    /// buffer (travels on the reverse connection).
    Ack,
    /// Completion notification: the consumer *finished* processing one
    /// buffer. Sent only on [`crate::sched::Policy::RoundRobinAcked`]
    /// streams — the instrumentation the load-balancer reaction-time
    /// experiment uses to observe slow nodes.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_construction() {
        let b = DataBuffer::new(3, 2048, 17);
        assert_eq!(b.uow, 3);
        assert_eq!(b.bytes, 2048);
        assert_eq!(b.tag, 17);
        assert!(b.meta.is_none());
        let m: Arc<dyn Any + Send + Sync> = Arc::new(42u32);
        let b = b.with_meta(m);
        let got = b.meta.unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 42);
    }

    #[test]
    fn debug_format_is_compact() {
        let s = format!("{:?}", DataBuffer::new(1, 2, 3));
        assert!(s.contains("uow: 1") && s.contains("bytes: 2"));
    }
}
