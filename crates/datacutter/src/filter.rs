//! The filter runtime: one simulation process per transparent copy.
//!
//! A [`FilterProcess`] owns a user [`FilterLogic`], an inbox of arrived
//! buffers, per-output-port schedulers and queues, and end-of-work
//! bookkeeping. It serializes its own processing (a DataCutter filter is a
//! single thread) while co-located copies contend for the node's CPU
//! resource, and it implements the demand-driven acknowledgment protocol:
//! an ack is sent on the reverse connection when a buffer *starts*
//! processing, exactly as in DataCutter §4.1.

use crate::buffer::{DataBuffer, StreamMsg, CONTROL_BYTES};
use crate::logic::{Action, FilterCtx, FilterLogic, SpeedModel};
use crate::sched::{Policy, Scheduler};
use hpsock_net::{ConnId, Delivery, Network, NodeId, RecoveryCfg, StreamError, StreamErrorKind};
use hpsock_sim::stats::Tally;
use hpsock_sim::{Ctx, Dur, Message, ProbeEvent, Process, ProcessId, ResourceId, SimTime};
use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Driver → source-filter message: start a unit of work.
pub struct UowStartMsg {
    /// Unit-of-work id.
    pub uow: u32,
    /// Opaque descriptor (e.g. a query).
    pub desc: Arc<dyn Any + Send + Sync>,
}

/// Driver → filter message: tear down (invokes `FilterLogic::finalize`).
pub struct Shutdown;

/// How a connection's deliveries are interpreted by this copy.
#[derive(Debug, Clone, Copy)]
pub enum Route {
    /// Data/EOW from producer copy `producer` on input port `port`.
    DataIn {
        /// Input port index.
        port: usize,
        /// Producer copy index on that stream.
        producer: usize,
    },
    /// Demand-driven ack from consumer copy `consumer` on output `port`.
    AckIn {
        /// Output port index.
        port: usize,
        /// Consumer copy index on that stream.
        consumer: usize,
    },
}

/// Wiring of one input port.
#[derive(Debug, Clone)]
pub struct InputWiring {
    /// Scheduling policy of the stream (determines whether acks are sent).
    pub policy: Policy,
    /// Number of producer copies feeding this port.
    pub producers: usize,
    /// Reverse (ack) connection to each producer copy.
    pub ack_conns: Vec<ConnId>,
}

/// Wiring of one output port.
#[derive(Debug, Clone)]
pub struct OutputWiring {
    /// Scheduling policy for distribution among consumer copies.
    pub policy: Policy,
    /// Forward (data) connection to each consumer copy.
    pub data_conns: Vec<ConnId>,
}

/// Everything a copy needs to run, filled in by the group builder after
/// all processes and connections exist.
pub struct CopyWiring {
    /// Node this copy is placed on.
    pub node: NodeId,
    /// The node's application CPU resource.
    pub cpu: ResourceId,
    /// Input ports in stream-declaration order.
    pub inputs: Vec<InputWiring>,
    /// Output ports in stream-declaration order.
    pub outputs: Vec<OutputWiring>,
    /// Delivery classification for every connection touching this copy.
    pub routes: HashMap<ConnId, Route>,
    /// Compute speed model for this copy.
    pub speed: SpeedModel,
    /// Record per-buffer ack round-trips (Figure 10 instrumentation).
    pub ack_log: bool,
    /// Recovery parameters when the cluster carries a fault plan; `None`
    /// keeps every recovery path (retention, retries, failover) inert.
    pub recovery: Option<RecoveryCfg>,
    /// Scheduled fail-stop time of this copy's node under the fault plan:
    /// from then on the copy plays dead and drops every message.
    pub crash_at: Option<SimTime>,
}

/// One matched send→ack round-trip (demand-driven instrumentation).
#[derive(Debug, Clone, Copy)]
pub struct AckRecord {
    /// Output port.
    pub port: usize,
    /// Consumer copy index.
    pub consumer: usize,
    /// When the buffer was sent.
    pub sent_at: SimTime,
    /// When its processing-start ack arrived back.
    pub acked_at: SimTime,
}

/// Counters collected by each copy.
#[derive(Debug, Clone, Default)]
pub struct FilterStats {
    /// Buffers processed from input streams.
    pub buffers_in: u64,
    /// Bytes processed from input streams.
    pub bytes_in: u64,
    /// Buffers emitted on output streams.
    pub buffers_out: u64,
    /// Bytes emitted on output streams.
    pub bytes_out: u64,
    /// Total (speed-scaled) CPU demand charged.
    pub compute_busy: Dur,
    /// Time buffers waited in the inbox before processing started, µs.
    pub queue_wait_us: Tally,
    /// `(uow, time)` each unit of work completed at this copy.
    pub uow_ends: Vec<(u32, SimTime)>,
    /// Stream errors reported by the transport (lost or dead-peer sends).
    pub stream_errors: u64,
    /// Lost messages re-sent on the same connection.
    pub retries: u64,
    /// Connections that recovered (a post-retry delivery was acknowledged).
    pub streams_recovered: u64,
    /// Consumer copies failed over away from permanently.
    pub consumers_failed: u64,
    /// Buffers dropped because every consumer copy on their port was dead.
    pub buffers_failed: u64,
    /// Deliveries that raced a torn-down route and were discarded.
    pub stale_deliveries: u64,
}

/// A sent stream message retained until acknowledged, for retry/replay.
struct Retained {
    msg: StreamMsg,
    bytes: u64,
    attempts: u32,
}

/// Self-message: re-send a lost message after its backoff delay.
struct RetryMsg {
    conn: ConnId,
    msg_id: u64,
}

enum WorkItem {
    Buffer {
        port: usize,
        producer: usize,
        buf: DataBuffer,
        arrived: SimTime,
        conn: ConnId,
        msg_id: u64,
    },
    Eow {
        port: usize,
        uow: u32,
        conn: ConnId,
        msg_id: u64,
    },
    UowStart {
        uow: u32,
        desc: Arc<dyn Any + Send + Sync>,
    },
}

enum OutItem {
    Buf(DataBuffer),
    Eow(u32),
}

struct ComputeDone {
    outputs: Vec<(usize, DataBuffer)>,
    flush_eow: Option<u32>,
    continue_uow: Option<u32>,
    /// Reverse connection to notify with a completion `Done` message
    /// (RoundRobinAcked instrumentation).
    done_notify: Option<ConnId>,
}

/// The runtime actor for one transparent copy of a filter.
pub struct FilterProcess {
    name: String,
    copy: usize,
    copies: usize,
    /// Probe track / metric prefix: `dc.{name}[{copy}]`.
    track: String,
    /// Monotonic span id for probe compute spans.
    next_span: u64,
    logic: Box<dyn FilterLogic>,
    net: Network,
    wiring_slot: Arc<Mutex<Option<CopyWiring>>>,
    wiring: Option<CopyWiring>,
    inbox: VecDeque<WorkItem>,
    busy: bool,
    out_queues: Vec<VecDeque<OutItem>>,
    scheds: Vec<Scheduler>,
    /// Send timestamps per `[port][consumer]` for ack matching (FIFO).
    sent_times: Vec<Vec<VecDeque<SimTime>>>,
    /// Send timestamps per `[port][consumer]` for completion matching.
    done_times: Vec<Vec<VecDeque<SimTime>>>,
    /// EOW markers seen per `(uow, port)`.
    eow_seen: HashMap<(u32, usize), usize>,
    /// Ports fully ended per uow.
    ports_done: HashMap<u32, usize>,
    /// `(port, consumer)` for every outbound data connection, for failover.
    out_index: HashMap<ConnId, (usize, usize)>,
    /// Unacknowledged sends retained for retry/replay (recovery mode only).
    retained: HashMap<ConnId, HashMap<u64, Retained>>,
    /// Connections failed over away from; late events on them are ignored.
    dead_conns: HashSet<ConnId>,
    /// Connections with a retry in flight, awaiting a post-retry ack.
    recovering: HashSet<ConnId>,
    /// Collected statistics.
    pub stats: FilterStats,
    /// Ack (processing-start) round-trip log, if enabled.
    pub ack_log: Vec<AckRecord>,
    /// Completion (processing-end) round-trip log, if enabled
    /// (RoundRobinAcked streams only).
    pub done_log: Vec<AckRecord>,
}

impl FilterProcess {
    /// Construct a copy; wiring arrives later through the shared slot.
    pub fn new(
        name: String,
        copy: usize,
        copies: usize,
        logic: Box<dyn FilterLogic>,
        net: Network,
        wiring_slot: Arc<Mutex<Option<CopyWiring>>>,
    ) -> FilterProcess {
        let track = format!("dc.{name}[{copy}]");
        FilterProcess {
            name,
            copy,
            copies,
            track,
            next_span: 0,
            logic,
            net,
            wiring_slot,
            wiring: None,
            inbox: VecDeque::new(),
            busy: false,
            out_queues: Vec::new(),
            scheds: Vec::new(),
            sent_times: Vec::new(),
            done_times: Vec::new(),
            eow_seen: HashMap::new(),
            ports_done: HashMap::new(),
            out_index: HashMap::new(),
            retained: HashMap::new(),
            dead_conns: HashSet::new(),
            recovering: HashSet::new(),
            stats: FilterStats::default(),
            ack_log: Vec::new(),
            done_log: Vec::new(),
        }
    }

    fn wiring(&self) -> &CopyWiring {
        self.wiring.as_ref().expect("wiring installed at start")
    }

    /// Report the current inbox depth as a probe gauge.
    fn gauge_inbox(&self, ctx: &mut Ctx<'_>) {
        let depth = self.inbox.len() as f64;
        let track = &self.track;
        ctx.probe_emit(|t| ProbeEvent::Gauge {
            name: format!("{track}.inbox"),
            time: t,
            value: depth,
        });
    }

    /// Emit a global `+1` counter probe (fault/recovery bookkeeping).
    fn count_probe(ctx: &mut Ctx<'_>, name: &'static str) {
        ctx.probe_emit(|t| ProbeEvent::Counter {
            name: name.to_string(),
            time: t,
            delta: 1.0,
        });
    }

    /// Send on a stream connection, retaining a copy for retry/replay when
    /// the cluster runs under a fault plan. `Done` completion notices are
    /// best-effort instrumentation and are never retained.
    fn send_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, bytes: u64, msg: StreamMsg) {
        if self.wiring().recovery.is_some() && !matches!(msg, StreamMsg::Done) {
            let msg_id = self.net.send(ctx, conn, bytes, Message::new(msg.clone()));
            self.retained.entry(conn).or_default().insert(
                msg_id,
                Retained {
                    msg,
                    bytes,
                    attempts: 0,
                },
            );
        } else {
            self.net.send(ctx, conn, bytes, Message::new(msg));
        }
    }

    /// Transport-reported send failure: retry with backoff, or fail the
    /// consumer copy over once retries are exhausted or the peer is dead.
    fn on_stream_error(&mut self, ctx: &mut Ctx<'_>, e: StreamError) {
        self.stats.stream_errors += 1;
        Self::count_probe(ctx, "dc.stream.error");
        if self.dead_conns.contains(&e.conn) {
            return;
        }
        let cfg = self.wiring().recovery.unwrap_or_default();
        let attempts = self
            .retained
            .get(&e.conn)
            .and_then(|m| m.get(&e.msg_id))
            .map(|r| r.attempts);
        let can_retry =
            matches!(e.kind, StreamErrorKind::Lost) && attempts.is_some_and(|a| a < cfg.retries);
        if can_retry {
            let attempts = {
                let r = self
                    .retained
                    .get_mut(&e.conn)
                    .and_then(|m| m.get_mut(&e.msg_id))
                    .expect("retained entry checked above");
                r.attempts += 1;
                r.attempts
            };
            // Exponential backoff: backoff * 2^(attempts-1), shift-capped.
            let delay = cfg.backoff.mul_f64((1u64 << (attempts - 1).min(16)) as f64);
            if self.out_index.contains_key(&e.conn) {
                self.recovering.insert(e.conn);
            }
            ctx.send_self_in(
                delay,
                Message::new(RetryMsg {
                    conn: e.conn,
                    msg_id: e.msg_id,
                }),
            );
        } else if self.out_index.contains_key(&e.conn) {
            self.fail_conn(ctx, e.conn);
        } else {
            // A lost control message out of retries (or one that was never
            // retained): give up on it without failing anything over.
            Self::count_probe(ctx, "dc.stream.ack_lost");
        }
    }

    /// Re-send a lost message once its backoff timer fires.
    fn retry_send(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg_id: u64) {
        if self.dead_conns.contains(&conn) {
            return;
        }
        let Some(r) = self.retained.get_mut(&conn).and_then(|m| m.remove(&msg_id)) else {
            return;
        };
        self.stats.retries += 1;
        Self::count_probe(ctx, "dc.stream.retry");
        let new_id = self
            .net
            .send(ctx, conn, r.bytes, Message::new(r.msg.clone()));
        self.retained.entry(conn).or_default().insert(new_id, r);
    }

    /// Permanently fail a data-out connection over: mark the consumer copy
    /// dead, write off its window, and replay retained buffers (in send
    /// order) to the surviving copies on the port.
    fn fail_conn(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if !self.dead_conns.insert(conn) {
            return;
        }
        let Some(&(port, consumer)) = self.out_index.get(&conn) else {
            return;
        };
        self.scheds[port].on_dead(consumer);
        self.sent_times[port][consumer].clear();
        self.done_times[port][consumer].clear();
        self.recovering.remove(&conn);
        self.stats.consumers_failed += 1;
        Self::count_probe(ctx, "dc.stream.failover");
        let mut lost: Vec<(u64, Retained)> = self
            .retained
            .remove(&conn)
            .map(|m| m.into_iter().collect())
            .unwrap_or_default();
        lost.sort_by_key(|&(id, _)| id);
        // push_front in reverse keeps the original send order at the head
        // of the queue, ahead of not-yet-sent buffers.
        for (_, r) in lost.into_iter().rev() {
            if let StreamMsg::Data(buf) = r.msg {
                self.out_queues[port].push_front(OutItem::Buf(buf));
            }
        }
        self.dispatch(ctx, port);
    }

    fn filter_ctx<'a>(
        now: SimTime,
        copy: usize,
        copies: usize,
        rng: &'a mut rand::rngs::SmallRng,
        external: &'a mut Vec<(ProcessId, Message)>,
    ) -> FilterCtx<'a> {
        FilterCtx {
            now,
            copy,
            copies,
            rng,
            external,
        }
    }

    /// Run a logic callback, charge the CPU, and arrange the completion.
    fn run_logic<F>(
        &mut self,
        ctx: &mut Ctx<'_>,
        flush_eow_after: Option<u32>,
        done_notify: Option<ConnId>,
        call: F,
    ) where
        F: FnOnce(&mut Box<dyn FilterLogic>, &mut FilterCtx<'_>) -> Action,
    {
        let mut external = Vec::new();
        let now = ctx.now();
        let (copy, copies) = (self.copy, self.copies);
        let mut action = {
            let mut fc = Self::filter_ctx(now, copy, copies, ctx.rng(), &mut external);
            call(&mut self.logic, &mut fc)
        };
        for (pid, msg) in external {
            ctx.send(pid, msg);
        }
        let factor = {
            let speed = self.wiring().speed;
            speed.factor(now, ctx.rng())
        };
        let scaled = action.compute.mul_f64(factor);
        self.stats.compute_busy += scaled;
        self.busy = true;
        let done = ComputeDone {
            outputs: std::mem::take(&mut action.outputs),
            flush_eow: flush_eow_after.or(action.end_uow),
            continue_uow: action.continue_uow,
            done_notify,
        };
        let cpu = self.wiring().cpu;
        let completion = ctx.use_resource(cpu, scaled, Message::new(done));
        if ctx.probe_enabled() {
            let id = self.next_span;
            self.next_span += 1;
            let track = self.track.clone();
            // The span covers actual CPU occupancy: it starts when the
            // contended CPU grants service, not at the request instant.
            ctx.probe_emit(|_| ProbeEvent::SpanBegin {
                track: track.clone(),
                label: "compute".to_string(),
                time: completion - scaled,
                id,
            });
            let track = self.track.clone();
            ctx.probe_emit(|_| ProbeEvent::SpanEnd {
                track,
                time: completion,
                id,
            });
            let name = format!("{}.busy_us", self.track);
            let delta = scaled.as_micros_f64();
            ctx.probe_emit(|t| ProbeEvent::Counter {
                name,
                time: t,
                delta,
            });
        }
    }

    /// Emit buffers/EOW into output queues and dispatch what flow allows.
    fn emit(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<(usize, DataBuffer)>) {
        for (port, buf) in outputs {
            assert!(
                port < self.out_queues.len(),
                "{}[{}]: emit on unknown output port {port}",
                self.name,
                self.copy
            );
            self.out_queues[port].push_back(OutItem::Buf(buf));
        }
        for port in 0..self.out_queues.len() {
            self.dispatch(ctx, port);
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, port: usize) {
        self.dispatch_inner(ctx, port);
        // Post-dispatch backlog: what the scheduler could not place, i.e.
        // the demand-driven window pressure on this output port.
        let depth = self.out_queues[port].len() as f64;
        let track = &self.track;
        ctx.probe_emit(|t| ProbeEvent::Gauge {
            name: format!("{track}.out{port}"),
            time: t,
            value: depth,
        });
    }

    fn dispatch_inner(&mut self, ctx: &mut Ctx<'_>, port: usize) {
        loop {
            match self.out_queues[port].front() {
                None => return,
                Some(OutItem::Eow(_)) => {
                    let Some(OutItem::Eow(uow)) = self.out_queues[port].pop_front() else {
                        unreachable!()
                    };
                    // EOW is broadcast to every live consumer copy, outside
                    // the demand-driven window (it carries no data).
                    let conns = self.wiring().outputs[port].data_conns.clone();
                    for (i, conn) in conns.into_iter().enumerate() {
                        if self.scheds[port].is_dead(i) {
                            continue;
                        }
                        self.send_stream(ctx, conn, CONTROL_BYTES, StreamMsg::Eow { uow });
                    }
                }
                Some(OutItem::Buf(_)) => {
                    let Some(i) = self.scheds[port].pick() else {
                        if self.scheds[port].alive() == 0 && self.wiring().recovery.is_some() {
                            // Every consumer copy on this port is dead: the
                            // buffer can never be delivered. Count and drop
                            // it rather than wedging the queue forever.
                            self.out_queues[port].pop_front();
                            self.stats.buffers_failed += 1;
                            Self::count_probe(ctx, "dc.stream.failed");
                            continue;
                        }
                        return; // demand-driven: all consumers at the cap
                    };
                    let Some(OutItem::Buf(buf)) = self.out_queues[port].pop_front() else {
                        unreachable!()
                    };
                    self.scheds[port].on_sent(i);
                    let policy = self.scheds[port].policy();
                    if policy.wants_acks() {
                        self.sent_times[port][i].push_back(ctx.now());
                    }
                    if matches!(policy, Policy::RoundRobinAcked) {
                        self.done_times[port][i].push_back(ctx.now());
                    }
                    self.stats.buffers_out += 1;
                    self.stats.bytes_out += buf.bytes;
                    let conn = self.wiring().outputs[port].data_conns[i];
                    let bytes = buf.bytes;
                    self.send_stream(ctx, conn, bytes, StreamMsg::Data(buf));
                }
            }
        }
    }

    /// Start processing the next inbox item if idle.
    fn maybe_start(&mut self, ctx: &mut Ctx<'_>) {
        while !self.busy {
            let Some(item) = self.inbox.pop_front() else {
                return;
            };
            self.gauge_inbox(ctx);
            match item {
                WorkItem::Buffer {
                    port,
                    producer,
                    buf,
                    arrived,
                    conn,
                    msg_id,
                } => {
                    // Processing starts now: consume transport resources and
                    // send the demand-driven ack.
                    self.net.consumed(ctx, conn, msg_id);
                    let input = &self.wiring().inputs[port];
                    let input_policy = input.policy;
                    let ack_conn_for_done = input.ack_conns[producer];
                    if input_policy.wants_acks() {
                        self.send_stream(ctx, ack_conn_for_done, CONTROL_BYTES, StreamMsg::Ack);
                    }
                    self.stats.buffers_in += 1;
                    self.stats.bytes_in += buf.bytes;
                    self.stats
                        .queue_wait_us
                        .add(ctx.now().since(arrived).as_micros_f64());
                    let done_notify = if matches!(input_policy, Policy::RoundRobinAcked) {
                        Some(ack_conn_for_done)
                    } else {
                        None
                    };
                    self.run_logic(ctx, None, done_notify, |logic, fc| {
                        logic.on_buffer(fc, port, buf)
                    });
                }
                WorkItem::Eow {
                    port,
                    uow,
                    conn,
                    msg_id,
                } => {
                    self.net.consumed(ctx, conn, msg_id);
                    let producers = self.wiring().inputs[port].producers;
                    let seen = self.eow_seen.entry((uow, port)).or_insert(0);
                    *seen += 1;
                    if *seen == producers {
                        self.eow_seen.remove(&(uow, port));
                        let done = self.ports_done.entry(uow).or_insert(0);
                        *done += 1;
                        if *done == self.wiring().inputs.len() {
                            self.ports_done.remove(&uow);
                            self.stats.uow_ends.push((uow, ctx.now()));
                            self.run_logic(ctx, Some(uow), None, |logic, fc| {
                                logic.on_uow_end(fc, uow)
                            });
                        }
                    }
                }
                WorkItem::UowStart { uow, desc } => {
                    self.run_logic(ctx, None, None, |logic, fc| {
                        logic.on_uow_start(fc, uow, desc)
                    });
                }
            }
        }
    }
}

impl Process for FilterProcess {
    fn name(&self) -> String {
        format!("{}[{}]", self.name, self.copy)
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let wiring = self
            .wiring_slot
            .lock()
            .expect("wiring lock")
            .take()
            .unwrap_or_else(|| panic!("{}: wiring was not installed", self.name));
        self.out_queues = wiring.outputs.iter().map(|_| VecDeque::new()).collect();
        self.scheds = wiring
            .outputs
            .iter()
            .map(|o| Scheduler::new(o.policy, o.data_conns.len()))
            .collect();
        self.sent_times = wiring
            .outputs
            .iter()
            .map(|o| vec![VecDeque::new(); o.data_conns.len()])
            .collect();
        self.done_times = self.sent_times.clone();
        self.out_index = wiring
            .outputs
            .iter()
            .enumerate()
            .flat_map(|(p, o)| {
                o.data_conns
                    .iter()
                    .enumerate()
                    .map(move |(i, &c)| (c, (p, i)))
            })
            .collect();
        self.wiring = Some(wiring);
        let mut external = Vec::new();
        let now = ctx.now();
        let (copy, copies) = (self.copy, self.copies);
        {
            let mut fc = Self::filter_ctx(now, copy, copies, ctx.rng(), &mut external);
            self.logic.init(&mut fc);
        }
        for (pid, msg) in external {
            ctx.send(pid, msg);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if self
            .wiring
            .as_ref()
            .is_some_and(|w| w.crash_at.is_some_and(|t| ctx.now() >= t))
        {
            // The node has fail-stopped: this copy plays dead and drops
            // everything (peers observe the loss through the transport's
            // crash cut, not through any reply from here).
            Self::count_probe(ctx, "dc.dead_drop");
            return;
        }
        let msg = match msg.downcast::<Delivery>() {
            Ok(d) => {
                let Some(&route) = self.wiring().routes.get(&d.conn) else {
                    // A delivery racing teardown, or one for a connection
                    // this copy never owned: count and discard instead of
                    // panicking, and leave the transport's flow state for
                    // the unknown route untouched.
                    self.stats.stale_deliveries += 1;
                    Self::count_probe(ctx, "dc.stream.stale_delivery");
                    return;
                };
                match route {
                    Route::DataIn { port, producer } => {
                        match d.payload.downcast::<StreamMsg>().expect("stream message") {
                            StreamMsg::Data(buf) => self.inbox.push_back(WorkItem::Buffer {
                                port,
                                producer,
                                buf,
                                arrived: ctx.now(),
                                conn: d.conn,
                                msg_id: d.msg_id,
                            }),
                            StreamMsg::Eow { uow } => self.inbox.push_back(WorkItem::Eow {
                                port,
                                uow,
                                conn: d.conn,
                                msg_id: d.msg_id,
                            }),
                            StreamMsg::Ack | StreamMsg::Done => {
                                panic!("control message arrived on a data route")
                            }
                        }
                        self.gauge_inbox(ctx);
                    }
                    Route::AckIn { port, consumer } => {
                        self.net.consumed(ctx, d.conn, d.msg_id);
                        // Under a fault plan, acks can be late (after a
                        // failover wrote the window off) or duplicated (a
                        // spurious-loss retry): tolerate rather than assert.
                        let lenient = self.wiring().recovery.is_some();
                        if lenient && self.scheds[port].is_dead(consumer) {
                            self.maybe_start(ctx);
                            return;
                        }
                        match d.payload.downcast::<StreamMsg>().expect("stream message") {
                            StreamMsg::Ack => {
                                if !lenient || self.scheds[port].unacked(consumer) > 0 {
                                    self.scheds[port].on_ack(consumer);
                                }
                                ctx.probe_emit(|t| ProbeEvent::Counter {
                                    name: "dc.acks".to_string(),
                                    time: t,
                                    delta: 1.0,
                                });
                                let sent_at = if lenient {
                                    self.sent_times[port][consumer].pop_front()
                                } else {
                                    Some(
                                        self.sent_times[port][consumer]
                                            .pop_front()
                                            .expect("ack matches a sent buffer"),
                                    )
                                };
                                if let Some(sent_at) = sent_at {
                                    if self.wiring().ack_log {
                                        self.ack_log.push(AckRecord {
                                            port,
                                            consumer,
                                            sent_at,
                                            acked_at: ctx.now(),
                                        });
                                    }
                                }
                                let fwd = self.wiring().outputs[port].data_conns[consumer];
                                if self.recovering.remove(&fwd) {
                                    self.stats.streams_recovered += 1;
                                    Self::count_probe(ctx, "dc.stream.recovered");
                                }
                                self.dispatch(ctx, port);
                            }
                            StreamMsg::Done => {
                                let sent_at = if lenient {
                                    self.done_times[port][consumer].pop_front()
                                } else {
                                    Some(
                                        self.done_times[port][consumer]
                                            .pop_front()
                                            .expect("done matches a sent buffer"),
                                    )
                                };
                                if let Some(sent_at) = sent_at {
                                    if self.wiring().ack_log {
                                        self.done_log.push(AckRecord {
                                            port,
                                            consumer,
                                            sent_at,
                                            acked_at: ctx.now(),
                                        });
                                    }
                                }
                            }
                            _ => panic!("data message arrived on an ack route"),
                        }
                    }
                }
                self.maybe_start(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<StreamError>() {
            Ok(e) => {
                self.on_stream_error(ctx, e);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RetryMsg>() {
            Ok(r) => {
                self.retry_send(ctx, r.conn, r.msg_id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<UowStartMsg>() {
            Ok(s) => {
                self.inbox.push_back(WorkItem::UowStart {
                    uow: s.uow,
                    desc: s.desc,
                });
                self.gauge_inbox(ctx);
                self.maybe_start(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ComputeDone>() {
            Ok(done) => {
                if let Some(conn) = done.done_notify {
                    self.net
                        .send(ctx, conn, CONTROL_BYTES, Message::new(StreamMsg::Done));
                }
                self.emit(ctx, done.outputs);
                if let Some(uow) = done.flush_eow {
                    for q in &mut self.out_queues {
                        q.push_back(OutItem::Eow(uow));
                    }
                    for port in 0..self.out_queues.len() {
                        self.dispatch(ctx, port);
                    }
                }
                if let Some(uow) = done.continue_uow {
                    self.busy = false;
                    self.run_logic(ctx, None, None, |logic, fc| logic.on_continue(fc, uow));
                } else {
                    self.busy = false;
                    self.maybe_start(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<Shutdown>().is_ok() {
            let mut external = Vec::new();
            let now = ctx.now();
            let (copy, copies) = (self.copy, self.copies);
            {
                let mut fc = Self::filter_ctx(now, copy, copies, ctx.rng(), &mut external);
                self.logic.finalize(&mut fc);
            }
            for (pid, m) in external {
                ctx.send(pid, m);
            }
            return;
        }
        panic!("{}: unknown message type", self.name);
    }
}
