//! The user-facing filter programming model: DataCutter's
//! init / process / finalize interface, adapted to the event-driven kernel.
//!
//! A filter author implements [`FilterLogic`]. Each callback returns an
//! [`Action`]: how much CPU the processing consumes and which buffers to
//! emit on which output ports once that computation finishes. The runtime
//! ([`crate::filter::FilterProcess`]) charges the CPU resource, applies the
//! node's speed model, emits the outputs through the stream scheduler, and
//! handles end-of-work propagation.

use crate::buffer::DataBuffer;
use hpsock_sim::{Dur, Message, ProcessId, SimTime};
use rand::rngs::SmallRng;
use std::any::Any;
use std::sync::Arc;

/// The result of one filter callback: computation to charge, buffers to
/// emit afterwards, and an optional continuation.
pub struct Action {
    /// CPU demand for this processing step (scaled by the node speed
    /// model before charging).
    pub compute: Dur,
    /// `(output_port, buffer)` pairs emitted when the computation ends.
    pub outputs: Vec<(usize, DataBuffer)>,
    /// If set, the runtime calls [`FilterLogic::on_continue`] for this
    /// unit of work right after emitting the outputs — the idiom source
    /// filters use to generate a long buffer sequence with paced,
    /// per-buffer cost.
    pub continue_uow: Option<u32>,
    /// If set (source filters only), the runtime appends the end-of-work
    /// marker for this unit of work on every output stream after emitting
    /// the outputs. Non-source filters never set this: the runtime
    /// propagates EOW automatically after [`FilterLogic::on_uow_end`].
    pub end_uow: Option<u32>,
}

impl Action {
    /// No computation, no outputs.
    pub fn none() -> Action {
        Action {
            compute: Dur::ZERO,
            outputs: Vec::new(),
            continue_uow: None,
            end_uow: None,
        }
    }

    /// Computation only.
    pub fn compute(compute: Dur) -> Action {
        Action {
            compute,
            ..Action::none()
        }
    }

    /// Emit one buffer on `port` after `compute`.
    pub fn emit(compute: Dur, port: usize, buf: DataBuffer) -> Action {
        Action {
            compute,
            outputs: vec![(port, buf)],
            ..Action::none()
        }
    }

    /// Request a continuation for `uow`.
    pub fn and_continue(mut self, uow: u32) -> Action {
        self.continue_uow = Some(uow);
        self
    }

    /// Append this unit of work's end-of-work marker after the outputs
    /// (source filters).
    pub fn and_end_uow(mut self, uow: u32) -> Action {
        self.end_uow = Some(uow);
        self
    }
}

/// Read-only/side-channel context handed to filter callbacks.
pub struct FilterCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// This copy's index among the filter's transparent copies.
    pub copy: usize,
    /// Total transparent copies of this filter.
    pub copies: usize,
    /// Deterministic per-process RNG stream.
    pub rng: &'a mut SmallRng,
    /// Messages to deliver to non-filter processes (e.g. "unit of work
    /// done" notifications to an experiment driver); sent when the
    /// callback returns.
    pub external: &'a mut Vec<(ProcessId, Message)>,
}

impl<'a> FilterCtx<'a> {
    /// Queue a message to an arbitrary process (delivered at the current
    /// instant).
    pub fn notify(&mut self, target: ProcessId, msg: Message) {
        self.external.push((target, msg));
    }
}

/// A filter's behaviour. All callbacks default to "do nothing".
pub trait FilterLogic: Send + 'static {
    /// Called once when the filter group is instantiated (DataCutter
    /// `init`): pre-allocate state.
    fn init(&mut self, _fc: &mut FilterCtx<'_>) {}

    /// A new unit of work arrived at this (source) filter with an opaque
    /// descriptor (e.g. a query). Non-source filters never receive this.
    fn on_uow_start(
        &mut self,
        _fc: &mut FilterCtx<'_>,
        _uow: u32,
        _desc: Arc<dyn Any + Send + Sync>,
    ) -> Action {
        Action::none()
    }

    /// Continuation requested by a previous [`Action::and_continue`].
    fn on_continue(&mut self, _fc: &mut FilterCtx<'_>, _uow: u32) -> Action {
        Action::none()
    }

    /// A data buffer arrived on input port `port` (DataCutter `process`).
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, _buf: DataBuffer) -> Action {
        Action::none()
    }

    /// Every producer copy on every input stream has ended `uow`; after
    /// the returned action completes, the runtime forwards the end-of-work
    /// marker downstream.
    fn on_uow_end(&mut self, _fc: &mut FilterCtx<'_>, _uow: u32) -> Action {
        Action::none()
    }

    /// The filter group is being torn down (DataCutter `finalize`).
    fn finalize(&mut self, _fc: &mut FilterCtx<'_>) {}
}

/// Per-copy speed model: multiplies computation demand. Emulates
/// heterogeneous and dynamically shared nodes exactly as the paper does
/// ("making some of the nodes do the processing on the data more than
/// once").
#[derive(Debug, Clone, Copy)]
pub enum SpeedModel {
    /// Constant multiplier (1.0 = the paper's 1 GHz PIII baseline).
    Uniform(f64),
    /// Node becomes `after`× slower at time `t` (Figure 10's scenario).
    StepAt {
        /// Instant the slowdown begins.
        t: SimTime,
        /// Multiplier before `t`.
        before: f64,
        /// Multiplier from `t` on.
        after: f64,
    },
    /// Each buffer independently runs `factor`× slower with probability
    /// `prob` (Figure 11's scenario).
    RandomSlow {
        /// Probability a given buffer is processed at the slow rate.
        prob: f64,
        /// Slowdown multiplier when slow (the "factor of heterogeneity").
        factor: f64,
    },
}

impl SpeedModel {
    /// The multiplier to apply to a buffer's compute demand at `now`.
    pub fn factor(&self, now: SimTime, rng: &mut SmallRng) -> f64 {
        use rand::Rng;
        match *self {
            SpeedModel::Uniform(f) => f,
            SpeedModel::StepAt { t, before, after } => {
                if now >= t {
                    after
                } else {
                    before
                }
            }
            SpeedModel::RandomSlow { prob, factor } => {
                if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    factor
                } else {
                    1.0
                }
            }
        }
    }
}

impl Default for SpeedModel {
    fn default() -> Self {
        SpeedModel::Uniform(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn action_builders() {
        let a = Action::none();
        assert_eq!(a.compute, Dur::ZERO);
        assert!(a.outputs.is_empty());
        let a = Action::emit(Dur::micros(5), 1, DataBuffer::new(0, 10, 0)).and_continue(7);
        assert_eq!(a.compute, Dur::micros(5));
        assert_eq!(a.outputs.len(), 1);
        assert_eq!(a.outputs[0].0, 1);
        assert_eq!(a.continue_uow, Some(7));
    }

    #[test]
    fn speed_uniform_and_step() {
        let mut rng = SmallRng::seed_from_u64(1);
        let u = SpeedModel::Uniform(2.0);
        assert_eq!(u.factor(SimTime::ZERO, &mut rng), 2.0);
        let s = SpeedModel::StepAt {
            t: SimTime::from_nanos(100),
            before: 1.0,
            after: 4.0,
        };
        assert_eq!(s.factor(SimTime::from_nanos(99), &mut rng), 1.0);
        assert_eq!(s.factor(SimTime::from_nanos(100), &mut rng), 4.0);
    }

    #[test]
    fn speed_random_slow_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = SpeedModel::RandomSlow {
            prob: 0.3,
            factor: 8.0,
        };
        let n = 10_000;
        let slow = (0..n)
            .filter(|_| m.factor(SimTime::ZERO, &mut rng) > 1.0)
            .count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "observed {frac}");
    }
}
