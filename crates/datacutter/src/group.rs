//! Filter groups: declaring an application's processing structure and
//! instantiating it onto a cluster.
//!
//! A [`GroupBuilder`] collects filter declarations (name, placement of
//! transparent copies, logic factory) and logical streams between them,
//! then [`GroupBuilder::instantiate`] creates one [`FilterProcess`] per
//! copy, establishes every producer-copy → consumer-copy duplex connection
//! through the chosen sockets [`Provider`] (connections are set up before
//! the run, as in DataCutter), and installs the wiring.

use crate::filter::{CopyWiring, FilterProcess, InputWiring, OutputWiring, Route, UowStartMsg};
use crate::logic::{FilterLogic, SpeedModel};
use crate::sched::Policy;
use hpsock_net::{Cluster, NodeId};
use hpsock_sim::{Ctx, Message, ProcessId, Sim, SimTime};
use socketvia::Provider;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Handle to a declared filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterHandle(pub usize);

/// Handle to a declared stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHandle(pub usize);

/// Factory producing the logic for copy `i` of a filter.
pub type LogicFactory = Box<dyn FnMut(usize) -> Box<dyn FilterLogic>>;

struct FilterDef {
    name: String,
    placement: Vec<NodeId>,
    factory: LogicFactory,
    speeds: Vec<SpeedModel>,
    ack_log: bool,
}

struct StreamDef {
    from: FilterHandle,
    to: FilterHandle,
    policy: Policy,
    provider: Provider,
}

/// Declarative description of a filter group.
#[derive(Default)]
pub struct GroupBuilder {
    filters: Vec<FilterDef>,
    streams: Vec<StreamDef>,
}

impl GroupBuilder {
    /// An empty group.
    pub fn new() -> GroupBuilder {
        GroupBuilder::default()
    }

    /// Declare a filter with one transparent copy per placement node.
    pub fn filter(
        &mut self,
        name: impl Into<String>,
        placement: Vec<NodeId>,
        factory: LogicFactory,
    ) -> FilterHandle {
        assert!(!placement.is_empty(), "a filter needs at least one copy");
        let speeds = vec![SpeedModel::default(); placement.len()];
        self.filters.push(FilterDef {
            name: name.into(),
            placement,
            factory,
            speeds,
            ack_log: false,
        });
        FilterHandle(self.filters.len() - 1)
    }

    /// Set the compute speed model of one copy (heterogeneity emulation).
    pub fn set_speed(&mut self, f: FilterHandle, copy: usize, model: SpeedModel) {
        self.filters[f.0].speeds[copy] = model;
    }

    /// Record per-buffer send→ack round-trips on this filter's outputs.
    pub fn enable_ack_log(&mut self, f: FilterHandle) {
        self.filters[f.0].ack_log = true;
    }

    /// Declare a logical stream `from → to` with a scheduling `policy`,
    /// carried by `provider`'s transport.
    pub fn stream(
        &mut self,
        from: FilterHandle,
        to: FilterHandle,
        policy: Policy,
        provider: &Provider,
    ) -> StreamHandle {
        assert_ne!(from, to, "self-streams are not supported");
        self.streams.push(StreamDef {
            from,
            to,
            policy,
            provider: provider.clone(),
        });
        StreamHandle(self.streams.len() - 1)
    }

    /// Create every copy process and connection inside `sim`/`cluster`.
    pub fn instantiate(mut self, sim: &mut Sim, cluster: &Cluster) -> Instance {
        let net = cluster.network();
        // 1. Create all copy processes; wiring arrives through slots.
        let mut pids: Vec<Vec<ProcessId>> = Vec::with_capacity(self.filters.len());
        let mut slots: Vec<Vec<Arc<Mutex<Option<CopyWiring>>>>> = Vec::new();
        for def in &mut self.filters {
            let copies = def.placement.len();
            let mut fp = Vec::with_capacity(copies);
            let mut fs = Vec::with_capacity(copies);
            for copy in 0..copies {
                let slot = Arc::new(Mutex::new(None));
                let proc = FilterProcess::new(
                    def.name.clone(),
                    copy,
                    copies,
                    (def.factory)(copy),
                    net.clone(),
                    Arc::clone(&slot),
                );
                fp.push(sim.add_process(Box::new(proc)));
                fs.push(slot);
            }
            pids.push(fp);
            slots.push(fs);
        }

        // 2. Port numbering: the i-th stream leaving (entering) a filter is
        //    its output (input) port i, in declaration order.
        let mut wirings: Vec<Vec<CopyWiring>> = self
            .filters
            .iter()
            .map(|def| {
                def.placement
                    .iter()
                    .zip(&def.speeds)
                    .map(|(&node, &speed)| CopyWiring {
                        node,
                        cpu: cluster.cpu(node),
                        inputs: Vec::new(),
                        outputs: Vec::new(),
                        routes: HashMap::new(),
                        speed,
                        ack_log: def.ack_log,
                        recovery: cluster.fault_recovery(),
                        crash_at: cluster.crash_time(node),
                    })
                    .collect()
            })
            .collect();

        for sdef in &self.streams {
            let (fi, ti) = (sdef.from.0, sdef.to.0);
            let out_port = wirings[fi][0].outputs.len();
            let in_port = wirings[ti][0].inputs.len();
            let producers = self.filters[fi].placement.len();
            let consumers = self.filters[ti].placement.len();
            for w in &mut wirings[fi] {
                w.outputs.push(OutputWiring {
                    policy: sdef.policy,
                    data_conns: Vec::with_capacity(consumers),
                });
            }
            for w in &mut wirings[ti] {
                w.inputs.push(InputWiring {
                    policy: sdef.policy,
                    producers,
                    ack_conns: Vec::with_capacity(producers),
                });
            }
            for pc in 0..producers {
                for cc in 0..consumers {
                    let p_ep = cluster.endpoint(self.filters[fi].placement[pc], pids[fi][pc]);
                    let c_ep = cluster.endpoint(self.filters[ti].placement[cc], pids[ti][cc]);
                    let (fwd, rev) = sdef.provider.duplex(&net, p_ep, c_ep);
                    let pw = &mut wirings[fi][pc];
                    pw.outputs[out_port].data_conns.push(fwd);
                    pw.routes.insert(
                        rev,
                        Route::AckIn {
                            port: out_port,
                            consumer: cc,
                        },
                    );
                    let cw = &mut wirings[ti][cc];
                    cw.inputs[in_port].ack_conns.push(rev);
                    cw.routes.insert(
                        fwd,
                        Route::DataIn {
                            port: in_port,
                            producer: pc,
                        },
                    );
                }
            }
        }

        // 3. Install the wiring.
        for (f, fw) in wirings.into_iter().enumerate() {
            for (c, w) in fw.into_iter().enumerate() {
                *slots[f][c].lock().expect("wiring lock") = Some(w);
            }
        }

        Instance {
            names: self.filters.iter().map(|d| d.name.clone()).collect(),
            placements: self.filters.iter().map(|d| d.placement.clone()).collect(),
            pids,
        }
    }
}

/// A running (instantiated) filter group.
pub struct Instance {
    names: Vec<String>,
    placements: Vec<Vec<NodeId>>,
    pids: Vec<Vec<ProcessId>>,
}

impl Instance {
    /// Process ids of every copy of filter `f`.
    pub fn pids(&self, f: FilterHandle) -> &[ProcessId] {
        &self.pids[f.0]
    }

    /// Name of filter `f`.
    pub fn name(&self, f: FilterHandle) -> &str {
        &self.names[f.0]
    }

    /// Placement of filter `f`'s copies.
    pub fn placement(&self, f: FilterHandle) -> &[NodeId] {
        &self.placements[f.0]
    }

    /// Schedule a unit of work to start at `at` on every copy of the
    /// (source) filter `f` (called before the run).
    pub fn start_uow_at(
        &self,
        sim: &mut Sim,
        at: SimTime,
        f: FilterHandle,
        uow: u32,
        desc: Arc<dyn Any + Send + Sync>,
    ) {
        for &pid in self.pids(f) {
            sim.schedule_at(
                at,
                pid,
                Message::new(UowStartMsg {
                    uow,
                    desc: Arc::clone(&desc),
                }),
            );
        }
    }

    /// Start a unit of work from inside a driver process.
    pub fn start_uow(
        &self,
        ctx: &mut Ctx<'_>,
        f: FilterHandle,
        uow: u32,
        desc: Arc<dyn Any + Send + Sync>,
    ) {
        for &pid in self.pids(f) {
            ctx.send(
                pid,
                Message::new(UowStartMsg {
                    uow,
                    desc: Arc::clone(&desc),
                }),
            );
        }
    }

    /// Read a copy's runtime state/statistics after the run.
    pub fn copy<'s>(&self, sim: &'s Sim, f: FilterHandle, copy: usize) -> &'s FilterProcess {
        sim.process::<FilterProcess>(self.pids[f.0][copy])
            .expect("filter process present")
    }
}
