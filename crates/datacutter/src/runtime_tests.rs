//! Runtime-level tests: full filter groups through the simulated cluster.

#![cfg(test)]

use crate::buffer::{DataBuffer, StreamMsg};
use crate::filter::{CopyWiring, FilterProcess};
use crate::group::{FilterHandle, GroupBuilder, Instance};
use crate::logic::{Action, FilterCtx, FilterLogic, SpeedModel};
use crate::sched::Policy;
use hpsock_net::{fault, Cluster, ConnId, Delivery, NodeId, TransportKind};
use hpsock_sim::{Ctx, Dur, Message, Process, ProcessId, Sim, SimTime};
use socketvia::Provider;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Source: emits `blocks` buffers of `bytes` each per unit of work, one per
/// continuation step (paced generation, so demand-driven choices see
/// up-to-date state), then ends the uow.
struct Source {
    blocks: u32,
    bytes: u64,
    emitted: u32,
    read_cost: Dur,
}

impl Source {
    fn new(blocks: u32, bytes: u64) -> Source {
        Source {
            blocks,
            bytes,
            emitted: 0,
            read_cost: Dur::ZERO,
        }
    }
}

impl FilterLogic for Source {
    fn on_uow_start(
        &mut self,
        _fc: &mut FilterCtx<'_>,
        uow: u32,
        _desc: Arc<dyn Any + Send + Sync>,
    ) -> Action {
        self.emitted = 0;
        Action::compute(Dur::ZERO).and_continue(uow)
    }
    fn on_continue(&mut self, _fc: &mut FilterCtx<'_>, uow: u32) -> Action {
        if self.emitted == self.blocks {
            return Action::none().and_end_uow(uow);
        }
        let tag = self.emitted as u64;
        self.emitted += 1;
        Action::emit(self.read_cost, 0, DataBuffer::new(uow, self.bytes, tag)).and_continue(uow)
    }
}

/// Pass-through worker with linear compute (ns per byte).
struct Worker {
    ns_per_byte: u64,
}
impl FilterLogic for Worker {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        let compute = Dur::nanos(self.ns_per_byte * buf.bytes);
        Action::emit(compute, 0, buf)
    }
}

/// Terminal sink: counts bytes/tags and notifies a driver pid on uow end.
#[derive(Default)]
struct SinkLogic {
    bytes: u64,
    buffers: u64,
    tag_sum: u64,
    uow_end_times: Vec<(u32, SimTime)>,
}
impl FilterLogic for SinkLogic {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        self.bytes += buf.bytes;
        self.buffers += 1;
        self.tag_sum += buf.tag;
        Action::none()
    }
    fn on_uow_end(&mut self, fc: &mut FilterCtx<'_>, uow: u32) -> Action {
        self.uow_end_times.push((uow, fc.now));
        Action::none()
    }
}

struct Built {
    sim: Sim,
    inst: Instance,
    src: FilterHandle,
    mid: FilterHandle,
    sink: FilterHandle,
}

/// 1 source -> 3 workers -> 1 sink over `kind`, with `policy` on the
/// source->worker stream.
fn build_pipeline(
    kind: TransportKind,
    policy: Policy,
    blocks: u32,
    block_bytes: u64,
    worker_ns_per_byte: u64,
    speeds: &[SpeedModel],
) -> Built {
    let mut sim = Sim::new(42);
    let cluster = Cluster::build(&mut sim, 5);
    let provider = Provider::new(kind);
    let mut g = GroupBuilder::new();
    let src = g.filter(
        "src",
        vec![NodeId(0)],
        Box::new(move |_| Box::new(Source::new(blocks, block_bytes))),
    );
    let mid = g.filter(
        "work",
        vec![NodeId(1), NodeId(2), NodeId(3)],
        Box::new(move |_| {
            Box::new(Worker {
                ns_per_byte: worker_ns_per_byte,
            })
        }),
    );
    let sink = g.filter(
        "sink",
        vec![NodeId(4)],
        Box::new(|_| Box::<SinkLogic>::default()),
    );
    for (copy, &m) in speeds.iter().enumerate() {
        g.set_speed(mid, copy, m);
    }
    g.enable_ack_log(src);
    g.stream(src, mid, policy, &provider);
    g.stream(mid, sink, Policy::RoundRobin, &provider);
    let inst = g.instantiate(&mut sim, &cluster);
    Built {
        sim,
        inst,
        src,
        mid,
        sink,
    }
}

fn run_one_uow(b: &mut Built) -> SimTime {
    b.inst
        .start_uow_at(&mut b.sim, SimTime::ZERO, b.src, 0, Arc::new(()));
    b.sim.run()
}

#[test]
fn bytes_and_buffers_are_conserved_end_to_end() {
    for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
        for policy in [Policy::RoundRobin, Policy::demand_driven()] {
            let mut b = build_pipeline(kind, policy, 64, 2048, 18, &[]);
            run_one_uow(&mut b);
            let sink = b.inst.copy(&b.sim, b.sink, 0);
            assert_eq!(sink.stats.buffers_in, 64, "{:?} {policy:?}", kind);
            assert_eq!(sink.stats.bytes_in, 64 * 2048);
            // Every tag arrives exactly once: sum 0..64.
            let logic_bytes: u64 = (0..64).sum();
            let _ = logic_bytes;
            let mid_total: u64 = (0..3)
                .map(|c| b.inst.copy(&b.sim, b.mid, c).stats.buffers_in)
                .sum();
            assert_eq!(mid_total, 64);
        }
    }
}

#[test]
fn uow_end_reaches_sink_after_all_buffers() {
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::demand_driven(),
        32,
        2048,
        18,
        &[],
    );
    run_one_uow(&mut b);
    let sink = b.inst.copy(&b.sim, b.sink, 0);
    assert_eq!(sink.stats.uow_ends.len(), 1);
    assert_eq!(sink.stats.buffers_in, 32, "EOW arrived after all data");
}

#[test]
fn round_robin_distributes_evenly() {
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::RoundRobin,
        60,
        2048,
        18,
        &[],
    );
    run_one_uow(&mut b);
    for c in 0..3 {
        assert_eq!(b.inst.copy(&b.sim, b.mid, c).stats.buffers_in, 20);
    }
}

#[test]
fn demand_driven_shifts_load_away_from_slow_copy() {
    let speeds = [
        SpeedModel::Uniform(8.0), // copy 0 is 8x slower
        SpeedModel::Uniform(1.0),
        SpeedModel::Uniform(1.0),
    ];
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::demand_driven(),
        300,
        2048,
        18,
        &speeds,
    );
    run_one_uow(&mut b);
    let counts: Vec<u64> = (0..3)
        .map(|c| b.inst.copy(&b.sim, b.mid, c).stats.buffers_in)
        .collect();
    assert_eq!(counts.iter().sum::<u64>(), 300);
    assert!(
        counts[0] * 3 < counts[1] && counts[0] * 3 < counts[2],
        "slow copy got {counts:?}"
    );
}

#[test]
fn demand_driven_beats_round_robin_under_heterogeneity() {
    let speeds = [
        SpeedModel::Uniform(8.0),
        SpeedModel::Uniform(1.0),
        SpeedModel::Uniform(1.0),
    ];
    let run = |policy| {
        let mut b = build_pipeline(TransportKind::SocketVia, policy, 300, 2048, 18, &speeds);
        run_one_uow(&mut b).as_micros_f64()
    };
    let rr = run(Policy::RoundRobin);
    let dd = run(Policy::demand_driven());
    assert!(dd < rr * 0.7, "DD {dd:.0}us should beat RR {rr:.0}us");
}

#[test]
fn ack_log_round_trips_grow_with_slow_consumer() {
    let speeds = [
        SpeedModel::Uniform(10.0),
        SpeedModel::Uniform(1.0),
        SpeedModel::Uniform(1.0),
    ];
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::demand_driven(),
        120,
        8192,
        18,
        &speeds,
    );
    run_one_uow(&mut b);
    let src = b.inst.copy(&b.sim, b.src, 0);
    assert!(!src.ack_log.is_empty(), "ack log recorded");
    let mean_rtt = |consumer: usize| {
        let recs: Vec<_> = src
            .ack_log
            .iter()
            .filter(|r| r.consumer == consumer)
            .collect();
        assert!(!recs.is_empty());
        recs.iter()
            .map(|r| r.acked_at.since(r.sent_at).as_micros_f64())
            .sum::<f64>()
            / recs.len() as f64
    };
    assert!(
        mean_rtt(0) > 2.0 * mean_rtt(1),
        "slow consumer acks slower: {} vs {}",
        mean_rtt(0),
        mean_rtt(1)
    );
}

#[test]
fn multiple_uows_complete_in_order() {
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::demand_driven(),
        16,
        2048,
        18,
        &[],
    );
    for uow in 0..4 {
        b.inst
            .start_uow_at(&mut b.sim, SimTime::ZERO, b.src, uow, Arc::new(()));
    }
    b.sim.run();
    let sink = b.inst.copy(&b.sim, b.sink, 0);
    assert_eq!(sink.stats.buffers_in, 4 * 16);
    let uows: Vec<u32> = sink.stats.uow_ends.iter().map(|&(u, _)| u).collect();
    assert_eq!(uows, vec![0, 1, 2, 3], "FIFO uow completion");
}

#[test]
fn socketvia_pipeline_faster_than_tcp_for_small_blocks() {
    let run = |kind| {
        let mut b = build_pipeline(kind, Policy::demand_driven(), 128, 2048, 0, &[]);
        run_one_uow(&mut b).as_micros_f64()
    };
    let sv = run(TransportKind::SocketVia);
    let tcp = run(TransportKind::KTcp);
    assert!(
        sv < tcp / 2.0,
        "2KB blocks: SocketVIA {sv:.0}us vs TCP {tcp:.0}us"
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut b = build_pipeline(
            TransportKind::KTcp,
            Policy::demand_driven(),
            64,
            4096,
            18,
            &[SpeedModel::RandomSlow {
                prob: 0.5,
                factor: 4.0,
            }],
        );
        run_one_uow(&mut b);
        (b.sim.trace_digest(), b.sim.events_dispatched())
    };
    assert_eq!(run(), run());
}

/// Fires one delivery at `target` for a connection it never owned — the
/// teardown-then-deliver race.
struct StrayDelivery {
    target: ProcessId,
}
impl Process for StrayDelivery {
    fn name(&self) -> String {
        "stray".to_string()
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.target,
            Message::new(Delivery {
                conn: ConnId(9999),
                msg_id: 0,
                bytes: 0,
                sent_at: SimTime::ZERO,
                payload: Message::new(StreamMsg::Ack),
            }),
        );
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
}

/// Regression: a delivery racing filter teardown (or arriving on a
/// connection the copy never owned) used to panic the whole sim; it is now
/// counted and discarded.
#[test]
fn stale_delivery_is_counted_not_a_panic() {
    let mut sim = Sim::new(7);
    let cluster = Cluster::build(&mut sim, 2);
    let slot = Arc::new(Mutex::new(None));
    let lone = FilterProcess::new(
        "lone".to_string(),
        0,
        1,
        Box::<SinkLogic>::default(),
        cluster.network(),
        Arc::clone(&slot),
    );
    let pid = sim.add_process(Box::new(lone));
    *slot.lock().unwrap() = Some(CopyWiring {
        node: NodeId(0),
        cpu: cluster.cpu(NodeId(0)),
        inputs: Vec::new(),
        outputs: Vec::new(),
        routes: HashMap::new(),
        speed: SpeedModel::default(),
        ack_log: false,
        recovery: None,
        crash_at: None,
    });
    sim.add_process(Box::new(StrayDelivery { target: pid }));
    sim.run();
    let fp = sim
        .process::<FilterProcess>(pid)
        .expect("filter process present");
    assert_eq!(fp.stats.stale_deliveries, 1, "counted, not a panic");
}

/// Lossy links with retry/backoff recovery: every buffer still arrives
/// exactly once (no failover, so replay never duplicates).
#[test]
fn lossy_links_recover_and_conserve_buffers() {
    let mut b = fault::with_spec("drop=0.02,detect=200us,backoff=200us", || {
        build_pipeline(
            TransportKind::SocketVia,
            Policy::demand_driven(),
            64,
            2048,
            18,
            &[],
        )
    });
    run_one_uow(&mut b);
    let sink = b.inst.copy(&b.sim, b.sink, 0);
    assert_eq!(sink.stats.buffers_in, 64, "every buffer eventually arrives");
    assert_eq!(sink.stats.bytes_in, 64 * 2048);
    let retries: u64 = (0..3)
        .map(|c| b.inst.copy(&b.sim, b.mid, c).stats.retries)
        .sum::<u64>()
        + b.inst.copy(&b.sim, b.src, 0).stats.retries;
    assert!(retries > 0, "the drop filter actually fired");
    assert_eq!(
        b.inst.copy(&b.sim, b.src, 0).stats.consumers_failed,
        0,
        "bounded loss never exhausts retries"
    );
}

/// Sink that records distinct block tags through shared state, so the
/// crash-failover test can check at-least-once coverage from outside.
struct TagSink {
    tags: Arc<Mutex<HashSet<u64>>>,
}
impl FilterLogic for TagSink {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        self.tags.lock().unwrap().insert(buf.tag);
        Action::none()
    }
}

/// A consumer copy's node fail-stops mid-run: the producer fails it over,
/// replays its retained buffers to the survivors, and every block still
/// reaches the sink at least once.
#[test]
fn crashed_worker_fails_over_and_survivors_cover_all_blocks() {
    let blocks: u32 = 200;
    let tags = Arc::new(Mutex::new(HashSet::new()));
    let (mut sim, inst, src_h) = fault::with_spec("crash=2@300us,detect=100us", || {
        let mut sim = Sim::new(42);
        let cluster = Cluster::build(&mut sim, 5);
        let provider = Provider::new(TransportKind::SocketVia);
        let mut g = GroupBuilder::new();
        let src = g.filter(
            "src",
            vec![NodeId(0)],
            Box::new(move |_| Box::new(Source::new(blocks, 2048))),
        );
        let mid = g.filter(
            "work",
            vec![NodeId(1), NodeId(2), NodeId(3)],
            Box::new(move |_| Box::new(Worker { ns_per_byte: 18 })),
        );
        let sink_tags = Arc::clone(&tags);
        let sink = g.filter(
            "sink",
            vec![NodeId(4)],
            Box::new(move |_| {
                Box::new(TagSink {
                    tags: Arc::clone(&sink_tags),
                })
            }),
        );
        g.stream(src, mid, Policy::demand_driven(), &provider);
        g.stream(mid, sink, Policy::RoundRobin, &provider);
        let inst = g.instantiate(&mut sim, &cluster);
        (sim, inst, src)
    });
    inst.start_uow_at(&mut sim, SimTime::ZERO, src_h, 0, Arc::new(()));
    sim.run();
    let src = inst.copy(&sim, src_h, 0);
    assert!(
        src.stats.consumers_failed >= 1,
        "the crashed worker was failed over away from"
    );
    assert!(src.stats.stream_errors > 0);
    let distinct = tags.lock().unwrap().len();
    assert_eq!(
        distinct, blocks as usize,
        "failover replay keeps at-least-once coverage"
    );
}

#[test]
fn queue_wait_is_recorded() {
    let mut b = build_pipeline(
        TransportKind::SocketVia,
        Policy::demand_driven(),
        64,
        4096,
        180,
        &[],
    );
    run_one_uow(&mut b);
    let w = b.inst.copy(&b.sim, b.mid, 0);
    assert!(w.stats.queue_wait_us.count() > 0);
    assert!(w.stats.compute_busy > Dur::ZERO);
}
