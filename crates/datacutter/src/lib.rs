//! # hpsock-datacutter — a filter-stream runtime (DataCutter reimplementation)
//!
//! Implements the programming model of Beynon et al.'s DataCutter, the
//! component framework the paper uses as its runtime support:
//!
//! * **filters** with init / process / finalize lifecycles ([`FilterLogic`]),
//! * **logical streams** delivering fixed-size [`DataBuffer`]s,
//! * **units of work** bounded by end-of-work markers,
//! * **transparent copies** for data parallelism, with the runtime
//!   maintaining the illusion of a single logical stream,
//! * **Round-Robin** and **Demand-Driven** buffer scheduling between
//!   copies ([`Policy`]), the latter ack-based exactly as in the paper.
//!
//! Filters are simulation actors: computation is charged to the node's CPU
//! resource (scaled by a per-copy [`SpeedModel`] for heterogeneity
//! emulation), and buffers move over the `socketvia` sockets layers, so the
//! whole runtime inherits the calibrated transport behaviour.
//!
//! ## Example: a two-stage pipeline
//!
//! ```
//! use hpsock_datacutter::{
//!     Action, DataBuffer, FilterCtx, FilterLogic, GroupBuilder, Policy,
//! };
//! use hpsock_net::{Cluster, NodeId, TransportKind};
//! use hpsock_sim::{Dur, Sim};
//! use socketvia::Provider;
//! use std::sync::Arc;
//!
//! struct Source { blocks: u32 }
//! impl FilterLogic for Source {
//!     fn on_uow_start(&mut self, _fc: &mut FilterCtx<'_>, uow: u32,
//!                     _d: Arc<dyn std::any::Any + Send + Sync>) -> Action {
//!         let mut a = Action::none();
//!         for i in 0..self.blocks {
//!             a.outputs.push((0, DataBuffer::new(uow, 2048, i as u64)));
//!         }
//!         a.and_end_uow(uow)
//!     }
//! }
//!
//! #[derive(Default)]
//! struct Sink { seen: u64 }
//! impl FilterLogic for Sink {
//!     fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _p: usize, b: DataBuffer) -> Action {
//!         self.seen += b.bytes;
//!         Action::compute(Dur::nanos(18 * b.bytes))
//!     }
//! }
//!
//! let mut sim = Sim::new(1);
//! let cluster = Cluster::build(&mut sim, 3);
//! let provider = Provider::new(TransportKind::SocketVia);
//! let mut g = GroupBuilder::new();
//! let src = g.filter("source", vec![NodeId(0)], Box::new(|_| Box::new(Source { blocks: 8 })));
//! let snk = g.filter("sink", vec![NodeId(1), NodeId(2)],
//!                    Box::new(|_| Box::new(Sink::default())));
//! g.stream(src, snk, Policy::demand_driven(), &provider);
//! let inst = g.instantiate(&mut sim, &cluster);
//! inst.start_uow_at(&mut sim, hpsock_sim::SimTime::ZERO, src, 0, Arc::new(()));
//! sim.run();
//! let total: u64 = (0..2).map(|c| inst.copy(&sim, snk, c).stats.bytes_in).sum();
//! assert_eq!(total, 8 * 2048);
//! ```

pub mod buffer;
pub mod filter;
pub mod group;
pub mod logic;
pub mod sched;

pub use buffer::{DataBuffer, StreamMsg, CONTROL_BYTES};
pub use filter::{AckRecord, FilterProcess, FilterStats, Shutdown, UowStartMsg};
pub use group::{FilterHandle, GroupBuilder, Instance, LogicFactory, StreamHandle};
pub use logic::{Action, FilterCtx, FilterLogic, SpeedModel};
pub use sched::{Policy, Scheduler};

#[cfg(test)]
mod runtime_tests;
