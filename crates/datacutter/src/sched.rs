//! Buffer scheduling between transparent copies: Round-Robin and
//! Demand-Driven, as in DataCutter §4.1.
//!
//! The scheduler is pure bookkeeping (no simulator coupling): the filter
//! runtime asks it which consumer copy should get the next buffer and
//! reports sends and acknowledgment arrivals.
//!
//! * **Round-Robin** cycles through consumer copies unconditionally.
//! * **Demand-Driven** sends to the copy with the fewest unacknowledged
//!   buffers ("the filter that would process them fastest"), and defers
//!   dispatch entirely while every copy is at its outstanding-window cap —
//!   that is what makes it demand *driven* rather than push-balanced.

/// Scheduling policy for one logical stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Cycle through consumer copies.
    RoundRobin,
    /// Round-robin distribution, but consumers still send
    /// processing-start acknowledgments — the instrumentation the
    /// load-balancer reaction-time experiment (Figure 10) relies on.
    RoundRobinAcked,
    /// Min-unacknowledged-buffers choice with a per-consumer outstanding
    /// cap (`window`).
    DemandDriven {
        /// Maximum unacknowledged buffers per consumer copy.
        window: u32,
    },
}

impl Policy {
    /// The paper's demand-driven configuration with a sensible default
    /// window.
    pub fn demand_driven() -> Policy {
        Policy::DemandDriven { window: 8 }
    }

    /// Whether consumers on this stream send processing-start acks.
    pub fn wants_acks(self) -> bool {
        !matches!(self, Policy::RoundRobin)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::RoundRobin | Policy::RoundRobinAcked => "RR",
            Policy::DemandDriven { .. } => "DD",
        }
    }
}

/// Per-output-stream scheduler state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    rr_next: usize,
    unacked: Vec<u32>,
    sent: Vec<u64>,
    acked: Vec<u64>,
    /// Copies failed over away from (crashed node or exhausted stream
    /// retries); they are never picked again.
    dead: Vec<bool>,
}

impl Scheduler {
    /// Scheduler over `consumers` transparent copies.
    pub fn new(policy: Policy, consumers: usize) -> Scheduler {
        assert!(consumers >= 1, "a stream needs at least one consumer copy");
        Scheduler {
            policy,
            rr_next: 0,
            unacked: vec![0; consumers],
            sent: vec![0; consumers],
            acked: vec![0; consumers],
            dead: vec![false; consumers],
        }
    }

    /// Which consumer copy should receive the next buffer, or `None` if
    /// dispatch must wait for an acknowledgment (demand-driven, all copies
    /// at the window cap) — or if every copy is dead.
    pub fn pick(&self) -> Option<usize> {
        let n = self.unacked.len();
        match self.policy {
            Policy::RoundRobin | Policy::RoundRobinAcked => (0..n)
                .map(|k| (self.rr_next + k) % n)
                .find(|&i| !self.dead[i]),
            Policy::DemandDriven { window } => self
                .unacked
                .iter()
                .enumerate()
                .filter(|&(i, &u)| !self.dead[i] && u < window)
                .min_by_key(|(i, &u)| (u, *i))
                .map(|(i, _)| i),
        }
    }

    /// Record that a buffer was sent to copy `i` (as returned by `pick`).
    pub fn on_sent(&mut self, i: usize) {
        self.sent[i] += 1;
        self.unacked[i] += 1;
        if matches!(self.policy, Policy::RoundRobin | Policy::RoundRobinAcked) {
            debug_assert!(
                self.dead.iter().any(|&d| d) || i == self.rr_next,
                "round-robin sends follow pick order"
            );
            self.rr_next = (i + 1) % self.unacked.len();
        }
    }

    /// Record an acknowledgment from copy `i`.
    pub fn on_ack(&mut self, i: usize) {
        assert!(self.unacked[i] > 0, "ack without an outstanding buffer");
        self.unacked[i] -= 1;
        self.acked[i] += 1;
    }

    /// Fail copy `i` over: it is never picked again and its outstanding
    /// buffers are written off (late acks from it must be ignored by the
    /// caller, matched against [`Scheduler::is_dead`]).
    pub fn on_dead(&mut self, i: usize) {
        self.dead[i] = true;
        self.unacked[i] = 0;
    }

    /// Has copy `i` been failed over away from?
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// Number of copies still alive.
    pub fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Unacknowledged buffers currently outstanding at copy `i`.
    pub fn unacked(&self, i: usize) -> u32 {
        self.unacked[i]
    }

    /// Buffers ever sent to copy `i`.
    pub fn sent(&self, i: usize) -> u64 {
        self.sent[i]
    }

    /// Acks ever received from copy `i`.
    pub fn acked(&self, i: usize) -> u64 {
        self.acked[i]
    }

    /// Number of consumer copies.
    pub fn consumers(&self) -> usize {
        self.unacked.len()
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::new(Policy::RoundRobin, 3);
        let mut order = vec![];
        for _ in 0..7 {
            let i = s.pick().unwrap();
            s.on_sent(i);
            order.push(i);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn demand_driven_prefers_least_loaded() {
        let mut s = Scheduler::new(Policy::DemandDriven { window: 4 }, 3);
        // Load copy 0 with two outstanding, copy 1 with one.
        s.on_sent(0);
        s.on_sent(0);
        s.on_sent(1);
        assert_eq!(s.pick(), Some(2), "copy 2 has zero outstanding");
        s.on_sent(2);
        assert_eq!(s.pick(), Some(1), "tie 1,2 at one each -> lowest index");
    }

    #[test]
    fn demand_driven_window_blocks() {
        let mut s = Scheduler::new(Policy::DemandDriven { window: 2 }, 2);
        for _ in 0..4 {
            let i = s.pick().unwrap();
            s.on_sent(i);
        }
        assert_eq!(s.pick(), None, "all copies at the cap");
        s.on_ack(1);
        assert_eq!(s.pick(), Some(1), "ack reopens that copy");
    }

    #[test]
    fn counters() {
        let mut s = Scheduler::new(Policy::demand_driven(), 2);
        s.on_sent(0);
        s.on_sent(0);
        s.on_ack(0);
        assert_eq!(s.sent(0), 2);
        assert_eq!(s.acked(0), 1);
        assert_eq!(s.unacked(0), 1);
        assert_eq!(s.consumers(), 2);
    }

    #[test]
    #[should_panic]
    fn ack_underflow_panics() {
        let mut s = Scheduler::new(Policy::RoundRobin, 1);
        s.on_ack(0);
    }

    #[test]
    fn dead_copies_are_skipped_by_round_robin() {
        let mut s = Scheduler::new(Policy::RoundRobin, 3);
        s.on_dead(1);
        let mut order = vec![];
        for _ in 0..4 {
            let i = s.pick().unwrap();
            s.on_sent(i);
            order.push(i);
        }
        assert_eq!(order, vec![0, 2, 0, 2], "copy 1 never picked");
        assert_eq!(s.alive(), 2);
        assert!(s.is_dead(1));
    }

    #[test]
    fn dead_copies_are_skipped_by_demand_driven() {
        let mut s = Scheduler::new(Policy::DemandDriven { window: 2 }, 2);
        s.on_sent(0);
        s.on_sent(0); // copy 0 at the cap
        s.on_dead(1); // the empty copy dies
        assert_eq!(s.pick(), None, "only live copy is at the window cap");
        s.on_ack(0);
        assert_eq!(s.pick(), Some(0));
    }

    #[test]
    fn on_dead_writes_off_outstanding_buffers() {
        let mut s = Scheduler::new(Policy::demand_driven(), 2);
        s.on_sent(1);
        s.on_sent(1);
        s.on_dead(1);
        assert_eq!(s.unacked(1), 0, "outstanding written off");
        assert_eq!(s.alive(), 1);
    }

    #[test]
    fn all_dead_picks_none() {
        let mut s = Scheduler::new(Policy::RoundRobin, 2);
        s.on_dead(0);
        s.on_dead(1);
        assert_eq!(s.pick(), None);
        assert_eq!(s.alive(), 0);
    }

    proptest! {
        /// Unacked counts always equal sent minus acked, never exceed the
        /// window under DD, and pick never returns a copy at the cap.
        #[test]
        fn dd_invariants(ops in proptest::collection::vec(0u8..2, 1..300)) {
            let window = 3u32;
            let mut s = Scheduler::new(Policy::DemandDriven { window }, 4);
            for op in ops {
                match op {
                    0 => {
                        if let Some(i) = s.pick() {
                            prop_assert!(s.unacked(i) < window);
                            s.on_sent(i);
                        }
                    }
                    _ => {
                        // Ack the most loaded copy, if any.
                        if let Some(i) = (0..4).max_by_key(|&i| s.unacked(i)) {
                            if s.unacked(i) > 0 {
                                s.on_ack(i);
                            }
                        }
                    }
                }
                for i in 0..4 {
                    prop_assert!(s.unacked(i) <= window);
                    prop_assert_eq!(s.sent(i) - s.acked(i), s.unacked(i) as u64);
                }
            }
        }

        /// Round-robin distributes evenly: after k*n sends the counts are
        /// all exactly k.
        #[test]
        fn rr_is_even(n in 1usize..8, k in 1u64..50) {
            let mut s = Scheduler::new(Policy::RoundRobin, n);
            for _ in 0..(k * n as u64) {
                let i = s.pick().unwrap();
                s.on_sent(i);
            }
            for i in 0..n {
                prop_assert_eq!(s.sent(i), k);
            }
        }
    }
}
