//! Guarantee-driven data (re)partitioning — the paper's DR planner.
//!
//! An application promises the user either a full-update rate (frames per
//! second) or a partial-update latency. The dataset's distribution block
//! size is then chosen against the sockets layer's measured `t(s) = a + b·s`
//! curve:
//!
//! * a **rate guarantee** needs aggregate bandwidth `image_bytes × rate`, so
//!   the block must be *at least* the size where the curve's bandwidth
//!   reaches that target (larger blocks keep the guarantee but hurt partial
//!   latency — pick the minimum);
//! * a **latency guarantee** bounds the transfer time of one block, so the
//!   block must be *at most* the size where `t(s)` hits the bound (smaller
//!   blocks keep the guarantee but cost bandwidth — pick the maximum).
//!
//! "SocketVIA (with DR)" plans against SocketVIA's own curve;
//! "SocketVIA" without DR reuses the block size planned for TCP — the
//! paper's central comparison.
//!
//! Blocks are rounded to powers of two so they tile the paper's 2048×2048
//! image exactly (see [`crate::dataset::BlockedImage`]).

use socketvia::PerfCurve;

/// Smallest block size the planner will emit (one 8×8-pixel tile).
pub const MIN_BLOCK: u64 = 256;

/// Round up to a power of two, clamped to `[MIN_BLOCK, limit]`.
fn round_up_pow2(s: u64, limit: u64) -> u64 {
    s.next_power_of_two().clamp(MIN_BLOCK, limit)
}

/// Round down to a power of two, clamped to `[MIN_BLOCK, limit]`.
fn round_down_pow2(s: u64, limit: u64) -> u64 {
    let p = if s.is_power_of_two() {
        s
    } else {
        s.next_power_of_two() / 2
    };
    p.clamp(MIN_BLOCK, limit)
}

/// Minimum distribution block size sustaining `ups` full updates per
/// second of an `image_bytes` image on `curve`, rounded up to a power of
/// two. `None` when the rate exceeds the substrate's peak bandwidth at any
/// block size — the transport "drops out" (Figure 7's TCP above 3.25).
pub fn block_size_for_update_rate(curve: &PerfCurve, image_bytes: u64, ups: f64) -> Option<u64> {
    let required_mbps = image_bytes as f64 * 8.0 * ups / 1e6;
    let s = curve.min_size_for_bandwidth_mbps(required_mbps)?;
    let rounded = round_up_pow2(s, image_bytes);
    // Rounding up can only increase bandwidth (monotone), so the guarantee
    // still holds — unless the clamp at image_bytes cut it short.
    if curve.bandwidth_mbps(rounded) + 1e-9 < required_mbps {
        return None;
    }
    Some(rounded)
}

/// Maximum distribution block size whose one-block transfer stays within
/// `limit_us` on `curve`, rounded down to a power of two. `None` when even
/// the minimum block misses the bound (Figure 8's TCP at 100 µs).
pub fn block_size_for_partial_latency(
    curve: &PerfCurve,
    image_bytes: u64,
    limit_us: f64,
) -> Option<u64> {
    let s = curve.max_size_for_latency_us(limit_us)?;
    let rounded = round_down_pow2(s, image_bytes);
    if curve.transfer_us(rounded) > limit_us {
        return None;
    }
    Some(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::TransportKind;

    const IMG: u64 = 16 * 1024 * 1024;

    #[test]
    fn tcp_drops_out_at_four_updates() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        // 4 ups x 16MB = 512 Mbps > TCP's 510 Mbps peak.
        assert_eq!(block_size_for_update_rate(&tcp, IMG, 4.0), None);
        // 3.25 ups is feasible with a block in the 8-32 KB range.
        let s = block_size_for_update_rate(&tcp, IMG, 3.25).unwrap();
        assert!((8_192..=32_768).contains(&s), "TCP block for 3.25 ups: {s}");
    }

    #[test]
    fn socketvia_sustains_four_updates_with_tiny_blocks() {
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        let s = block_size_for_update_rate(&sv, IMG, 4.0).unwrap();
        assert!(s <= 4_096, "SocketVIA block for 4 ups: {s}");
    }

    #[test]
    fn rate_blocks_grow_with_rate() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let mut last = 0;
        for ups in [2.0, 2.5, 3.0, 3.25] {
            let s = block_size_for_update_rate(&tcp, IMG, ups).unwrap();
            assert!(s >= last, "monotone in rate");
            last = s;
        }
    }

    #[test]
    fn latency_blocks_shrink_with_bound() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let mut last = u64::MAX;
        for limit in [1000.0, 500.0, 200.0] {
            let s = block_size_for_partial_latency(&tcp, IMG, limit).unwrap();
            assert!(s <= last, "monotone in bound");
            assert!(tcp.transfer_us(s) <= limit);
            last = s;
        }
    }

    #[test]
    fn tcp_drops_out_at_100us_latency() {
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        // TCP's intercept is ~47.5us; a 100us bound leaves room for only a
        // ~3KB block — but at 40us TCP is out entirely while SocketVIA
        // still fits a block.
        assert!(block_size_for_partial_latency(&tcp, IMG, 40.0).is_none());
        assert!(block_size_for_partial_latency(&sv, IMG, 40.0).is_some());
    }

    #[test]
    fn planned_blocks_are_powers_of_two() {
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        for ups in [2.0, 3.0, 4.0] {
            assert!(block_size_for_update_rate(&sv, IMG, ups)
                .unwrap()
                .is_power_of_two());
        }
        for lim in [100.0, 400.0, 1000.0] {
            assert!(block_size_for_partial_latency(&sv, IMG, lim)
                .unwrap()
                .is_power_of_two());
        }
    }

    #[test]
    fn dr_blocks_are_much_smaller_than_tcp_blocks() {
        // The heart of the paper: for the same rate guarantee, SocketVIA's
        // plan uses far smaller blocks, so partial updates are far faster.
        let tcp = PerfCurve::from_kind(TransportKind::KTcp);
        let sv = PerfCurve::from_kind(TransportKind::SocketVia);
        let tcp_block = block_size_for_update_rate(&tcp, IMG, 3.0).unwrap();
        let sv_block = block_size_for_update_rate(&sv, IMG, 3.0).unwrap();
        assert!(
            sv_block * 4 <= tcp_block,
            "SocketVIA {sv_block} vs TCP {tcp_block}"
        );
        assert!(
            sv.transfer_us(sv_block) * 3.0 < tcp.transfer_us(tcp_block),
            "partial-update latency gap"
        );
    }
}
