//! Heterogeneous-cluster drivers (paper §5.2.3, Figures 10 and 11).
//!
//! The setup of Figure 6: one node acts as data repository + load balancer,
//! distributing blocks to compute nodes; one (or more) compute nodes run
//! slower. Communication cost is held constant while computation varies,
//! exactly as the paper idealizes.

use crate::driver::RunCapture;
use crate::pipeline::QueryDesc;
use hpsock_datacutter::{
    Action, DataBuffer, FilterCtx, FilterLogic, FilterStats, GroupBuilder, Policy, SpeedModel,
};
use hpsock_net::{Cluster, NodeId, TransportKind};
use hpsock_sim::{Dur, Probe, Sim, SimTime};
use socketvia::Provider;
use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Load-balancer source: streams the query's blocks one at a time, paced
/// at the cluster's aggregate consumption rate (perfect pipelining:
/// one block leaves the balancer per worker-processing slot).
struct LbSource {
    queue: VecDeque<u64>,
    block_bytes: u64,
    emit_interval: Dur,
}

impl FilterLogic for LbSource {
    fn on_uow_start(
        &mut self,
        _fc: &mut FilterCtx<'_>,
        uow: u32,
        desc: Arc<dyn Any + Send + Sync>,
    ) -> Action {
        let q = desc
            .downcast::<QueryDesc>()
            .expect("LB expects a QueryDesc");
        self.queue = q.blocks.iter().copied().collect();
        Action::compute(Dur::ZERO).and_continue(uow)
    }
    fn on_continue(&mut self, _fc: &mut FilterCtx<'_>, uow: u32) -> Action {
        match self.queue.pop_front() {
            Some(b) => Action::emit(
                self.emit_interval,
                0,
                DataBuffer::new(uow, self.block_bytes, b),
            )
            .and_continue(uow),
            None => Action::none().and_end_uow(uow),
        }
    }
}

/// Terminal compute worker: processes each block at `ns_per_byte`.
struct ComputeWorker {
    ns_per_byte: f64,
}

impl FilterLogic for ComputeWorker {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        Action::compute(Dur::nanos(
            (self.ns_per_byte * buf.bytes as f64).round() as u64
        ))
    }
}

/// Configuration of the load-balancing experiments.
#[derive(Debug, Clone, Copy)]
pub struct LbSetup {
    /// Transport carrying the LB → worker stream.
    pub kind: TransportKind,
    /// Distribution block size (16 KB for TCP, 2 KB for SocketVIA — the
    /// perfect-pipelining points of §5.2.3).
    pub block_bytes: u64,
    /// Number of compute workers (the paper balances across the first
    /// pipeline stage's 3 copies).
    pub workers: usize,
    /// Worker computation cost (18 ns/B in the paper).
    pub ns_per_byte: f64,
}

impl LbSetup {
    /// The paper's configuration for a transport, using its
    /// perfect-pipelining block size.
    pub fn paper(kind: TransportKind) -> LbSetup {
        let block_bytes = match kind {
            TransportKind::KTcp | TransportKind::KTcpFastEthernet => 16_384,
            TransportKind::Via | TransportKind::SocketVia => 2_048,
            // Perfect pipelining for RDMA against 18 ns/B compute lands at
            // a few hundred bytes: t(s) = 4.4us + 1.25 ns/B * s = 18 ns/B * s.
            TransportKind::Rdma => 256,
        };
        LbSetup {
            kind,
            block_bytes,
            workers: 3,
            ns_per_byte: crate::pipeline::PAPER_NS_PER_BYTE,
        }
    }
}

fn build_lb(
    sim: &mut Sim,
    setup: &LbSetup,
    policy: Policy,
    speeds: &[SpeedModel],
    blocks: u32,
) -> (
    hpsock_datacutter::Instance,
    hpsock_datacutter::FilterHandle,
    hpsock_datacutter::FilterHandle,
) {
    let cluster = Cluster::build(sim, setup.workers + 1);
    let provider = Provider::new(setup.kind);
    let mut g = GroupBuilder::new();
    let bb = setup.block_bytes;
    // Perfect pipelining as the paper defines it (§5.2.3): the time to send
    // one block equals the time a node takes to process it, so the balancer
    // emits one block per block-processing time. The single balancer NIC is
    // then the pipeline bottleneck, as in the Figure 6 setup.
    let emit_interval = Dur::nanos((setup.ns_per_byte * setup.block_bytes as f64).round() as u64);
    let lb = g.filter(
        "load-balancer",
        vec![NodeId(0)],
        Box::new(move |_| {
            Box::new(LbSource {
                queue: VecDeque::new(),
                block_bytes: bb,
                emit_interval,
            })
        }),
    );
    let npb = setup.ns_per_byte;
    let workers = g.filter(
        "worker",
        (1..=setup.workers).map(NodeId).collect(),
        Box::new(move |_| Box::new(ComputeWorker { ns_per_byte: npb })),
    );
    for (i, &m) in speeds.iter().enumerate() {
        g.set_speed(workers, i, m);
    }
    g.enable_ack_log(lb);
    g.stream(lb, workers, policy, &provider);
    let inst = g.instantiate(sim, &cluster);
    let desc = QueryDesc {
        kind: crate::pipeline::QueryKind::Complete,
        blocks: (0..blocks as u64).collect(),
        block_bytes: setup.block_bytes,
    };
    inst.start_uow_at(sim, SimTime::ZERO, lb, 0, Arc::new(desc));
    (inst, lb, workers)
}

/// Figure 10: round-robin scheduling, one worker turns `factor`× slower at
/// `slow_at`. Returns the load balancer's *reaction time*: the completion
/// round-trip of the first block it (mistakenly) sends to the slow worker
/// after the slowdown — "the amount of time taken by the slow node to
/// process this block" (paper §5.2.3), which scales with both the
/// heterogeneity factor and the distribution block size.
pub fn rr_reaction_time(
    setup: &LbSetup,
    factor: f64,
    slow_at: SimTime,
    blocks: u32,
    seed: u64,
) -> Option<Dur> {
    rr_reaction_time_probed(setup, factor, slow_at, blocks, seed, |_| None).0
}

/// [`rr_reaction_time`] with the probe bus attached after the cluster
/// exists (the factory receives the resource-name table, as in the
/// guarantee runner's `run_guarantee_probed`), returning the run's
/// [`RunCapture`] for trace export and time-breakdown reports. Probes are
/// observational only, so the measurement is identical to the unprobed
/// run (pinned by the determinism tests).
pub fn rr_reaction_time_probed(
    setup: &LbSetup,
    factor: f64,
    slow_at: SimTime,
    blocks: u32,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (Option<Dur>, RunCapture) {
    let mut sim = Sim::new(seed);
    let mut speeds = vec![SpeedModel::Uniform(1.0); setup.workers];
    speeds[0] = SpeedModel::StepAt {
        t: slow_at,
        before: 1.0,
        after: factor,
    };
    let (inst, lb, _workers) = build_lb(&mut sim, setup, Policy::RoundRobinAcked, &speeds, blocks);
    if let Some(p) = make_probe(&sim.resource_names()) {
        sim.attach_probe(p);
    }
    let end = sim.run();
    let cap = RunCapture::of(&sim, end);
    let lb_proc = inst.copy(&sim, lb, 0);
    let reaction = lb_proc
        .done_log
        .iter()
        .filter(|r| r.consumer == 0 && r.sent_at >= slow_at)
        .map(|r| r.acked_at.since(r.sent_at))
        .next();
    (reaction, cap)
}

/// Figure 11: demand-driven scheduling with workers that run `factor`×
/// slower on each block independently with probability `slow_prob`.
/// Returns the total execution time for the `blocks`-block workload.
pub fn dd_execution_time(
    setup: &LbSetup,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
) -> Dur {
    dd_execution_time_probed(setup, slow_prob, factor, blocks, seed, |_| None).0
}

/// [`dd_execution_time`] with the probe bus attached after the cluster
/// exists, returning the run's [`RunCapture`] (see
/// [`rr_reaction_time_probed`]).
pub fn dd_execution_time_probed(
    setup: &LbSetup,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (Dur, RunCapture) {
    run_lb_workload_probed(
        setup,
        Policy::demand_driven(),
        slow_prob,
        factor,
        blocks,
        seed,
        make_probe,
    )
}

/// [`dd_execution_time`] with an explicit demand-driven window depth
/// (ablation: window 1 starves the pipeline, very large windows approach
/// round-robin blindness).
pub fn dd_execution_time_with_window(
    setup: &LbSetup,
    window: u32,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
) -> Dur {
    run_lb_workload(
        setup,
        Policy::DemandDriven { window },
        slow_prob,
        factor,
        blocks,
        seed,
    )
}

/// Same workload under (acked) round-robin — the comparison that shows why
/// demand-driven scheduling matters on heterogeneous clusters.
pub fn rr_execution_time(
    setup: &LbSetup,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
) -> Dur {
    run_lb_workload(
        setup,
        Policy::RoundRobinAcked,
        slow_prob,
        factor,
        blocks,
        seed,
    )
}

/// Execution time of the load-balancing workload with explicit per-worker
/// speed models — e.g. one persistently slow worker, where demand-driven
/// scheduling visibly beats round-robin.
pub fn lb_execution_time(
    setup: &LbSetup,
    policy: Policy,
    speeds: &[SpeedModel],
    blocks: u32,
    seed: u64,
) -> Dur {
    assert_eq!(speeds.len(), setup.workers, "one speed model per worker");
    let mut sim = Sim::new(seed);
    let (_inst, _lb, _workers) = build_lb(&mut sim, setup, policy, speeds, blocks);
    sim.run().since(SimTime::ZERO)
}

fn run_lb_workload(
    setup: &LbSetup,
    policy: Policy,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
) -> Dur {
    run_lb_workload_probed(setup, policy, slow_prob, factor, blocks, seed, |_| None).0
}

fn run_lb_workload_probed(
    setup: &LbSetup,
    policy: Policy,
    slow_prob: f64,
    factor: f64,
    blocks: u32,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (Dur, RunCapture) {
    let mut sim = Sim::new(seed);
    let speeds = vec![
        SpeedModel::RandomSlow {
            prob: slow_prob,
            factor,
        };
        setup.workers
    ];
    let (_inst, _lb, _workers) = build_lb(&mut sim, setup, policy, &speeds, blocks);
    if let Some(p) = make_probe(&sim.resource_names()) {
        sim.attach_probe(p);
    }
    let end = sim.run();
    (end.since(SimTime::ZERO), RunCapture::of(&sim, end))
}

/// Recovery/availability outcome of one fault-injected load-balancing run
/// (the `fig_faults` experiment's unit of measurement).
#[derive(Debug, Clone, Copy)]
pub struct FaultedLbOutcome {
    /// Blocks in the workload.
    pub blocks: u32,
    /// Distinct blocks actually processed by surviving workers — failover
    /// replay duplicates collapse, genuinely lost blocks show up as gaps.
    pub processed: u64,
    /// Stream errors the runtime absorbed (lost or dead-peer sends).
    pub errors: u64,
    /// Lost messages re-sent after backoff.
    pub retries: u64,
    /// Streams that recovered (a post-retry delivery was acknowledged).
    pub recovered: u64,
    /// Worker copies permanently failed over away from.
    pub failovers: u64,
    /// Buffers dropped because no live consumer remained on their port.
    pub failed: u64,
    /// Deliveries discarded as stale (teardown races).
    pub stale: u64,
    /// Virtual wall-clock of the run, µs.
    pub makespan_us: f64,
    /// Event-trace digest, for reproducibility checks.
    pub digest: u64,
}

impl FaultedLbOutcome {
    /// Fraction of the workload that was processed at least once.
    pub fn availability(&self) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        self.processed as f64 / self.blocks as f64
    }
}

/// Worker that also records the distinct block tags it processed, so the
/// caller can measure guarantee retention under faults.
struct TrackingWorker {
    ns_per_byte: f64,
    seen: Arc<Mutex<HashSet<u64>>>,
}

impl FilterLogic for TrackingWorker {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        self.seen.lock().expect("tag set lock").insert(buf.tag);
        Action::compute(Dur::nanos(
            (self.ns_per_byte * buf.bytes as f64).round() as u64
        ))
    }
}

/// Run the Figure 6 load-balancing workload under whatever fault plan is
/// currently installed (`HPSOCK_FAULTS` or `hpsock_net::fault::with_plan`),
/// demand-driven with homogeneous workers, and report what survived. With
/// no plan installed this is an ordinary run: `processed == blocks` and
/// every fault counter is zero.
pub fn faulted_lb_run(setup: &LbSetup, blocks: u32, seed: u64) -> FaultedLbOutcome {
    let mut sim = Sim::new(seed);
    let cluster = Cluster::build(&mut sim, setup.workers + 1);
    let provider = Provider::new(setup.kind);
    let mut g = GroupBuilder::new();
    let bb = setup.block_bytes;
    let emit_interval = Dur::nanos((setup.ns_per_byte * setup.block_bytes as f64).round() as u64);
    let lb = g.filter(
        "load-balancer",
        vec![NodeId(0)],
        Box::new(move |_| {
            Box::new(LbSource {
                queue: VecDeque::new(),
                block_bytes: bb,
                emit_interval,
            })
        }),
    );
    let seen = Arc::new(Mutex::new(HashSet::new()));
    let npb = setup.ns_per_byte;
    let worker_seen = Arc::clone(&seen);
    let workers = g.filter(
        "worker",
        (1..=setup.workers).map(NodeId).collect(),
        Box::new(move |_| {
            Box::new(TrackingWorker {
                ns_per_byte: npb,
                seen: Arc::clone(&worker_seen),
            })
        }),
    );
    g.stream(lb, workers, Policy::demand_driven(), &provider);
    let inst = g.instantiate(&mut sim, &cluster);
    let desc = QueryDesc {
        kind: crate::pipeline::QueryKind::Complete,
        blocks: (0..blocks as u64).collect(),
        block_bytes: setup.block_bytes,
    };
    inst.start_uow_at(&mut sim, SimTime::ZERO, lb, 0, Arc::new(desc));
    let end = sim.run();
    let mut out = FaultedLbOutcome {
        blocks,
        processed: seen.lock().expect("tag set lock").len() as u64,
        errors: 0,
        retries: 0,
        recovered: 0,
        failovers: 0,
        failed: 0,
        stale: 0,
        makespan_us: end.since(SimTime::ZERO).as_micros_f64(),
        digest: sim.trace_digest(),
    };
    let mut add = |s: &FilterStats| {
        out.errors += s.stream_errors;
        out.retries += s.retries;
        out.recovered += s.streams_recovered;
        out.failovers += s.consumers_failed;
        out.failed += s.buffers_failed;
        out.stale += s.stale_deliveries;
    };
    add(&inst.copy(&sim, lb, 0).stats);
    for i in 0..setup.workers {
        add(&inst.copy(&sim, workers, i).stats);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaction_time_grows_with_block_size() {
        let tcp = LbSetup::paper(TransportKind::KTcp);
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let slow_at = SimTime::from_nanos(20_000_000); // 20ms in
        let t_tcp = rr_reaction_time(&tcp, 4.0, slow_at, 400, 7).expect("tcp reacts");
        let t_sv = rr_reaction_time(&sv, 4.0, slow_at, 3200, 7).expect("sv reacts");
        assert!(
            t_sv.as_micros_f64() * 3.0 < t_tcp.as_micros_f64(),
            "SocketVIA reacts much faster: {t_sv} vs {t_tcp}"
        );
    }

    #[test]
    fn reaction_time_grows_with_factor() {
        let tcp = LbSetup::paper(TransportKind::KTcp);
        let slow_at = SimTime::from_nanos(20_000_000);
        let t2 = rr_reaction_time(&tcp, 2.0, slow_at, 400, 7).expect("reacts at 2x");
        let t8 = rr_reaction_time(&tcp, 8.0, slow_at, 400, 7).expect("reacts at 8x");
        assert!(t8 > t2, "more heterogeneity, slower reaction: {t2} vs {t8}");
    }

    #[test]
    fn dd_execution_grows_with_slow_probability() {
        // With heterogeneity factor n, mean per-block service is
        // (1 + (n-1)p) x base; the three workers stop absorbing the
        // slowdown once that exceeds 3x the balancer's emission rate, so
        // growth with p is visible at n = 8 (as in Figure 11's upper
        // curves) while n = 2 stays flat.
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let t10 = dd_execution_time(&sv, 0.1, 8.0, 800, 11);
        let t90 = dd_execution_time(&sv, 0.9, 8.0, 800, 11);
        assert!(
            t90.as_micros_f64() > 1.5 * t10.as_micros_f64(),
            "p=0.9 {t90} should far exceed p=0.1 {t10}"
        );
        let f2_10 = dd_execution_time(&sv, 0.1, 2.0, 800, 11);
        let f2_90 = dd_execution_time(&sv, 0.9, 2.0, 800, 11);
        assert!(
            f2_90.as_micros_f64() < 1.3 * f2_10.as_micros_f64(),
            "factor 2 stays near-flat: {f2_10} vs {f2_90}"
        );
    }

    #[test]
    fn dd_keeps_tcp_close_to_socketvia() {
        // Figure 11's observation: with demand-driven scheduling and
        // pipelining, TCP's execution time approaches SocketVIA's.
        let bytes_total: u64 = 4 * 1024 * 1024;
        let tcp = LbSetup::paper(TransportKind::KTcp);
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let t_tcp = dd_execution_time(&tcp, 0.3, 4.0, (bytes_total / tcp.block_bytes) as u32, 3);
        let t_sv = dd_execution_time(&sv, 0.3, 4.0, (bytes_total / sv.block_bytes) as u32, 3);
        let ratio = t_tcp.as_micros_f64() / t_sv.as_micros_f64();
        assert!(
            (0.7..1.6).contains(&ratio),
            "TCP/SocketVIA execution ratio {ratio}: {t_tcp} vs {t_sv}"
        );
    }

    #[test]
    fn faulted_run_without_a_plan_is_clean() {
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let out = faulted_lb_run(&sv, 200, 9);
        assert_eq!(out.processed, 200);
        assert_eq!(out.availability(), 1.0);
        assert_eq!(
            (out.errors, out.retries, out.failovers, out.failed),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn faulted_run_recovers_under_loss_and_crash() {
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let run = || {
            hpsock_net::fault::with_spec("drop=0.01,crash=2@2ms,detect=100us,backoff=100us", || {
                faulted_lb_run(&sv, 400, 9)
            })
        };
        let out = run();
        assert!(out.errors > 0, "faults fired");
        assert!(out.retries > 0, "losses were retried");
        assert_eq!(out.failovers, 1, "the crashed worker was failed over");
        assert_eq!(
            out.processed, 400,
            "replay + retry keep every block covered"
        );
        let again = run();
        assert_eq!(out.digest, again.digest, "faulted run is reproducible");
    }

    #[test]
    fn dd_beats_rr_under_random_slowdowns() {
        let sv = LbSetup::paper(TransportKind::SocketVia);
        let dd = dd_execution_time(&sv, 0.3, 8.0, 800, 5);
        let rr = rr_execution_time(&sv, 0.3, 8.0, 800, 5);
        assert!(
            dd.as_micros_f64() < rr.as_micros_f64(),
            "DD {dd} should not lose to RR {rr}"
        );
    }
}
