//! End-to-end application tests: the full Figure 5 pipeline driven by
//! open- and closed-loop query streams.

#![cfg(test)]

use crate::dataset::BlockedImage;
use crate::driver::{Plan, QueryDriver};
use crate::pipeline::{ComputeModel, PipelineCfg, QueryKind, VizPipeline};
use crate::queries::{complete_update, partial_update, zoom_query};
use hpsock_net::{Cluster, TransportKind};
use hpsock_sim::{Dur, Sim, SimTime};
use socketvia::Provider;

fn run_closed_loop(
    kind: TransportKind,
    compute: ComputeModel,
    block_bytes: u64,
    queries: Vec<crate::pipeline::QueryDesc>,
) -> (Sim, hpsock_sim::ProcessId, VizPipeline) {
    let mut sim = Sim::new(99);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(kind), compute);
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::ClosedLoop(queries));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().unwrap() = pipe.repo_pids();
    let _ = block_bytes;
    sim.run();
    (sim, driver_pid, pipe)
}

#[test]
fn closed_loop_zoom_and_complete_round_trip() {
    let img = BlockedImage::paper_image(262_144); // 64 partitions
    let queries = vec![
        zoom_query(&img),
        complete_update(&img),
        partial_update(&img, 1),
    ];
    let (sim, driver, pipe) = run_closed_loop(
        TransportKind::SocketVia,
        ComputeModel::None,
        262_144,
        queries,
    );
    let d: &QueryDriver = sim.process(driver).unwrap();
    assert_eq!(d.results.len(), 3, "all queries completed");
    assert_eq!(d.outstanding(), 0);
    // The complete update moved the full image through the pipeline.
    let viz = pipe.inst.copy(&sim, pipe.viz, 0);
    assert_eq!(
        viz.stats.bytes_in,
        img.stored_bytes() + 4 * 262_144 + 262_144
    );
    // Complete >> zoom >> partial in response time.
    let t = |k| d.mean_latency_us(k).unwrap();
    assert!(t(QueryKind::Complete) > t(QueryKind::Zoom));
    assert!(t(QueryKind::Zoom) > t(QueryKind::Partial));
}

#[test]
fn socketvia_complete_update_beats_tcp_at_small_blocks() {
    let img = BlockedImage::paper_image(16_384);
    let run = |kind| {
        let (sim, driver, _) = run_closed_loop(
            kind,
            ComputeModel::None,
            16_384,
            vec![complete_update(&img)],
        );
        let d: &QueryDriver = sim.process(driver).unwrap();
        d.mean_latency_us(QueryKind::Complete).unwrap()
    };
    let sv = run(TransportKind::SocketVia);
    let tcp = run(TransportKind::KTcp);
    assert!(
        sv * 1.5 < tcp,
        "16KB blocks, 16MB image: SocketVIA {sv:.0}us vs TCP {tcp:.0}us"
    );
}

#[test]
fn open_loop_sustains_feasible_rate() {
    // 8 complete updates at 2 ups over SocketVIA with 64KB blocks: easily
    // sustainable; every update completes and the achieved rate is ~2.
    let img = BlockedImage::paper_image(65_536);
    let mut sim = Sim::new(5);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(TransportKind::SocketVia), ComputeModel::None);
    let n = 8u64;
    let items: Vec<(SimTime, crate::pipeline::QueryDesc)> = (0..n)
        .map(|i| {
            (
                SimTime::ZERO + Dur::millis(500).mul(i),
                complete_update(&img),
            )
        })
        .collect();
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::OpenLoop(items));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().unwrap() = pipe.repo_pids();
    sim.run();
    let d: &QueryDriver = sim.process(driver_pid).unwrap();
    assert_eq!(d.results.len(), n as usize);
    let rate = d.achieved_rate(QueryKind::Complete).unwrap();
    assert!((1.7..2.4).contains(&rate), "achieved {rate} ups");
    // Each update's latency is far below the period: the system keeps up.
    let mean = d.mean_latency_us(QueryKind::Complete).unwrap();
    assert!(mean < 500_000.0, "mean complete latency {mean}us");
}

#[test]
fn partial_probe_latency_under_load_favors_dr() {
    // The Figure 7 mechanism in miniature: complete updates stream at 2 ups
    // while partial probes measure latency. TCP plans a large block; the
    // SocketVIA-with-DR plan uses its own small block and wins big.
    let tcp_curve = socketvia::PerfCurve::from_kind(TransportKind::KTcp);
    let sv_curve = socketvia::PerfCurve::from_kind(TransportKind::SocketVia);
    let img_bytes = 16u64 * 1024 * 1024;
    let tcp_block =
        crate::guarantee::block_size_for_update_rate(&tcp_curve, img_bytes, 2.0).unwrap();
    let sv_block = crate::guarantee::block_size_for_update_rate(&sv_curve, img_bytes, 2.0).unwrap();

    let probe = |kind: TransportKind, block: u64| {
        let img = BlockedImage::paper_image(block);
        let mut sim = Sim::new(17);
        let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
        let cfg = PipelineCfg::paper(Provider::new(kind), ComputeModel::None);
        let mut items = vec![];
        for i in 0..6u64 {
            items.push((
                SimTime::ZERO + Dur::millis(500).mul(i),
                complete_update(&img),
            ));
        }
        for i in 1..5u64 {
            items.push((
                SimTime::ZERO + Dur::millis(500).mul(i) + Dur::millis(250),
                partial_update(&img, 1),
            ));
        }
        let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::OpenLoop(items));
        let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
        *targets.lock().unwrap() = pipe.repo_pids();
        sim.run();
        let d: &QueryDriver = sim.process(driver_pid).unwrap();
        d.mean_latency_us(QueryKind::Partial).unwrap()
    };

    let tcp_lat = probe(TransportKind::KTcp, tcp_block);
    let sv_same_block = probe(TransportKind::SocketVia, tcp_block);
    let sv_dr = probe(TransportKind::SocketVia, sv_block);
    assert!(
        sv_same_block < tcp_lat,
        "direct improvement: {sv_same_block} < {tcp_lat}"
    );
    assert!(
        sv_dr < sv_same_block,
        "repartitioning improves further: {sv_dr} < {sv_same_block}"
    );
    assert!(
        sv_dr * 3.0 < tcp_lat,
        "combined improvement is large: {sv_dr} vs {tcp_lat}"
    );
}
