//! Query drivers: processes that submit queries to the pipeline and record
//! per-query response times.
//!
//! Two regimes cover all of the paper's application experiments:
//!
//! * **open loop** — queries are submitted at fixed instants regardless of
//!   completion (the "guarantee a frame rate" experiments, Figures 7/8):
//!   complete updates stream at the target rate while probe queries measure
//!   latency under that load;
//! * **closed loop** — the next query is submitted when the previous one
//!   completes (the query-mix experiment, Figure 9): average response time
//!   of an interactive client.

use crate::pipeline::{QueryDesc, QueryKind, UowDone};
use hpsock_datacutter::UowStartMsg;
use hpsock_sim::stats::Histogram;
use hpsock_sim::{Ctx, Dur, Message, ProbeEvent, Process, ProcessId, ResourceId, Sim, SimTime};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What a probed run exposes about the simulation it ran, for trace
/// export and time-breakdown reports: the run's extent plus the identity
/// (name, server count) of every resource, indexed by `ResourceId` like
/// the probe bus's events.
///
/// Every `*_probed` driver (the guarantee runner, the query-mix driver,
/// the [`crate::hetero`] load balancers) returns one of these alongside
/// its measurement, so the experiments layer can attribute server-time
/// without re-deriving the topology.
#[derive(Debug, Clone)]
pub struct RunCapture {
    /// Final virtual time.
    pub end: SimTime,
    /// Resource names indexed by `ResourceId` (the Chrome-trace track
    /// table).
    pub resource_names: Vec<String>,
    /// Server count per resource, same indexing.
    pub servers: Vec<usize>,
    /// The run's event-trace digest — the determinism tests' witness that
    /// two runs (e.g. sequential vs `HPSOCK_SHARDS=n`) dispatched the
    /// same events in the same order.
    pub digest: u64,
}

impl RunCapture {
    /// Snapshot a finished simulation; `end` is the instant `Sim::run`
    /// returned.
    pub fn of(sim: &Sim, end: SimTime) -> RunCapture {
        let resource_names = sim.resource_names();
        let servers = (0..resource_names.len())
            .map(|i| sim.resource(ResourceId(i)).servers())
            .collect();
        RunCapture {
            end,
            resource_names,
            servers,
            digest: sim.trace_digest(),
        }
    }
}

/// One completed query.
#[derive(Debug, Clone, Copy)]
pub struct QueryResult {
    /// Unit-of-work id.
    pub uow: u32,
    /// Query class.
    pub kind: QueryKind,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant (visualization filter saw the full result).
    pub completed: SimTime,
}

impl QueryResult {
    /// Response time.
    pub fn latency(&self) -> Dur {
        self.completed.since(self.submitted)
    }
}

/// Driving regime.
pub enum Plan {
    /// Submit each query at its absolute instant.
    OpenLoop(Vec<(SimTime, QueryDesc)>),
    /// Submit the next query when the previous completes.
    ClosedLoop(Vec<QueryDesc>),
}

/// Shared slot through which the pipeline's repository pids reach the
/// driver (the driver process is created before the pipeline).
pub type TargetSlot = Arc<Mutex<Vec<ProcessId>>>;

struct SubmitTick(usize);

/// The driver process.
pub struct QueryDriver {
    plan: Option<Plan>,
    targets: TargetSlot,
    queries: Vec<QueryDesc>,
    pending: HashMap<u32, (QueryKind, SimTime)>,
    /// Completed queries in completion order.
    pub results: Vec<QueryResult>,
    /// Log-binned distribution of all response times (µs), 1 µs – 100 s.
    pub latency_hist: Histogram,
    next_uow: u32,
    closed_next: usize,
    closed: bool,
}

impl QueryDriver {
    /// Create the driver inside `sim`; fill the returned [`TargetSlot`]
    /// with the repository pids after building the pipeline.
    pub fn install(sim: &mut Sim, plan: Plan) -> (ProcessId, TargetSlot) {
        let targets: TargetSlot = Arc::new(Mutex::new(Vec::new()));
        let driver = QueryDriver {
            plan: Some(plan),
            targets: Arc::clone(&targets),
            queries: Vec::new(),
            pending: HashMap::new(),
            results: Vec::new(),
            latency_hist: Histogram::log_spaced(1.0, 1e8, 160),
            next_uow: 0,
            closed_next: 0,
            closed: false,
        };
        let pid = sim.add_process(Box::new(driver));
        (pid, targets)
    }

    fn submit(&mut self, ctx: &mut Ctx<'_>, q: QueryDesc) {
        let uow = self.next_uow;
        self.next_uow += 1;
        self.pending.insert(uow, (q.kind, ctx.now()));
        let kind = q.kind;
        ctx.probe_emit(|t| ProbeEvent::SpanBegin {
            track: "viz.queries".to_string(),
            label: format!("{} #{uow}", kind.label()),
            time: t,
            id: u64::from(uow),
        });
        let desc: Arc<dyn std::any::Any + Send + Sync> = Arc::new(q);
        let targets = self.targets.lock().expect("targets lock").clone();
        assert!(!targets.is_empty(), "driver targets were never installed");
        for pid in targets {
            ctx.send(
                pid,
                Message::new(UowStartMsg {
                    uow,
                    desc: Arc::clone(&desc),
                }),
            );
        }
    }

    /// Mean latency of completed queries of `kind`, in microseconds.
    pub fn mean_latency_us(&self, kind: QueryKind) -> Option<f64> {
        let xs: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.latency().as_micros_f64())
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }

    /// Mean latency across all completed queries, in microseconds.
    pub fn mean_latency_all_us(&self) -> Option<f64> {
        if self.results.is_empty() {
            return None;
        }
        Some(
            self.results
                .iter()
                .map(|r| r.latency().as_micros_f64())
                .sum::<f64>()
                / self.results.len() as f64,
        )
    }

    /// Achieved completions per second for `kind` over the span from the
    /// first submission to the last completion.
    pub fn achieved_rate(&self, kind: QueryKind) -> Option<f64> {
        let rs: Vec<&QueryResult> = self.results.iter().filter(|r| r.kind == kind).collect();
        let first = rs.iter().map(|r| r.submitted).min()?;
        let last = rs.iter().map(|r| r.completed).max()?;
        let span = last.since(first).as_secs_f64();
        if span <= 0.0 {
            None
        } else {
            Some(rs.len() as f64 / span)
        }
    }

    /// Number of queries submitted but not completed when the run ended.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Approximate response-time quantile in microseconds (e.g. `0.95`),
    /// across all completed queries.
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        if self.results.is_empty() {
            None
        } else {
            Some(self.latency_hist.quantile(q))
        }
    }
}

impl Process for QueryDriver {
    fn name(&self) -> String {
        "query-driver".into()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        match self.plan.take().expect("plan set at construction") {
            Plan::OpenLoop(items) => {
                for (i, (at, q)) in items.into_iter().enumerate() {
                    self.queries.push(q);
                    ctx.send_self_in(at.since(SimTime::ZERO), Message::new(SubmitTick(i)));
                }
            }
            Plan::ClosedLoop(items) => {
                self.queries = items;
                self.closed = true;
                if !self.queries.is_empty() {
                    let q = self.queries[0].clone();
                    self.closed_next = 1;
                    self.submit(ctx, q);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let msg = match msg.downcast::<SubmitTick>() {
            Ok(tick) => {
                let q = self.queries[tick.0].clone();
                self.submit(ctx, q);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<UowDone>() {
            Ok(done) => {
                let (kind, submitted) = self
                    .pending
                    .remove(&done.uow)
                    .expect("completion for a submitted query");
                let result = QueryResult {
                    uow: done.uow,
                    kind,
                    submitted,
                    completed: done.at,
                };
                self.latency_hist.add(result.latency().as_micros_f64());
                self.results.push(result);
                ctx.probe_emit(|_| ProbeEvent::SpanEnd {
                    track: "viz.queries".to_string(),
                    time: done.at,
                    id: u64::from(done.uow),
                });
                if self.closed && self.closed_next < self.queries.len() {
                    let q = self.queries[self.closed_next].clone();
                    self.closed_next += 1;
                    self.submit(ctx, q);
                }
            }
            Err(_) => panic!("driver received an unknown message"),
        }
    }
}
