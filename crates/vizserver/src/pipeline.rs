//! The visualization-server filter group (paper Figure 5): a 4-stage
//! pipeline — data repository → processing filter 1 → processing filter 2 →
//! visualization server — with three transparent copies of each of the
//! first three stages converging on one visualization node.
//!
//! Stage semantics follow the digitized-microscopy case study: repositories
//! emit the declustered blocks a query touches; the processing stages stand
//! for Clipping and Subsampling; the visualization filter composes the
//! final image. Computation is either free or linear at the measured
//! 18 ns/byte of the Virtual Microscope's viewing operation.

use crate::dataset::declustered_share;
use hpsock_datacutter::{
    Action, DataBuffer, FilterCtx, FilterHandle, FilterLogic, GroupBuilder, Instance, Policy,
};
use hpsock_net::{Cluster, NodeId};
use hpsock_sim::{Dur, Message, ProcessId, Sim, SimTime};
use socketvia::Provider;
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// The Virtual Microscope's measured viewing cost (paper §5.2.2).
pub const PAPER_NS_PER_BYTE: f64 = 18.0;

/// Per-stage computation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeModel {
    /// No computation (paper's "(a)" panels).
    None,
    /// Cost linear in buffer size (paper's "(b)" panels; 18 ns/B measured).
    LinearNsPerByte(f64),
}

impl ComputeModel {
    /// The paper's linear model.
    pub fn paper_linear() -> ComputeModel {
        ComputeModel::LinearNsPerByte(PAPER_NS_PER_BYTE)
    }

    /// CPU demand for `bytes` of data.
    pub fn cost(&self, bytes: u64) -> Dur {
        match *self {
            ComputeModel::None => Dur::ZERO,
            ComputeModel::LinearNsPerByte(ns) => Dur::nanos((ns * bytes as f64).round() as u64),
        }
    }

    /// Label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            ComputeModel::None => "No Computation",
            ComputeModel::LinearNsPerByte(_) => "Linear Computation",
        }
    }
}

/// The kinds of client queries the experiments emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A completely new image: all blocks (bandwidth sensitive).
    Complete,
    /// The viewing window moved slightly: the excess blocks only
    /// (latency sensitive).
    Partial,
    /// Magnification around a point: 4 blocks (paper §5.2.2, third set).
    Zoom,
}

impl QueryKind {
    /// Label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Complete => "complete",
            QueryKind::Partial => "partial",
            QueryKind::Zoom => "zoom",
        }
    }
}

/// A query submitted to the pipeline: which blocks to fetch and process.
#[derive(Debug, Clone)]
pub struct QueryDesc {
    /// Query class (for reporting).
    pub kind: QueryKind,
    /// Block ids the query touches.
    pub blocks: Vec<u64>,
    /// Bytes per block.
    pub block_bytes: u64,
}

impl QueryDesc {
    /// Total bytes this query moves through the pipeline.
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * self.block_bytes
    }
}

/// Data-repository filter: emits this copy's declustered share of the
/// query's blocks, one per continuation step (paced by `read_cost`).
pub struct RepositoryLogic {
    read_cost: Dur,
    pending: HashMap<u32, VecDeque<u64>>,
    block_bytes: HashMap<u32, u64>,
}

impl RepositoryLogic {
    /// `read_cost` is charged per block (index lookup + buffer-cache copy).
    pub fn new(read_cost: Dur) -> RepositoryLogic {
        RepositoryLogic {
            read_cost,
            pending: HashMap::new(),
            block_bytes: HashMap::new(),
        }
    }
}

impl FilterLogic for RepositoryLogic {
    fn on_uow_start(
        &mut self,
        fc: &mut FilterCtx<'_>,
        uow: u32,
        desc: Arc<dyn Any + Send + Sync>,
    ) -> Action {
        let q = desc
            .downcast::<QueryDesc>()
            .expect("repository expects a QueryDesc");
        let share = declustered_share(&q.blocks, fc.copies, fc.copy);
        self.pending.insert(uow, share.into());
        self.block_bytes.insert(uow, q.block_bytes);
        Action::compute(Dur::ZERO).and_continue(uow)
    }

    fn on_continue(&mut self, _fc: &mut FilterCtx<'_>, uow: u32) -> Action {
        let queue = self.pending.get_mut(&uow).expect("uow started");
        match queue.pop_front() {
            Some(block) => {
                let bytes = self.block_bytes[&uow];
                Action::emit(self.read_cost, 0, DataBuffer::new(uow, bytes, block))
                    .and_continue(uow)
            }
            None => {
                self.pending.remove(&uow);
                self.block_bytes.remove(&uow);
                Action::none().and_end_uow(uow)
            }
        }
    }
}

/// A processing stage (clip / subsample): computes and forwards.
pub struct StageLogic {
    compute: ComputeModel,
}

impl StageLogic {
    /// Stage with the given computation model.
    pub fn new(compute: ComputeModel) -> StageLogic {
        StageLogic { compute }
    }
}

impl FilterLogic for StageLogic {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        let cost = self.compute.cost(buf.bytes);
        Action::emit(cost, 0, buf)
    }
}

/// Sent to the driver when the visualization filter finishes a query.
pub struct UowDone {
    /// The finished unit of work.
    pub uow: u32,
    /// Completion instant.
    pub at: SimTime,
}

/// The visualization filter: composes the image (optional compute) and
/// notifies the driver when a query completes.
pub struct VizLogic {
    compute: ComputeModel,
    driver: ProcessId,
    /// Bytes composed per uow (sanity checking).
    pub bytes_per_uow: HashMap<u32, u64>,
}

impl VizLogic {
    /// Visualization stage reporting completions to `driver`.
    pub fn new(compute: ComputeModel, driver: ProcessId) -> VizLogic {
        VizLogic {
            compute,
            driver,
            bytes_per_uow: HashMap::new(),
        }
    }
}

impl FilterLogic for VizLogic {
    fn on_buffer(&mut self, _fc: &mut FilterCtx<'_>, _port: usize, buf: DataBuffer) -> Action {
        *self.bytes_per_uow.entry(buf.uow).or_insert(0) += buf.bytes;
        Action::compute(self.compute.cost(buf.bytes))
    }

    fn on_uow_end(&mut self, fc: &mut FilterCtx<'_>, uow: u32) -> Action {
        let at = fc.now;
        fc.notify(self.driver, Message::new(UowDone { uow, at }));
        Action::none()
    }
}

/// Configuration of the Figure 5 pipeline.
#[derive(Clone)]
pub struct PipelineCfg {
    /// Sockets layer carrying every stream.
    pub provider: Provider,
    /// Buffer scheduling between transparent copies.
    pub policy: Policy,
    /// Computation model applied at both processing stages and the
    /// visualization filter.
    pub compute: ComputeModel,
    /// Transparent copies of the repository and processing stages
    /// (the paper uses 3).
    pub copies: usize,
    /// Per-block repository read cost.
    pub read_cost: Dur,
}

impl PipelineCfg {
    /// The paper's configuration over the given sockets layer.
    pub fn paper(provider: Provider, compute: ComputeModel) -> PipelineCfg {
        PipelineCfg {
            provider,
            policy: Policy::demand_driven(),
            compute,
            copies: 3,
            read_cost: Dur::nanos(500),
        }
    }
}

/// A built pipeline: the instantiated group plus stage handles.
pub struct VizPipeline {
    /// The instantiated filter group.
    pub inst: Instance,
    /// Repository stage handle.
    pub repo: FilterHandle,
    /// First processing stage.
    pub stage1: FilterHandle,
    /// Second processing stage.
    pub stage2: FilterHandle,
    /// Visualization stage (single copy).
    pub viz: FilterHandle,
}

impl VizPipeline {
    /// Nodes a pipeline with `copies` copies per stage needs.
    pub fn nodes_needed(copies: usize) -> usize {
        3 * copies + 1
    }

    /// Build the pipeline on `cluster` nodes `0 .. 3*copies`, with the
    /// visualization filter on node `3*copies`. Completions are reported
    /// to `driver`.
    pub fn build(
        sim: &mut Sim,
        cluster: &Cluster,
        cfg: &PipelineCfg,
        driver: ProcessId,
    ) -> VizPipeline {
        let c = cfg.copies;
        assert!(
            cluster.len() >= Self::nodes_needed(c),
            "cluster too small: need {}",
            Self::nodes_needed(c)
        );
        let nodes = |base: usize| (0..c).map(|i| NodeId(base * c + i)).collect::<Vec<_>>();
        let mut g = GroupBuilder::new();
        let read_cost = cfg.read_cost;
        let repo = g.filter(
            "repository",
            nodes(0),
            Box::new(move |_| Box::new(RepositoryLogic::new(read_cost))),
        );
        let compute = cfg.compute;
        let stage1 = g.filter(
            "clip",
            nodes(1),
            Box::new(move |_| Box::new(StageLogic::new(compute))),
        );
        let stage2 = g.filter(
            "subsample",
            nodes(2),
            Box::new(move |_| Box::new(StageLogic::new(compute))),
        );
        let viz = g.filter(
            "viz",
            vec![NodeId(3 * c)],
            Box::new(move |_| Box::new(VizLogic::new(compute, driver))),
        );
        g.stream(repo, stage1, cfg.policy, &cfg.provider);
        g.stream(stage1, stage2, cfg.policy, &cfg.provider);
        g.stream(stage2, viz, cfg.policy, &cfg.provider);
        let inst = g.instantiate(sim, cluster);
        VizPipeline {
            inst,
            repo,
            stage1,
            stage2,
            viz,
        }
    }

    /// Process ids of the repository copies (query submission targets).
    pub fn repo_pids(&self) -> Vec<ProcessId> {
        self.inst.pids(self.repo).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_model_costs() {
        assert_eq!(ComputeModel::None.cost(1_000_000), Dur::ZERO);
        assert_eq!(ComputeModel::paper_linear().cost(1_000), Dur::nanos(18_000));
        assert_eq!(ComputeModel::None.label(), "No Computation");
    }

    #[test]
    fn query_desc_bytes() {
        let q = QueryDesc {
            kind: QueryKind::Zoom,
            blocks: vec![0, 1, 16, 17],
            block_bytes: 65_536,
        };
        assert_eq!(q.bytes(), 4 * 65_536);
        assert_eq!(q.kind.label(), "zoom");
    }

    #[test]
    fn nodes_needed_matches_paper() {
        assert_eq!(VizPipeline::nodes_needed(3), 10);
    }
}
