//! Block-partitioned image datasets and query footprints.
//!
//! Images are stored as a grid of fixed-size blocks (data chunks) for
//! indexing reasons; a query must fetch every block it touches *in full*
//! (paper §2, Figure 1). The experiments care about which blocks a query
//! touches and how many bytes that implies — not pixel values.

/// A 2-D image partitioned into a grid of equal blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedImage {
    /// Image width in pixels.
    pub width_px: u32,
    /// Image height in pixels.
    pub height_px: u32,
    /// Bytes per pixel.
    pub bytes_per_pixel: u32,
    /// Block width in pixels.
    pub block_w: u32,
    /// Block height in pixels.
    pub block_h: u32,
}

/// An axis-aligned pixel rectangle (half-open: `[x0, x1) × [y0, y1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x0: u32,
    /// Top edge.
    pub y0: u32,
    /// Right edge (exclusive).
    pub x1: u32,
    /// Bottom edge (exclusive).
    pub y1: u32,
}

impl Rect {
    /// Construct, asserting non-emptiness.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Rect {
        assert!(x1 > x0 && y1 > y0, "rect must be non-empty");
        Rect { x0, y0, x1, y1 }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        (self.x1 - self.x0) as u64 * (self.y1 - self.y0) as u64
    }
}

impl BlockedImage {
    /// The paper's working set: a 16 MB image (2048×2048 px at 4 B/px)
    /// partitioned into square-ish blocks of approximately `block_bytes`.
    pub fn paper_image(block_bytes: u64) -> BlockedImage {
        BlockedImage::with_block_bytes(2048, 2048, 4, block_bytes)
    }

    /// An image whose blocks are as close to `block_bytes` as a grid
    /// allows: block width is the power of two making a full-width strip
    /// subdivision match the byte budget.
    pub fn with_block_bytes(
        width_px: u32,
        height_px: u32,
        bytes_per_pixel: u32,
        block_bytes: u64,
    ) -> BlockedImage {
        assert!(
            block_bytes >= bytes_per_pixel as u64,
            "block below one pixel"
        );
        let px_per_block = (block_bytes / bytes_per_pixel as u64).max(1);
        // Square-ish, preferring an exact split: pick the power-of-two width
        // nearest sqrt(px); when px is a power of two this tiles exactly.
        let side = (px_per_block as f64).sqrt();
        let block_w = (side.ceil() as u64)
            .next_power_of_two()
            .clamp(1, width_px as u64) as u32;
        let block_h = (px_per_block / block_w as u64).clamp(1, height_px as u64) as u32;
        BlockedImage {
            width_px,
            height_px,
            bytes_per_pixel,
            block_w,
            block_h,
        }
    }

    /// Blocks per row.
    pub fn cols(&self) -> u32 {
        self.width_px.div_ceil(self.block_w)
    }

    /// Blocks per column.
    pub fn rows(&self) -> u32 {
        self.height_px.div_ceil(self.block_h)
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> u64 {
        self.cols() as u64 * self.rows() as u64
    }

    /// Bytes in one (full) block.
    pub fn block_bytes(&self) -> u64 {
        self.block_w as u64 * self.block_h as u64 * self.bytes_per_pixel as u64
    }

    /// Total stored bytes (blocks may overhang the image edge; the whole
    /// block is stored, as in the paper's indexing scheme).
    pub fn stored_bytes(&self) -> u64 {
        self.block_count() * self.block_bytes()
    }

    /// Image payload bytes (without block-padding overhang).
    pub fn image_bytes(&self) -> u64 {
        self.width_px as u64 * self.height_px as u64 * self.bytes_per_pixel as u64
    }

    /// Block ids (row-major) intersecting `rect`. Every touched block must
    /// be fetched in full.
    pub fn blocks_in_rect(&self, rect: Rect) -> Vec<u64> {
        let c0 = rect.x0 / self.block_w;
        let c1 = (rect.x1 - 1).min(self.width_px - 1) / self.block_w;
        let r0 = rect.y0 / self.block_h;
        let r1 = (rect.y1 - 1).min(self.height_px - 1) / self.block_h;
        let cols = self.cols() as u64;
        let mut out = Vec::with_capacity(((c1 - c0 + 1) * (r1 - r0 + 1)) as usize);
        for r in r0..=r1 {
            for c in c0..=c1 {
                out.push(r as u64 * cols + c as u64);
            }
        }
        out
    }

    /// All block ids (a complete-update query).
    pub fn all_blocks(&self) -> Vec<u64> {
        (0..self.block_count()).collect()
    }

    /// Bytes fetched for a query touching `rect` (full blocks) versus the
    /// bytes actually needed — the wasted-data ratio of Figure 1.
    pub fn fetch_amplification(&self, rect: Rect) -> f64 {
        let fetched = self.blocks_in_rect(rect).len() as u64 * self.block_bytes();
        fetched as f64 / (rect.area() * self.bytes_per_pixel as u64) as f64
    }
}

/// Round-robin declustering of blocks across `repos` storage nodes
/// (paper §3.1: "with good declustering, a query will hit as many disks as
/// possible").
pub fn declustered_share(blocks: &[u64], repos: usize, repo: usize) -> Vec<u64> {
    assert!(repo < repos);
    blocks
        .iter()
        .copied()
        .filter(|b| (*b as usize) % repos == repo)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_image_is_16mb() {
        let img = BlockedImage::paper_image(65_536);
        assert_eq!(img.image_bytes(), 16 * 1024 * 1024);
        // 64 KB blocks -> 128x128 px -> 16x16 grid.
        assert_eq!(img.block_bytes(), 65_536);
        assert_eq!(img.block_count(), 256);
        assert_eq!(img.stored_bytes(), img.image_bytes());
    }

    #[test]
    fn power_of_two_blocks_tile_exactly() {
        for bb in [2_048u64, 16_384, 65_536, 262_144] {
            let img = BlockedImage::paper_image(bb);
            assert_eq!(img.block_bytes(), bb, "block bytes for {bb}");
            assert_eq!(img.stored_bytes(), img.image_bytes());
        }
    }

    #[test]
    fn rect_queries_pick_correct_blocks() {
        let img = BlockedImage::paper_image(65_536); // 16x16 grid of 128px blocks
                                                     // A rect inside block (0,0).
        assert_eq!(img.blocks_in_rect(Rect::new(0, 0, 10, 10)), vec![0]);
        // A rect spanning the first two columns.
        assert_eq!(img.blocks_in_rect(Rect::new(120, 0, 136, 10)), vec![0, 1]);
        // A 2x2 zoom region crossing a block corner.
        let z = img.blocks_in_rect(Rect::new(120, 120, 136, 136));
        assert_eq!(z, vec![0, 1, 16, 17], "four blocks, as the paper's zoom");
        // Whole image.
        assert_eq!(img.blocks_in_rect(Rect::new(0, 0, 2048, 2048)).len(), 256);
    }

    #[test]
    fn amplification_grows_with_block_size() {
        let small = BlockedImage::paper_image(2_048);
        let large = BlockedImage::paper_image(262_144);
        let probe = Rect::new(5, 5, 25, 25);
        assert!(large.fetch_amplification(probe) > small.fetch_amplification(probe));
        assert!(small.fetch_amplification(probe) >= 1.0);
    }

    #[test]
    fn declustering_partitions_blocks() {
        let blocks: Vec<u64> = (0..10).collect();
        let mut all = vec![];
        for r in 0..3 {
            all.extend(declustered_share(&blocks, 3, r));
        }
        all.sort_unstable();
        assert_eq!(all, blocks, "shares partition the block set");
        assert_eq!(declustered_share(&blocks, 3, 0), vec![0, 3, 6, 9]);
    }

    proptest! {
        /// Any rect's blocks are within range, sorted, and unique; and the
        /// rect is fully covered (every corner pixel's block is included).
        #[test]
        fn rect_blocks_are_valid(
            x0 in 0u32..2047, y0 in 0u32..2047,
            w in 1u32..512, h in 1u32..512,
            bb in prop::sample::select(vec![2_048u64, 16_384, 65_536]),
        ) {
            let img = BlockedImage::paper_image(bb);
            let rect = Rect::new(x0, y0, (x0 + w).min(2048), (y0 + h).min(2048));
            let blocks = img.blocks_in_rect(rect);
            prop_assert!(!blocks.is_empty());
            prop_assert!(blocks.windows(2).all(|p| p[0] < p[1]));
            prop_assert!(blocks.iter().all(|&b| b < img.block_count()));
            let corner_block = |x: u32, y: u32| {
                (y / img.block_h) as u64 * img.cols() as u64 + (x / img.block_w) as u64
            };
            prop_assert!(blocks.contains(&corner_block(rect.x0, rect.y0)));
            prop_assert!(blocks.contains(&corner_block(rect.x1 - 1, rect.y1 - 1)));
        }

        /// Declustered shares are disjoint and complete for any repo count.
        #[test]
        fn declustering_is_a_partition(n in 1u64..500, repos in 1usize..8) {
            let blocks: Vec<u64> = (0..n).collect();
            let mut seen = vec![0u8; n as usize];
            for r in 0..repos {
                for b in declustered_share(&blocks, repos, r) {
                    seen[b as usize] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
