//! # hpsock-vizserver — the digitized-microscopy visualization server
//!
//! The paper's application layer: an emulated interactive visualization
//! server for digitized microscopy slides (the Virtual Microscope case
//! study), built on the DataCutter runtime over the `socketvia` sockets
//! layers.
//!
//! * [`dataset`] — block-partitioned images, query footprints, round-robin
//!   declustering (paper §2, Figure 1).
//! * [`queries`] — complete-update / partial-update / zoom query
//!   construction.
//! * [`pipeline`] — the Figure 5 filter group: 3× repository → 3× clip →
//!   3× subsample → visualization, with the measured 18 ns/B compute model.
//! * [`driver`] — open-loop (rate-guarantee) and closed-loop (interactive)
//!   query drivers recording response times.
//! * [`guarantee`] — the DR planner: distribution block size from an
//!   update-rate or latency guarantee against a transport's `t(s) = a + b·s`
//!   curve.
//! * [`hetero`] — the Figure 6 load-balancing setups: round-robin reaction
//!   time and demand-driven execution under random slowdowns.

pub mod dataset;
pub mod driver;
pub mod guarantee;
pub mod hetero;
pub mod pipeline;
pub mod queries;

pub use dataset::{declustered_share, BlockedImage, Rect};
pub use driver::{Plan, QueryDriver, QueryResult, RunCapture, TargetSlot};
pub use guarantee::{block_size_for_partial_latency, block_size_for_update_rate, MIN_BLOCK};
pub use hetero::{
    dd_execution_time, dd_execution_time_probed, faulted_lb_run, rr_execution_time,
    rr_reaction_time, rr_reaction_time_probed, FaultedLbOutcome, LbSetup,
};
pub use pipeline::{
    ComputeModel, PipelineCfg, QueryDesc, QueryKind, UowDone, VizPipeline, PAPER_NS_PER_BYTE,
};
pub use queries::{complete_update, partial_update, query_mix, zoom_query};

#[cfg(test)]
mod apptests;
