//! Query constructors: turn a [`BlockedImage`] and a client intent into a
//! [`QueryDesc`] the pipeline understands.

use crate::dataset::{BlockedImage, Rect};
use crate::pipeline::{QueryDesc, QueryKind};

/// A complete update: fetch every block of the image.
pub fn complete_update(img: &BlockedImage) -> QueryDesc {
    QueryDesc {
        kind: QueryKind::Complete,
        blocks: img.all_blocks(),
        block_bytes: img.block_bytes(),
    }
}

/// A partial update: the viewing window moved slightly, requiring
/// `excess_blocks` new blocks (the paper's latency-sensitive probe;
/// typically 1).
pub fn partial_update(img: &BlockedImage, excess_blocks: usize) -> QueryDesc {
    let n = excess_blocks.clamp(1, img.block_count() as usize);
    QueryDesc {
        kind: QueryKind::Partial,
        blocks: (0..n as u64).collect(),
        block_bytes: img.block_bytes(),
    }
}

/// A zoom/magnification query around the image center: the four blocks
/// meeting at the center point (paper §5.2.2, third experiment). When the
/// partitioning is too coarse for four distinct blocks, the touched set is
/// smaller — exactly the "no partitions" behaviour the paper plots.
pub fn zoom_query(img: &BlockedImage) -> QueryDesc {
    let (cx, cy) = (img.width_px / 2, img.height_px / 2);
    let half_w = img.block_w.min(cx).max(1) / 2;
    let half_h = img.block_h.min(cy).max(1) / 2;
    let rect = Rect::new(
        cx - half_w.max(1),
        cy - half_h.max(1),
        (cx + half_w.max(1)).min(img.width_px),
        (cy + half_h.max(1)).min(img.height_px),
    );
    let mut blocks = img.blocks_in_rect(rect);
    blocks.truncate(4);
    QueryDesc {
        kind: QueryKind::Zoom,
        blocks,
        block_bytes: img.block_bytes(),
    }
}

/// The Figure 9 mixed stream: deterministically interleave `n` queries so
/// a fraction `f` of them are complete updates, the rest zooms
/// (Bresenham-style spacing — no RNG, so the mix is identical across
/// seeds and probe configurations).
pub fn query_mix(img: &BlockedImage, f: f64, n: u32) -> Vec<QueryDesc> {
    let mut out = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for _ in 0..n {
        acc += f;
        if acc >= 1.0 - 1e-9 {
            acc -= 1.0;
            out.push(complete_update(img));
        } else {
            out.push(zoom_query(img));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_touches_everything() {
        let img = BlockedImage::paper_image(65_536);
        let q = complete_update(&img);
        assert_eq!(q.blocks.len() as u64, img.block_count());
        assert_eq!(q.bytes(), img.stored_bytes());
        assert_eq!(q.kind, QueryKind::Complete);
    }

    #[test]
    fn partial_is_small() {
        let img = BlockedImage::paper_image(16_384);
        let q = partial_update(&img, 1);
        assert_eq!(q.blocks.len(), 1);
        assert_eq!(q.bytes(), 16_384);
    }

    #[test]
    fn zoom_touches_four_blocks_when_partitioned() {
        // 64 partitions of the 16MB image -> 256KB blocks, 8x8 grid.
        let img = BlockedImage::paper_image(262_144);
        let q = zoom_query(&img);
        assert_eq!(q.blocks.len(), 4, "blocks: {:?}", q.blocks);
        assert_eq!(q.kind, QueryKind::Zoom);
    }

    #[test]
    fn query_mix_hits_the_exact_fraction() {
        let img = BlockedImage::paper_image(262_144);
        for (f, expect) in [(0.0, 0), (0.5, 5), (1.0, 10)] {
            let completes = query_mix(&img, f, 10)
                .iter()
                .filter(|q| q.kind == QueryKind::Complete)
                .count();
            assert_eq!(completes, expect, "fraction {f}");
        }
    }

    #[test]
    fn zoom_on_unpartitioned_image_fetches_everything_it_touches() {
        // "No partitions": one block covering the whole image.
        let img = BlockedImage::paper_image(16 * 1024 * 1024);
        assert_eq!(img.block_count(), 1);
        let q = zoom_query(&img);
        assert_eq!(q.blocks.len(), 1);
        assert_eq!(q.bytes(), img.stored_bytes(), "whole image fetched");
    }
}
