//! The pending-event set: a total-ordered priority queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a caller-supplied
//! ordering key, unique per pending event. The kernel derives it from the
//! *sender* (`(source slot << 40) | per-source push count`), so ties in
//! virtual time break by `(source, push order)` — a canonical order that
//! does not depend on which thread merged the event into the queue, which
//! is what lets the sharded executor reproduce the sequential schedule
//! exactly. The whole simulation stays a deterministic function of the
//! initial seed and process construction order.
//!
//! Internally this is a **calendar queue** tuned to the kernel's dominant
//! pattern — short-delta `send_self_in` relative to the current time: a ring
//! of power-of-two time buckets (width `1 << shift` ns) covering a sliding
//! window starting at the bucket of the last popped event, with a binary-heap
//! overflow for events beyond the window. Near-term events cost O(1)
//! amortized push/pop; far-future events degrade gracefully to heap behavior
//! and migrate into the ring as the window advances. The structure only
//! changes *when* work is done, never *what order* events come out in: pops
//! always return the global `(time, seq)` minimum, so `TraceDigest` is
//! bit-identical to the previous `BinaryHeap` implementation (pinned by the
//! model-based property test in `tests/queue_model.rs`).

use crate::kernel::{Message, ProcessId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A scheduled delivery of a [`Message`] to a process at a virtual instant.
///
/// 16-byte aligned so the whole-event moves through the queue's register
/// compile to aligned vector copies (events travel by value on the hot
/// path).
#[repr(align(16))]
pub struct Event {
    /// Delivery time.
    pub time: SimTime,
    /// Caller-supplied ordering key; the deterministic tie-breaker.
    pub seq: u64,
    /// Destination process.
    pub target: ProcessId,
    /// Opaque payload, downcast by the receiving process.
    pub msg: Message,
}

impl Event {
    /// The `(time, seq)` ordering key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

// BinaryHeap is a max-heap; invert the comparison so the overflow heap
// yields the earliest event.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// Initial bucket width: `1 << 11` ns ≈ 2 µs, matching per-frame service
/// times on the simulated gigabit paths.
const DEFAULT_SHIFT: u32 = 11;
const DEFAULT_BUCKETS: usize = 128;
const MAX_BUCKETS: usize = 1 << 16;
/// Grow the ring when average bucket occupancy exceeds this.
const GROW_FACTOR: usize = 8;
/// Widest bucket considered: `1 << 40` ns ≈ 18 min of virtual time.
const MAX_SHIFT: u32 = 40;

/// Sentinel location meaning "overflow heap" rather than a ring slot.
const OVERFLOW: usize = usize::MAX;

/// Priority queue of pending events, earliest first, FIFO among equal times.
pub struct EventQueue {
    /// The global minimum, held out of the calendar in a register. The
    /// kernel's dominant pattern — handle one event, schedule the next —
    /// then costs two register moves and never touches a bucket.
    /// Invariant: `None` only when the whole queue is empty (pops refill
    /// it eagerly); everything in the calendar is `>` this event.
    next: Option<Event>,
    /// Ring of time buckets; each holds the events of exactly one absolute
    /// bucket index, sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Event>>,
    mask: u64,
    shift: u32,
    /// Events currently in the ring (the rest are in `overflow`).
    ring_len: usize,
    /// Events beyond the ring's window, earliest on top.
    overflow: BinaryHeap<Event>,
    /// Largest time popped so far; the window floor.
    last_time: SimTime,
    /// Total pushes since the last recycle (not an ordering input).
    inserted: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_BUCKETS, DEFAULT_SHIFT)
    }

    /// A bucketless shell left behind when a queue is moved into the
    /// arena during `Sim` teardown. Still a correct queue (everything
    /// would take the overflow heap), just never used.
    pub(crate) fn hollow() -> Self {
        EventQueue {
            next: None,
            buckets: Vec::new(),
            mask: 0,
            shift: DEFAULT_SHIFT,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            last_time: SimTime::ZERO,
            inserted: 0,
        }
    }

    fn with_shape(nbuckets: usize, shift: u32) -> Self {
        debug_assert!(nbuckets.is_power_of_two());
        EventQueue {
            next: None,
            buckets: (0..nbuckets).map(|_| VecDeque::new()).collect(),
            mask: nbuckets as u64 - 1,
            shift,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            last_time: SimTime::ZERO,
            inserted: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    /// The window floor: the bucket of the last popped event.
    #[inline]
    fn cur_bucket(&self) -> u64 {
        self.last_time.as_nanos() >> self.shift
    }

    /// Insert a delivery of `msg` to `target` at `time`, tie-broken by
    /// `seq`. The caller guarantees `(time, seq)` is unique among pending
    /// events (the kernel's per-source keys are never reused).
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, target: ProcessId, msg: Message) {
        self.inserted += 1;
        // Decide placement from the key alone so the fast path constructs
        // the event directly in the register, with no intermediate move.
        match &self.next {
            None => {
                debug_assert!(self.ring_len == 0 && self.overflow.is_empty());
                self.next = Some(Event {
                    time,
                    seq,
                    target,
                    msg,
                });
            }
            Some(n) if (time, seq) < n.key() => {
                let old = self
                    .next
                    .replace(Event {
                        time,
                        seq,
                        target,
                        msg,
                    })
                    .expect("register full");
                self.demote(old);
            }
            Some(_) => self.demote(Event {
                time,
                seq,
                target,
                msg,
            }),
        }
    }

    /// Insert into the calendar proper (resize check + placement).
    fn demote(&mut self, ev: Event) {
        self.maybe_resize();
        self.place(ev);
    }

    /// Put `ev` in its ring slot (sorted) or the overflow heap.
    /// Never resizes.
    fn place(&mut self, ev: Event) {
        let cur = self.cur_bucket();
        // Defensive: an event scheduled before the last popped time (the
        // kernel never does this) is treated as due now; sorted insertion
        // by key still pops it first.
        let b = self.bucket_of(ev.time).max(cur);
        if b - cur >= self.buckets.len() as u64 {
            self.overflow.push(ev);
            return;
        }
        let slot = (b & self.mask) as usize;
        let q = &mut self.buckets[slot];
        if q.back().map_or(true, |last| last.key() < ev.key()) {
            q.push_back(ev);
        } else {
            // Out-of-order arrival within the bucket: binary search for
            // the insertion point (keys are unique by the push contract).
            let (mut lo, mut hi) = (0, q.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if q[mid].key() < ev.key() {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            q.insert(lo, ev);
        }
        self.ring_len += 1;
    }

    /// Locate the calendar's `(time, seq)` minimum (ring slot index, or
    /// [`OVERFLOW`]) without removing it.
    fn min_loc(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        if self.ring_len > 0 {
            let cur = self.cur_bucket();
            // Every ring event lives in a bucket within `nbuckets` of the
            // floor, and each slot holds one absolute bucket, so the first
            // non-empty slot in window order holds the earliest bucket.
            for i in 0..self.buckets.len() as u64 {
                let slot = ((cur + i) & self.mask) as usize;
                if let Some(e) = self.buckets[slot].front() {
                    best = Some((e.time, e.seq, slot));
                    break;
                }
            }
            debug_assert!(best.is_some(), "ring_len > 0 but window scan found nothing");
        }
        if let Some(o) = self.overflow.peek() {
            let better = match best {
                Some((t, s, _)) => (o.time, o.seq) < (t, s),
                None => true,
            };
            if better {
                best = Some((o.time, o.seq, OVERFLOW));
            }
        }
        best.map(|(_, _, loc)| loc)
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.next.take()?;
        if ev.time > self.last_time {
            self.last_time = ev.time;
        }
        if self.ring_len != 0 || !self.overflow.is_empty() {
            self.refill();
        }
        Some(ev)
    }

    /// [`pop`](Self::pop), destructured. Splitting the event apart *before*
    /// the refill keeps `time`/`target` in registers and moves only the
    /// payload word-block; returning the whole `Event` forces the optimizer
    /// to shuttle all 64 bytes through the stack around the refill call.
    #[inline]
    pub fn pop_parts(&mut self) -> Option<(SimTime, ProcessId, Message)> {
        let Event {
            time, target, msg, ..
        } = self.next.take()?;
        if time > self.last_time {
            self.last_time = time;
        }
        if self.ring_len != 0 || !self.overflow.is_empty() {
            self.refill();
        }
        Some((time, target, msg))
    }

    /// Move the calendar's minimum into the `next` register. Caller
    /// guarantees the calendar is non-empty.
    fn refill(&mut self) {
        self.migrate();
        let loc = self.min_loc().expect("calendar non-empty");
        let ev = if loc == OVERFLOW {
            self.overflow.pop().expect("overflow minimum exists")
        } else {
            self.ring_len -= 1;
            self.buckets[loc].pop_front().expect("ring minimum exists")
        };
        self.next = Some(ev);
    }

    /// Pull overflow events whose bucket has entered the window into the
    /// ring, so a drained ring never pins popping at heap speed.
    fn migrate(&mut self) {
        let n = self.buckets.len() as u64;
        let cur = self.cur_bucket();
        while self
            .overflow
            .peek()
            .is_some_and(|top| self.bucket_of(top.time) - cur < n)
        {
            let ev = self.overflow.pop().expect("peeked overflow event exists");
            self.place(ev);
        }
    }

    /// Adapt the ring to the workload: more buckets when occupancy is
    /// high, wider buckets when most events sit beyond the window.
    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        if self.len() > n * GROW_FACTOR && n < MAX_BUCKETS {
            self.rebuild(n * 2, self.shift);
        } else if self.overflow.len() > 64
            && self.overflow.len() > self.ring_len * 4
            && self.shift < MAX_SHIFT
        {
            self.rebuild(n, self.shift + 2);
        }
    }

    fn rebuild(&mut self, nbuckets: usize, shift: u32) {
        let mut pending: Vec<Event> = Vec::with_capacity(self.len());
        for q in &mut self.buckets {
            pending.extend(q.drain(..));
        }
        pending.extend(self.overflow.drain());
        if nbuckets > self.buckets.len() {
            self.buckets.resize_with(nbuckets, VecDeque::new);
        }
        self.mask = nbuckets as u64 - 1;
        self.shift = shift;
        self.ring_len = 0;
        for ev in pending {
            self.place(ev);
        }
    }

    /// The time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next.as_ref().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + usize::from(self.next.is_some())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever inserted since the last recycle.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Empty the queue for reuse, keeping bucket allocations and the shape
    /// the previous run's workload tuned; the insertion count restarts at 0.
    pub fn recycle(&mut self) {
        self.next = None;
        for q in &mut self.buckets {
            q.clear();
        }
        self.overflow.clear();
        self.ring_len = 0;
        self.last_time = SimTime::ZERO;
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 0, ProcessId(0), Message::new(3u32));
        q.push(t(10), 1, ProcessId(0), Message::new(1u32));
        q.push(t(20), 2, ProcessId(0), Message::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(5), i as u64, ProcessId(0), Message::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), 0, ProcessId(1), Message::new(()));
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.inserted(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.inserted(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 0, ProcessId(0), Message::new(1u32));
        q.push(t(30), 1, ProcessId(0), Message::new(4u32));
        let e = q.pop().unwrap();
        assert_eq!(e.msg.downcast::<u32>().unwrap(), 1);
        q.push(t(20), 2, ProcessId(0), Message::new(2u32));
        q.push(t(20), 3, ProcessId(0), Message::new(3u32));
        let got: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    /// Events far beyond the ring window take the overflow path and still
    /// come out in global order as the window advances over them.
    #[test]
    fn far_future_events_order_with_near_ones() {
        let mut q = EventQueue::new();
        let horizon = (DEFAULT_BUCKETS as u64) << DEFAULT_SHIFT;
        q.push(t(10 * horizon), 0, ProcessId(0), Message::new(4u32));
        q.push(t(3), 1, ProcessId(0), Message::new(1u32));
        q.push(t(2 * horizon), 2, ProcessId(0), Message::new(3u32));
        q.push(t(7), 3, ProcessId(0), Message::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    /// Equal-time events split across the overflow boundary (some pushed
    /// while the time was far, some near) stay FIFO by sequence.
    #[test]
    fn fifo_survives_overflow_migration() {
        let mut q = EventQueue::new();
        let far = (DEFAULT_BUCKETS as u64) << (DEFAULT_SHIFT + 1);
        q.push(t(far), 0, ProcessId(0), Message::new(0u32)); // overflow
        q.push(t(1), 1, ProcessId(1), Message::new(99u32));
        assert_eq!(q.pop().unwrap().msg.downcast::<u32>().unwrap(), 99);
        // Window has advanced only to bucket of t=1; push more at `far`.
        q.push(t(far), 2, ProcessId(0), Message::new(1u32));
        q.push(t(far), 3, ProcessId(0), Message::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Pushing far more events than buckets triggers ring growth without
    /// disturbing the order.
    #[test]
    fn growth_preserves_order() {
        let mut q = EventQueue::new();
        let n = (DEFAULT_BUCKETS * GROW_FACTOR * 2) as u64;
        // Reverse time order, all within a few buckets.
        for i in 0..n {
            q.push(t(n - i), i, ProcessId(0), Message::new(n - i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.msg.downcast::<u64>().unwrap())
            .collect();
        let want: Vec<u64> = (1..=n).collect();
        assert_eq!(order, want);
    }

    #[test]
    fn recycle_resets_but_keeps_working() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, ProcessId(0), Message::new(1u32));
        q.push(t(900_000_000), 1, ProcessId(0), Message::new(2u32));
        q.pop();
        q.recycle();
        assert!(q.is_empty());
        assert_eq!(q.inserted(), 0);
        assert_eq!(q.peek_time(), None);
        q.push(t(4), 0, ProcessId(0), Message::new(7u32));
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.pop().unwrap().msg.downcast::<u32>().unwrap(), 7);
    }
}
