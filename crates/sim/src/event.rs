//! The pending-event set: a total-ordered priority queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing sequence number assigned at insertion. Ties in virtual time are
//! therefore broken by insertion order, which makes the whole simulation a
//! deterministic function of the initial seed and process construction order.

use crate::kernel::{Message, ProcessId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled delivery of a [`Message`] to a process at a virtual instant.
pub struct Event {
    /// Delivery time.
    pub time: SimTime,
    /// Insertion sequence number; the deterministic tie-breaker.
    pub seq: u64,
    /// Destination process.
    pub target: ProcessId,
    /// Opaque payload, downcast by the receiving process.
    pub msg: Message,
}

impl Event {
    /// The `(time, seq)` ordering key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

// BinaryHeap is a max-heap; invert the comparison so `pop` yields the
// earliest event.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// Priority queue of pending events, earliest first, FIFO among equal times.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a delivery of `msg` to `target` at `time`.
    pub fn push(&mut self, time: SimTime, target: ProcessId, msg: Message) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            target,
            msg,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever inserted (the next sequence number).
    pub fn inserted(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), ProcessId(0), Box::new(3u32));
        q.push(t(10), ProcessId(0), Box::new(1u32));
        q.push(t(20), ProcessId(0), Box::new(2u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(5), ProcessId(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ProcessId(1), Box::new(()));
        assert_eq!(q.peek_time(), Some(t(42)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.inserted(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.inserted(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), ProcessId(0), Box::new(1u32));
        q.push(t(30), ProcessId(0), Box::new(4u32));
        let e = q.pop().unwrap();
        assert_eq!(*e.msg.downcast::<u32>().unwrap(), 1);
        q.push(t(20), ProcessId(0), Box::new(2u32));
        q.push(t(20), ProcessId(0), Box::new(3u32));
        let got: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.msg.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }
}
