//! Sharded conservative-parallel execution of a [`Sim`].
//!
//! A [`ShardPlan`] partitions the process and resource tables across
//! `shards` worker threads and records, for every ordered shard pair, the
//! minimum latency (**lookahead**) any cross-shard message must carry.
//! `run_sharded` then executes the simulation in *rounds* of a
//! conservative (Chandy–Misra–Bryant style) window protocol with exactly
//! **one barrier per round** — a sense-reversing spin-then-park
//! [`SpinBarrier`]:
//!
//! 1. After the barrier, every worker reads the state its peers published
//!    at the end of the *previous* round: per-shard earliest pending
//!    times, the minima of cross-shard batches still in flight, stop
//!    flags and event counts. Publishes are parity-indexed (round `k`
//!    reads slot `k & 1`, writes slot `(k + 1) & 1`), so writes for the
//!    next round never race reads for the current one — the barrier
//!    provides the happens-before edge. From the same values every
//!    worker derives the same exit decision and its own *ragged* window
//!    `W(d) = min over s of (next(s) + reach(s, d))`, where `reach` is
//!    the all-pairs min-plus closure of the lookahead matrix (including
//!    `s = d`, whose entry is the cheapest cycle back into `d`).
//! 2. It drains the batches peers staged toward it from the per-pair
//!    slots, then dispatches its local events with `time < W(my)`
//!    exactly as the sequential kernel would. Cross-shard sends are
//!    *staged* into worker-local buffers — no locks on the dispatch path.
//! 3. It publishes next-round state and flushes each non-empty staged
//!    batch into its pair slot: one uncontended lock per pair per round,
//!    not one per event. Trace buckets and probe events are deposited
//!    only every [`FLUSH_EVERY`] rounds; worker 0 merges deposits behind
//!    a time cutoff at the same cadence, so the per-round protocol has
//!    no merge step and no second barrier at all.
//!
//! **Safety.** Any event a shard `s` may still produce is at or after
//! `next(s)` (its effective earliest pending time, in-flight batches
//! included), and every chain of sends from `s` into `d` takes at least
//! `reach(s, d)` ns, so no future arrival into `d` can land below
//! `W(d)`. A consumer may pick up a peer's round-`k` batch during round
//! `k` itself; those events carry times `>= W(d)`, so they cannot be
//! dispatched early, and the published batch minima make the next
//! round's `next(d)` independent of whether the pickup happened — the
//! window sequence is a pure function of the simulation, not of thread
//! timing.
//!
//! **Progress.** Every `reach` entry is positive (the plan validates its
//! lookahead entries), so `W(d) > min next(s)` for the shard holding the
//! globally earliest event, which therefore dispatches at least one
//! event per round; the global minimum strictly increases.
//!
//! **Determinism.** Event ordering keys are per-*source*
//! (`kernel::next_key`), so an event's key does not depend on which
//! worker executed the source, and the trace digest folds per-instant
//! commutative buckets ([`TraceDigest::absorb`]). Deposited bucket/probe
//! streams are per-shard time-ordered; the cutoff merge folds strictly
//! finalized prefixes (everything below the global minimum cannot gain
//! new entries) and holds the rest back, so the master digest and probe
//! stream come out bit-for-bit equal to the sequential kernel's. The
//! only visible differences are coarser `stop`/`max_events` granularity
//! (checked at round boundaries) and that [`Ctx::spawn`](crate::Ctx::spawn)
//! panics mid-run (see the kernel; worker process tables cannot grow
//! deterministically).

use crate::event::EventQueue;
use crate::kernel::{Core, Ctx, Message, Process, ProcessId, Sim};
use crate::probe::{Probe, ProbeEvent};
use crate::resource::ResourceId;
use crate::time::SimTime;
use crate::trace::{Bucket, TraceDigest};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A partition of a simulation across worker threads, plus the lookahead
/// promises that make conservative windows safe. Build one from topology
/// (e.g. `hpsock-net`'s `Cluster::shard_plan`) and attach it with
/// [`Sim::set_shard_plan`].
#[derive(Clone)]
pub struct ShardPlan {
    /// Number of worker threads; `1` means the sequential kernel runs.
    pub shards: usize,
    /// Maps every process to its owning shard (must return `< shards`).
    pub resolve_pid: Arc<dyn Fn(ProcessId) -> usize + Send + Sync>,
    /// Maps every resource to its owning shard. A resource must land on
    /// the same shard as every process that uses it (asserted at use).
    pub resolve_rid: Arc<dyn Fn(ResourceId) -> usize + Send + Sync>,
    /// `lookahead[a][b]` is the minimum delay, in nanoseconds, of any
    /// message sent from a process on shard `a` to a process on shard `b`.
    /// `u64::MAX` means "no link" (any such send panics); diagonal entries
    /// are ignored. Every entry must be positive.
    pub lookahead: Arc<Vec<Vec<u64>>>,
    /// Names the physical link behind `lookahead[a][b]` for error messages.
    pub describe_link: Arc<dyn Fn(usize, usize) -> String + Send + Sync>,
}

/// Strictly parse a shard count, following the same convention as
/// `HPSOCK_THREADS`: zero, negative and non-numeric values are hard
/// errors naming the variable, never silently defaulted.
pub fn parse_shard_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => {
            Err("HPSOCK_SHARDS must be >= 1, got 0 (unset it for the sequential kernel)".into())
        }
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "HPSOCK_SHARDS must be a positive integer, got {raw:?}"
        )),
    }
}

thread_local! {
    /// Per-thread override consulted by [`configured_shards`] before the
    /// `HPSOCK_SHARDS` environment variable (see [`with_shard_count`]).
    static SHARD_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The shard-count override active on this thread, if any. Thread pools
/// that fan simulation work out to worker threads (e.g. the experiment
/// sweeps) should capture this on the submitting thread and re-install it
/// in each worker via [`with_shard_count`], so an override behaves like a
/// process-wide setting for the work it scopes.
pub fn shard_override() -> Option<usize> {
    SHARD_OVERRIDE.with(std::cell::Cell::get)
}

/// Run `f` with [`configured_shards`] returning `count` on this thread,
/// regardless of the `HPSOCK_SHARDS` environment variable; the previous
/// override (if any) is restored afterwards, including on unwind.
///
/// This is how tests vary the shard count: calling `std::env::set_var`
/// mid-run is undefined behaviour on glibc while any other thread may
/// call `getenv`, and it leaks the setting to concurrently running tests.
pub fn with_shard_count<T>(count: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SHARD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SHARD_OVERRIDE.with(|c| c.replace(Some(count))));
    f()
}

/// The shard count requested via [`with_shard_count`] or, absent an
/// override, the `HPSOCK_SHARDS` environment variable (default 1: the
/// sequential kernel). Invalid values abort with a clear message rather
/// than silently running sequentially.
pub fn configured_shards() -> usize {
    if let Some(n) = shard_override() {
        return n;
    }
    match std::env::var("HPSOCK_SHARDS") {
        Ok(raw) => parse_shard_count(&raw).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => 1,
    }
}

/// Clamp a requested shard count to what a topology can use, warning on
/// stderr when the request is reduced. `what` names the topology in the
/// warning (e.g. "the 2-node microbenchmark cluster").
pub fn clamp_shards(requested: usize, max: usize, what: &str) -> usize {
    let max = max.max(1);
    if requested > max {
        eprintln!(
            "warning: HPSOCK_SHARDS={requested} exceeds the {max} usable shard(s) of {what}; \
             clamping to {max}"
        );
        max
    } else {
        requested
    }
}

/// How many rounds between digest/probe deposits (and worker-0 cutoff
/// merges). One merge per round was a measurable per-round tax; once
/// every 256 rounds it vanishes from the profile while the held-back
/// buffers stay small (a round's output is bounded by its window).
const FLUSH_EVERY: u64 = 256;

/// A cross-shard event in flight: the exact `(time, key, target, msg)`
/// tuple the sender would have pushed locally.
pub(crate) struct SentEvent {
    pub(crate) time: SimTime,
    pub(crate) key: u64,
    pub(crate) target: ProcessId,
    pub(crate) msg: Message,
}

/// One directed shard pair's in-flight batch slot. The producer appends
/// its whole staged batch once per round; the consumer drains once per
/// round. The mutex is all but uncontended — the two sides touch the
/// slot at most once per round each — and the cache-line alignment keeps
/// neighbouring pairs from false-sharing.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PairSlot(pub(crate) Mutex<Vec<SentEvent>>);

/// Worker-local view of the partition, installed as `Core::route` for the
/// duration of a sharded run. `Core::push` consults it to route each keyed
/// push locally or into a worker-local staged batch; the batch is flushed
/// to the destination's [`PairSlot`] once per round.
pub(crate) struct ShardRoute {
    pub(crate) shard: usize,
    pub(crate) owner_pid: Arc<Vec<usize>>,
    pub(crate) owner_rid: Arc<Vec<usize>>,
    pub(crate) lookahead: Arc<Vec<Vec<u64>>>,
    pub(crate) describe: Arc<dyn Fn(usize, usize) -> String + Send + Sync>,
    /// `pairs[src * shards + dst]` is the slot for batches src → dst.
    pub(crate) pairs: Arc<Vec<PairSlot>>,
    /// Per-destination staged batch for the current round (lock-free).
    pub(crate) staged: Vec<Vec<SentEvent>>,
    /// Minimum event time per staged batch (`u64::MAX` when empty);
    /// published with the flush so peers can bound in-flight arrivals.
    pub(crate) staged_min: Vec<u64>,
    /// Cross-shard sends routed by this worker, for telemetry.
    pub(crate) sent: u64,
}

impl ShardRoute {
    /// Panic unless a send landing at `time` honours the lookahead this
    /// shard promised toward `dest` — the invariant the whole window
    /// protocol rests on.
    pub(crate) fn check_lookahead(&self, now: SimTime, time: SimTime, dest: usize) {
        let promised = self.lookahead[self.shard][dest];
        if promised == u64::MAX {
            panic!(
                "cross-shard send from shard {} to shard {}, but the shard plan records \
                 no network link between shards ({})",
                self.shard,
                dest,
                (self.describe)(self.shard, dest),
            );
        }
        let delay = time.as_nanos().saturating_sub(now.as_nanos());
        if delay < promised {
            panic!(
                "lookahead violation on {}: shard {} sent an event to shard {} with \
                 delay {} ns, below the link's promised minimum of {} ns",
                (self.describe)(self.shard, dest),
                self.shard,
                dest,
                delay,
                promised,
            );
        }
    }
}

/// One worker's probe buffer: every emission tagged with the `(time, key)`
/// of the dispatch that produced it.
type ProbeBuf = Arc<Mutex<Vec<(SimTime, u64, ProbeEvent)>>>;

/// Probe shim installed in each worker core: tags every emission with the
/// `(time, key)` of the dispatch that produced it, so the merge step can
/// interleave the per-shard streams back into exact sequential order.
struct BufferProbe {
    buf: ProbeBuf,
    time: SimTime,
    key: u64,
}

impl Probe for BufferProbe {
    fn record(&mut self, ev: ProbeEvent) {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((self.time, self.key, ev));
    }

    fn begin_dispatch(&mut self, time: SimTime, key: u64) {
        self.time = time;
        self.key = key;
    }
}

/// A sense-reversing barrier that spins briefly before parking, and whose
/// waiters can be released by a panicking peer (`poison`). The rounds of a
/// well-balanced sharded run arrive within microseconds of each other, so
/// a short spin converts almost every wait into a handful of cache-line
/// reads instead of a futex round-trip; the park fallback keeps
/// oversubscribed hosts from burning a core. A plain `std::sync::Barrier`
/// would leave the surviving workers blocked forever if one worker
/// panicked (say, on a lookahead violation).
struct SpinBarrier {
    n: usize,
    /// Spin iterations before parking; 0 when the host cannot run all
    /// workers at once (then spinning only steals cycles from the peer
    /// being waited for).
    spin_limit: u32,
    arrived: AtomicUsize,
    generation: AtomicU64,
    poisoned: AtomicBool,
    park: Mutex<()>,
    cv: Condvar,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        SpinBarrier {
            n,
            spin_limit: if cores >= n { 1 << 14 } else { 0 },
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block until all `n` workers arrive. Returns `false` if the barrier
    /// was poisoned instead.
    ///
    /// The release/acquire pair on `generation` (chained through the
    /// read-modify-writes on `arrived`) orders every pre-barrier store of
    /// every worker before every post-barrier load of every worker, which
    /// is what lets the round protocol publish its shared state with
    /// `Relaxed` stores.
    fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        // Read the generation *before* arriving: it cannot advance until
        // all `n` workers (including this one) have arrived, so the value
        // is stable; reading it after could miss the release.
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset the count before releasing the
            // generation, so the next round's arrivals see a zero count.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            // Lock-then-notify so a waiter that checked the generation
            // and is about to park cannot miss the wakeup.
            drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
            self.cv.notify_all();
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            if spins < self.spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let mut guard = self.park.lock().unwrap_or_else(PoisonError::into_inner);
                while self.generation.load(Ordering::Acquire) == gen
                    && !self.poisoned.load(Ordering::Acquire)
                {
                    guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
                break;
            }
        }
        !self.poisoned.load(Ordering::Acquire)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.park.lock().unwrap_or_else(PoisonError::into_inner));
        self.cv.notify_all();
    }
}

/// The min-plus transitive closure of a lookahead matrix: `reach[s][d]`
/// is the cheapest total delay of *any* chain of cross-shard links from
/// `s` to `d` (one hop or many), and `reach[d][d]` is the cheapest cycle
/// back into `d`. Ragged windows must bound multi-hop futures — an event
/// dispatched on `s` can cause a send to `a` which causes a send to `d`
/// — so the per-destination window uses this closure, not the raw matrix.
/// Entries stay `u64::MAX` where no chain exists; all finite entries are
/// positive because every link's lookahead is.
fn reach_closure(lookahead: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let n = lookahead.len();
    let mut d: Vec<Vec<u64>> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| if a == b { u64::MAX } else { lookahead[a][b] })
                .collect()
        })
        .collect();
    for k in 0..n {
        let row_k = d[k].clone();
        for row in d.iter_mut() {
            let dik = row[k];
            if dik == u64::MAX {
                continue;
            }
            for (cell, &via) in row.iter_mut().zip(&row_k) {
                let alt = dik.saturating_add(via);
                if alt < *cell {
                    *cell = alt;
                }
            }
        }
    }
    d
}

/// A shard's accumulated mergeable output: trace-digest buckets and probe
/// events deposited every [`FLUSH_EVERY`] rounds, each stream in
/// nondecreasing time order.
#[derive(Default)]
struct Deposit {
    buckets: Vec<Bucket>,
    probes: Vec<(SimTime, u64, ProbeEvent)>,
}

/// State shared by all workers for one sharded run. The `next`,
/// `sent_min`, `stop` and `events` arrays are double-buffered by round
/// parity: round `k` reads index `k & 1` and writes index `(k + 1) & 1`,
/// and the barrier orders one round's writes before the next round's
/// reads, so `Relaxed` atomics suffice (see [`SpinBarrier::wait`]).
struct Shared {
    barrier: SpinBarrier,
    /// Per-shard earliest pending local time, in ns (`u64::MAX` = drained).
    next: [Vec<AtomicU64>; 2],
    /// `sent_min[p][src * shards + dst]`: minimum event time of the batch
    /// src flushed toward dst last round (`u64::MAX` = none) — the bound
    /// on in-flight arrivals that keeps early/late slot pickup invisible.
    sent_min: [Vec<AtomicU64>; 2],
    /// Per-shard stop flags (a worker publishes its own core's flag).
    stop: [Vec<AtomicBool>; 2],
    /// Per-shard cumulative dispatched-event counts.
    events: [Vec<AtomicU64>; 2],
    deposits: Vec<Mutex<Deposit>>,
    /// Min-plus closure of the plan's lookahead matrix.
    reach: Vec<Vec<u64>>,
    /// Events dispatched before this run began (`max_events` is a total).
    base_events: u64,
    /// Run limit in ns (`u64::MAX` when unbounded).
    horizon: u64,
    max_events: u64,
}

/// The master digest and probe plus the per-shard held-back streams:
/// deposited entries at or above the last merge cutoff wait here, in
/// time order, until a later cutoff (or the end of the run) finalizes
/// them. Owned by worker 0 during the run.
struct Sink {
    trace: TraceDigest,
    probe: Option<Box<dyn Probe>>,
    held_buckets: Vec<Vec<Bucket>>,
    held_probes: Vec<Vec<(SimTime, u64, ProbeEvent)>>,
}

/// One worker thread's simulator slice: a full-width [`Core`] (foreign
/// rows of the resource/RNG tables are clones that are never touched —
/// misuse is caught by the ownership asserts) plus the processes it owns.
struct Worker {
    my: usize,
    core: Core,
    procs: Vec<Option<Box<dyn Process>>>,
    probe_buf: Option<ProbeBuf>,
    sink: Option<Sink>,
    /// Wall-clock round samples, worker-local (see [`crate::telemetry`]);
    /// `None` unless `HPSOCK_TELEMETRY` (or its scoped override) is set.
    tel: Option<crate::telemetry::WorkerTelemetry>,
}

/// Execute `sim` across `plan.shards` worker threads; semantics of
/// [`Sim::run`] / [`Sim::run_until`] (with `limit`), same results.
pub(crate) fn run_sharded(sim: &mut Sim, plan: &ShardPlan, limit: Option<SimTime>) -> SimTime {
    sim.start_new_processes();
    if sim.core.stop_requested {
        return sim.core.now;
    }
    let shards = plan.shards;
    let n_procs = sim.procs.len();
    let n_res = sim.core.resources.len();
    let owner_pid: Arc<Vec<usize>> = Arc::new(
        (0..n_procs)
            .map(|i| {
                let s = (plan.resolve_pid)(ProcessId(i));
                assert!(
                    s < shards,
                    "shard plan assigned process {i} to shard {s}, but there are only {shards} shards"
                );
                s
            })
            .collect(),
    );
    let owner_rid: Arc<Vec<usize>> = Arc::new(
        (0..n_res)
            .map(|i| {
                let s = (plan.resolve_rid)(ResourceId(i));
                assert!(
                    s < shards,
                    "shard plan assigned resource {i} to shard {s}, but there are only {shards} shards"
                );
                s
            })
            .collect(),
    );
    let pairs: Arc<Vec<PairSlot>> =
        Arc::new((0..shards * shards).map(|_| PairSlot::default()).collect());
    let probing = sim.core.probe.is_some();
    // Telemetry is resolved once per run; when enabled, each worker gets a
    // private sample buffer stamped against a common epoch so the flush
    // can lay every lane on one wall-clock timeline.
    let tel_dir = crate::telemetry::configured_telemetry();
    let run_start = std::time::Instant::now();

    let mut workers: Vec<Worker> = (0..shards)
        .map(|s| {
            let probe_buf = probing.then(|| Arc::new(Mutex::new(Vec::new())));
            Worker {
                my: s,
                core: Core {
                    now: sim.core.now,
                    queue: EventQueue::new(),
                    resources: sim.core.resources.clone(),
                    rngs: sim.core.rngs.clone(),
                    trace: TraceDigest::new_logged(),
                    master_seed: sim.core.master_seed,
                    pending_spawns: Vec::new(),
                    next_pid: sim.core.next_pid,
                    stop_requested: false,
                    events_dispatched: 0,
                    push_counts: sim.core.push_counts.clone(),
                    probe: probe_buf.clone().map(|buf| {
                        Box::new(BufferProbe {
                            buf,
                            time: SimTime::ZERO,
                            key: 0,
                        }) as Box<dyn Probe>
                    }),
                    route: Some(Box::new(ShardRoute {
                        shard: s,
                        owner_pid: owner_pid.clone(),
                        owner_rid: owner_rid.clone(),
                        lookahead: plan.lookahead.clone(),
                        describe: plan.describe_link.clone(),
                        pairs: pairs.clone(),
                        staged: (0..shards).map(|_| Vec::new()).collect(),
                        staged_min: vec![u64::MAX; shards],
                        sent: 0,
                    })),
                },
                procs: (0..n_procs).map(|_| None).collect(),
                probe_buf,
                sink: None,
                tel: tel_dir
                    .as_ref()
                    .map(|_| crate::telemetry::WorkerTelemetry::new(s, run_start)),
            }
        })
        .collect();

    // Move each owned process in; the master table keeps the `None` holes.
    for i in 0..n_procs {
        let s = owner_pid[i];
        workers[s].procs[i] = Some(
            sim.procs[i]
                .take()
                .expect("process checked in between runs"),
        );
    }
    // Worker 0 merges deposit flushes into the real digest/probe.
    workers[0].sink = Some(Sink {
        trace: std::mem::take(&mut sim.core.trace),
        probe: sim.core.probe.take(),
        held_buckets: (0..shards).map(|_| Vec::new()).collect(),
        held_probes: (0..shards).map(|_| Vec::new()).collect(),
    });
    // Distribute the pending global queue by event target, keys intact.
    while let Some(ev) = sim.core.queue.pop() {
        let s = owner_pid[ev.target.0];
        workers[s]
            .core
            .queue
            .push(ev.time, ev.seq, ev.target, ev.msg);
    }

    let au64 = |n: usize, v: u64| (0..n).map(|_| AtomicU64::new(v)).collect::<Vec<_>>();
    let shared = Shared {
        barrier: SpinBarrier::new(shards),
        next: [au64(shards, u64::MAX), au64(shards, u64::MAX)],
        sent_min: [
            au64(shards * shards, u64::MAX),
            au64(shards * shards, u64::MAX),
        ],
        stop: [
            (0..shards).map(|_| AtomicBool::new(false)).collect(),
            (0..shards).map(|_| AtomicBool::new(false)).collect(),
        ],
        events: [au64(shards, 0), au64(shards, 0)],
        deposits: (0..shards)
            .map(|_| Mutex::new(Deposit::default()))
            .collect(),
        reach: reach_closure(&plan.lookahead),
        base_events: sim.core.events_dispatched,
        horizon: limit.map_or(u64::MAX, |t| t.as_nanos()),
        max_events: sim.max_events,
    };
    // Round 0 reads parity 0: seed it with the distributed queues' state.
    for (s, w) in workers.iter().enumerate() {
        let next = w.core.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
        shared.next[0][s].store(next, Ordering::Relaxed);
    }

    // Run the round protocol. A panic in any worker poisons the barrier so
    // the others unwind instead of deadlocking, then resurfaces here.
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in workers.iter_mut() {
            let shared = &shared;
            let panic_slot = &panic_slot;
            scope.spawn(move || {
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(w, shared)
                }));
                if let Err(payload) = run {
                    *panic_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(payload);
                    shared.barrier.poison();
                }
            });
        }
    });
    if let Some(payload) = panic_slot
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        std::panic::resume_unwind(payload);
    }

    // Flush telemetry now that the worker threads have joined: the wall
    // clock stops here, and every sample buffer is back in this frame —
    // nothing touched shared state on the dispatch path.
    if let Some(dir) = tel_dir {
        let wall_ns = run_start.elapsed().as_nanos() as u64;
        let run_events: u64 = workers.iter().map(|w| w.core.events_dispatched).sum();
        let bufs: Vec<crate::telemetry::WorkerTelemetry> =
            workers.iter_mut().filter_map(|w| w.tel.take()).collect();
        crate::telemetry::flush_sharded(&dir, wall_ns, run_events, &bufs);
    }

    // Final residual merge: any deposits the in-run cadence left behind,
    // plus each worker's buckets/probes since its last deposit, merged
    // with an unbounded cutoff.
    let mut sink = workers[0].sink.take().expect("worker 0 owns the sink");
    for (s, w) in workers.iter_mut().enumerate() {
        {
            let mut d = shared.deposits[s]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sink.held_buckets[s].append(&mut d.buckets);
            sink.held_probes[s].append(&mut d.probes);
        }
        sink.held_buckets[s].extend(w.core.trace.take_log());
        if let Some(buf) = &w.probe_buf {
            sink.held_probes[s].append(&mut buf.lock().unwrap_or_else(PoisonError::into_inner));
        }
    }
    merge_held(&mut sink, u64::MAX);
    sim.core.trace = sink.trace;
    sim.core.probe = sink.probe;

    // Reassemble the master simulator from the worker slices.
    let mut stop = false;
    let mut events = sim.core.events_dispatched;
    let mut end = sim.core.now;
    for w in workers.iter() {
        end = end.max(w.core.now);
    }
    for mut w in workers {
        stop |= w.core.stop_requested;
        events += w.core.events_dispatched;
        // Defensive: mid-run spawn panics under sharding, but if a worker
        // core ever advanced its pid counter, don't hand out stale ids.
        sim.core.next_pid = sim.core.next_pid.max(w.core.next_pid);
        for i in 0..n_procs {
            if owner_pid[i] == w.my {
                sim.procs[i] = w.procs[i].take();
                std::mem::swap(&mut sim.core.rngs[i], &mut w.core.rngs[i]);
                sim.core.push_counts[i + 1] = w.core.push_counts[i + 1];
            }
        }
        for j in 0..n_res {
            if owner_rid[j] == w.my {
                std::mem::swap(&mut sim.core.resources[j], &mut w.core.resources[j]);
            }
        }
        // Events beyond the horizon stay pending, back on the global queue.
        while let Some(ev) = w.core.queue.pop() {
            sim.core.queue.push(ev.time, ev.seq, ev.target, ev.msg);
        }
    }
    // In-flight pair batches nobody drained before exit stay pending too.
    for slot in pairs.iter() {
        let mut v = slot.0.lock().unwrap_or_else(PoisonError::into_inner);
        for ev in v.drain(..) {
            sim.core.queue.push(ev.time, ev.key, ev.target, ev.msg);
        }
    }
    sim.core.stop_requested = stop;
    sim.core.events_dispatched = events;
    // Mirror the sequential return-time rules: a horizon break reports the
    // horizon; `stop` and the event cap report the last dispatched instant.
    if !stop {
        if let Some(t) = sim.core.queue.peek_time() {
            if t.as_nanos() > shared.horizon {
                end = SimTime::from_nanos(shared.horizon);
            }
        }
    }
    sim.core.now = end;
    sim.core.now
}

/// One worker's round loop; returns when the run is globally finished or
/// the barrier is poisoned by a panicking peer.
fn worker_loop(w: &mut Worker, sh: &Shared) {
    let shards = sh.deposits.len();
    let my = w.my;
    let mut round: u64 = 0;
    let mut next_buf = vec![u64::MAX; shards];
    let mut sent_before: u64 = 0;
    loop {
        // Telemetry stopwatch for this round, off the hot path: one
        // `Instant::now` per protocol step, only when telemetry is on,
        // recorded into this worker's private buffer.
        let mut clock = w
            .tel
            .as_ref()
            .map(|t| crate::telemetry::RoundClock::start(t.epoch));
        if !sh.barrier.wait() {
            return;
        }
        if let Some(c) = clock.as_mut() {
            c.barrier();
        }
        let p = (round & 1) as usize;
        // Effective earliest pending time per shard: the published local
        // minimum folded with the minima of batches still in flight
        // toward it. Every worker reads the same parity-`p` values (all
        // written last round, sequenced by the barrier), so every worker
        // computes the same `next_buf`, the same exit decision and —
        // through `reach` — a deterministic window, regardless of
        // whether any in-flight batch was already picked up.
        let mut min_next = u64::MAX;
        let mut stop = false;
        let mut total = sh.base_events;
        for (d, buf) in next_buf.iter_mut().enumerate() {
            let mut n = sh.next[p][d].load(Ordering::Relaxed);
            for s in 0..shards {
                n = n.min(sh.sent_min[p][s * shards + d].load(Ordering::Relaxed));
            }
            *buf = n;
            min_next = min_next.min(n);
            stop |= sh.stop[p][d].load(Ordering::Relaxed);
            total += sh.events[p][d].load(Ordering::Relaxed);
        }
        // Every worker leaves on the same round; the exit round itself
        // is not logged (telemetry) and not merged (the caller's final
        // merge picks up the remainder).
        if stop || total >= sh.max_events || min_next == u64::MAX || min_next > sh.horizon {
            return;
        }
        // Worker 0 folds the deposits of the last FLUSH_EVERY rounds
        // while its peers dispatch this round; the cutoff guarantees no
        // later deposit can add entries below what it finalizes.
        if my == 0 && round > 0 && round % FLUSH_EVERY == 0 {
            merge_deposits(
                sh,
                w.sink.as_mut().expect("worker 0 owns the sink"),
                min_next,
            );
        }
        if let Some(c) = clock.as_mut() {
            c.merged();
        }
        // This shard's ragged window: nothing can arrive below
        // `min over s of next(s) + reach(s, my)` — including chains that
        // leave `my` and come back (the `s == my` term).
        let mut w_end = u64::MAX;
        for (s, &n) in next_buf.iter().enumerate() {
            w_end = w_end.min(n.saturating_add(sh.reach[s][my]));
        }
        w_end = w_end.min(sh.horizon.saturating_add(1));
        // Drain the batches peers flushed toward this shard.
        let mut recv = 0u64;
        {
            let route = w.core.route.as_ref().expect("sharded core has a route");
            for s in 0..shards {
                if s == my {
                    continue;
                }
                let mut slot = route.pairs[s * shards + my]
                    .0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                recv += slot.len() as u64;
                for ev in slot.drain(..) {
                    w.core.queue.push(ev.time, ev.key, ev.target, ev.msg);
                }
            }
        }
        if let Some(c) = clock.as_mut() {
            c.drained();
        }
        // Dispatch every local event strictly below the window, exactly
        // as the sequential kernel would.
        let before = w.core.events_dispatched;
        while let Some(t) = w.core.queue.peek_time() {
            if t.as_nanos() >= w_end {
                break;
            }
            let ev = w.core.queue.pop().expect("peeked event exists");
            debug_assert!(ev.time >= w.core.now, "time must not run backwards");
            w.core.now = ev.time;
            w.core.events_dispatched += 1;
            w.core.trace.record(ev.time, ev.target);
            if let Some(probe) = w.core.probe.as_mut() {
                probe.begin_dispatch(ev.time, ev.seq);
                probe.record(ProbeEvent::Dispatch {
                    time: ev.time,
                    target: ev.target,
                });
            }
            let proc = w
                .procs
                .get_mut(ev.target.0)
                .unwrap_or_else(|| panic!("message to unknown process {:?}", ev.target))
                .as_deref_mut()
                .expect("event routed to this shard targets a process it hosts");
            let mut ctx = Ctx {
                core: &mut w.core,
                pid: ev.target,
            };
            proc.on_message(&mut ctx, ev.msg);
            if w.core.stop_requested {
                break;
            }
        }
        if let Some(c) = clock.as_mut() {
            c.dispatched();
        }
        // Publish next-round state into parity `q` and flush the staged
        // batches — one lock per non-empty pair, the round's only
        // cross-thread writes besides the barrier itself.
        let q = p ^ 1;
        let next = w.core.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
        sh.next[q][my].store(next, Ordering::Relaxed);
        sh.stop[q][my].store(w.core.stop_requested, Ordering::Relaxed);
        sh.events[q][my].store(w.core.events_dispatched, Ordering::Relaxed);
        {
            let route = w.core.route.as_mut().expect("sharded core has a route");
            for d in 0..shards {
                if d == my {
                    continue;
                }
                sh.sent_min[q][my * shards + d].store(route.staged_min[d], Ordering::Relaxed);
                route.staged_min[d] = u64::MAX;
                if !route.staged[d].is_empty() {
                    route.pairs[my * shards + d]
                        .0
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .append(&mut route.staged[d]);
                }
            }
        }
        // Deposit the accumulated digest buckets and probe stream on the
        // flush cadence; worker 0 merges them behind the next cutoff.
        if (round + 1) % FLUSH_EVERY == 0 {
            let mut d = sh.deposits[my]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            d.buckets.extend(w.core.trace.take_log());
            if let Some(buf) = &w.probe_buf {
                d.probes
                    .append(&mut buf.lock().unwrap_or_else(PoisonError::into_inner));
            }
        }
        if let Some(c) = clock.take() {
            let sent_now = w.core.route.as_ref().map_or(0, |r| r.sent);
            let sample = c.finish(
                w_end.saturating_sub(min_next),
                w.core.events_dispatched - before,
                sent_now - sent_before,
                recv,
            );
            sent_before = sent_now;
            w.tel
                .as_mut()
                .expect("clock implies a telemetry buffer")
                .rounds
                .push(sample);
        }
        round += 1;
    }
}

/// Drain every shard's deposit into the held-back streams, then merge
/// everything strictly below `cutoff` into the master digest/probe.
fn merge_deposits(sh: &Shared, sink: &mut Sink, cutoff: u64) {
    for (s, dep) in sh.deposits.iter().enumerate() {
        let mut d = dep.lock().unwrap_or_else(PoisonError::into_inner);
        sink.held_buckets[s].append(&mut d.buckets);
        sink.held_probes[s].append(&mut d.probes);
    }
    merge_held(sink, cutoff);
}

/// Merge the held per-shard streams' prefixes below `cutoff` (exclusive)
/// into the master digest and probe, keeping the remainders held. Each
/// held stream is nondecreasing in time, successive cutoffs are
/// nondecreasing, and everything merged is final — no later dispatch can
/// produce an entry below a cutoff that was once a global minimum — so
/// `absorb`'s nondecreasing-time requirement holds across calls.
fn merge_held(sink: &mut Sink, cutoff: u64) {
    let shards = sink.held_buckets.len();
    // Digest buckets: k-way merge by time. Each shard's stream is
    // strictly increasing in time, so there is at most one bucket per
    // shard per instant; `absorb` folds same-instant buckets from
    // different shards into one, which is where the commutative bucket
    // hash pays off.
    let mut logs: Vec<Vec<Bucket>> = Vec::with_capacity(shards);
    for held in sink.held_buckets.iter_mut() {
        let at = held.partition_point(|b| b.time.as_nanos() < cutoff);
        let rest = held.split_off(at);
        logs.push(std::mem::replace(held, rest));
    }
    let mut idx = vec![0usize; shards];
    loop {
        let mut t_min: Option<SimTime> = None;
        for s in 0..shards {
            if let Some(b) = logs[s].get(idx[s]) {
                t_min = Some(t_min.map_or(b.time, |t| t.min(b.time)));
            }
        }
        let Some(t) = t_min else { break };
        for s in 0..shards {
            if logs[s].get(idx[s]).is_some_and(|b| b.time == t) {
                sink.trace.absorb(&logs[s][idx[s]]);
                idx[s] += 1;
            }
        }
    }
    // Probe stream: k-way merge by dispatch key `(time, seq)` — globally
    // unique and equal to the sequential dispatch order — so the master
    // probe sees the exact event stream a sequential run would produce.
    if let Some(probe) = sink.probe.as_mut() {
        let mut fronts: Vec<Vec<(SimTime, u64, ProbeEvent)>> = Vec::with_capacity(shards);
        for held in sink.held_probes.iter_mut() {
            let at = held.partition_point(|(t, _, _)| t.as_nanos() < cutoff);
            let rest = held.split_off(at);
            fronts.push(std::mem::replace(held, rest));
        }
        let mut streams: Vec<_> = fronts
            .into_iter()
            .map(|v| v.into_iter().peekable())
            .collect();
        loop {
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (s, stream) in streams.iter_mut().enumerate() {
                if let Some((t, k, _)) = stream.peek() {
                    if best.map_or(true, |(bt, bk, _)| (*t, *k) < (bt, bk)) {
                        best = Some((*t, *k, s));
                    }
                }
            }
            let Some((t, k, s)) = best else { break };
            while streams[s]
                .peek()
                .is_some_and(|(et, ek, _)| (*et, *ek) == (t, k))
            {
                let (_, _, ev) = streams[s].next().expect("peeked entry exists");
                probe.record(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn shard_count_parsing_is_strict() {
        assert_eq!(parse_shard_count("1"), Ok(1));
        assert_eq!(parse_shard_count(" 4 "), Ok(4));
        assert_eq!(
            parse_shard_count("0"),
            Err("HPSOCK_SHARDS must be >= 1, got 0 (unset it for the sequential kernel)".into())
        );
        assert_eq!(
            parse_shard_count("-2"),
            Err("HPSOCK_SHARDS must be a positive integer, got \"-2\"".into())
        );
        assert_eq!(
            parse_shard_count("both"),
            Err("HPSOCK_SHARDS must be a positive integer, got \"both\"".into())
        );
        assert_eq!(
            parse_shard_count(""),
            Err("HPSOCK_SHARDS must be a positive integer, got \"\"".into())
        );
    }

    #[test]
    fn with_shard_count_overrides_and_restores() {
        // Runs on this test's own thread: no env mutation, no cross-test
        // interference.
        assert_eq!(shard_override(), None);
        let n = with_shard_count(3, || {
            assert_eq!(shard_override(), Some(3));
            // Nesting wins over the outer override and restores it.
            with_shard_count(2, configured_shards)
        });
        assert_eq!(n, 2);
        assert_eq!(shard_override(), None);
        // Restored on unwind too.
        let r = std::panic::catch_unwind(|| with_shard_count(5, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(shard_override(), None);
    }

    #[test]
    fn shard_count_clamps_to_topology_capacity() {
        assert_eq!(clamp_shards(4, 2, "a 2-node cluster"), 2);
        assert_eq!(clamp_shards(2, 2, "a 2-node cluster"), 2);
        assert_eq!(clamp_shards(1, 7, "the pipeline"), 1);
        // A degenerate topology (no usable split) still yields a runnable
        // count of one rather than zero.
        assert_eq!(clamp_shards(3, 0, "an empty cluster"), 1);
    }

    #[test]
    fn reach_closure_covers_multi_hop_chains_and_cycles() {
        // 0 → 1 (10), 1 → 2 (20), 2 → 0 (5); no direct 0 → 2 link.
        let m = u64::MAX;
        let la = vec![vec![m, 10, m], vec![m, m, 20], vec![5, m, m]];
        let r = reach_closure(&la);
        assert_eq!(r[0][1], 10, "direct hop");
        assert_eq!(r[0][2], 30, "two-hop chain 0→1→2");
        assert_eq!(r[1][0], 25, "two-hop chain 1→2→0");
        assert_eq!(r[0][0], 35, "cheapest cycle 0→1→2→0");
        assert_eq!(r[1][1], 35);
        assert_eq!(r[2][2], 35);
        // A disconnected pair stays unreachable.
        let la2 = vec![vec![m, 7], vec![m, m]];
        let r2 = reach_closure(&la2);
        assert_eq!(r2[0][1], 7);
        assert_eq!(r2[1][0], m);
        assert_eq!(r2[0][0], m, "no cycle without a return link");
        // Uniform all-pairs lookahead: one hop out, two hops back home.
        let la3 = vec![vec![m, 100], vec![100, m]];
        let r3 = reach_closure(&la3);
        assert_eq!(r3[0][1], 100);
        assert_eq!(r3[0][0], 200);
    }

    /// An even split of pids across `shards` with a uniform `la`-ns
    /// lookahead between every shard pair.
    fn plan(
        shards: usize,
        la: u64,
        pid_to_shard: impl Fn(usize) -> usize + Send + Sync + 'static,
    ) -> ShardPlan {
        let lookahead = (0..shards)
            .map(|a| {
                (0..shards)
                    .map(|b| if a == b { u64::MAX } else { la })
                    .collect()
            })
            .collect();
        ShardPlan {
            shards,
            resolve_pid: Arc::new(move |pid: ProcessId| pid_to_shard(pid.0)),
            resolve_rid: Arc::new(|_| 0),
            lookahead: Arc::new(lookahead),
            describe_link: Arc::new(|a, b| format!("test link {a}->{b}")),
        }
    }

    /// A ring of processes, each forwarding with a fixed delay and using a
    /// per-process resource, with RNG-perturbed payloads.
    struct RingHop {
        nextp: ProcessId,
        cpu: ResourceId,
        hops_left: u32,
        heard: Vec<u64>,
    }

    impl Process for RingHop {
        fn name(&self) -> String {
            format!("ring-hop->{}", self.nextp.0)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            use rand::RngCore;
            match msg.downcast::<u64>() {
                Ok(v) => {
                    self.heard.push(v);
                    ctx.trace_tag(v);
                    if self.hops_left > 0 {
                        self.hops_left -= 1;
                        let jitter: u64 = ctx.rng().next_u64() % 100;
                        // Local work completes first, then the forward.
                        ctx.use_resource(self.cpu, Dur::nanos(250 + jitter), Message::new(()));
                        ctx.send_in(Dur::micros(10), self.nextp, Message::new(v + 1));
                    }
                }
                Err(_) => ctx.trace_tag(0xC0FFEE), // resource completion
            }
        }
    }

    /// Build a 4-process ring over `shards` shards (pid i -> shard i %
    /// shards), with one resource per process, and run it.
    fn run_ring(shards: usize) -> (u64, u64, u64, Vec<Vec<u64>>) {
        let mut sim = Sim::new(42);
        let n = 4;
        let cpus: Vec<ResourceId> = (0..n)
            .map(|i| sim.add_resource(format!("cpu{i}"), 1))
            .collect();
        let pids: Vec<ProcessId> = (0..n)
            .map(|i| {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % n),
                    cpu: cpus[i],
                    hops_left: 25,
                    heard: Vec::new(),
                }))
            })
            .collect();
        if shards > 1 {
            let k = shards;
            let mut p = plan(k, 10_000, move |pid| pid % k);
            // Resource i belongs with process i.
            p.resolve_rid = Arc::new(move |rid: ResourceId| rid.0 % k);
            sim.set_shard_plan(p);
        }
        sim.schedule_at(SimTime::ZERO, pids[0], Message::new(1u64));
        let end = sim.run();
        let heard = pids
            .iter()
            .map(|&p| sim.process::<RingHop>(p).unwrap().heard.clone())
            .collect();
        (
            end.as_nanos(),
            sim.trace_digest(),
            sim.events_dispatched(),
            heard,
        )
    }

    #[test]
    fn sharded_ring_matches_sequential() {
        let seq = run_ring(1);
        assert_eq!(run_ring(2), seq, "2 shards must replay the sequential run");
        assert_eq!(run_ring(4), seq, "4 shards must replay the sequential run");
    }

    /// A plan that leaves one or more shards without any process must
    /// still round-trip: empty shards publish `u64::MAX` forever, never
    /// dispatch, and must not stall or perturb the others.
    #[test]
    fn empty_shards_keep_digest_identity() {
        let run = |shards: usize, to_shard: fn(usize) -> usize| {
            let mut sim = Sim::new(42);
            let cpus: Vec<ResourceId> = (0..4)
                .map(|i| sim.add_resource(format!("cpu{i}"), 1))
                .collect();
            for (i, &cpu) in cpus.iter().enumerate() {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % 4),
                    cpu,
                    hops_left: 12,
                    heard: Vec::new(),
                }));
            }
            if shards > 1 {
                let mut p = plan(shards, 10_000, to_shard);
                p.resolve_rid = Arc::new(move |rid: ResourceId| to_shard(rid.0));
                sim.set_shard_plan(p);
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            sim.run();
            (sim.trace_digest(), sim.events_dispatched())
        };
        let seq = run(1, |_| 0);
        // 2 shards, everything on shard 0 — shard 1 is empty.
        assert_eq!(run(2, |_| 0), seq, "one empty shard of two");
        // 4 shards, pids split over shards 0/1 — shards 2 and 3 are empty.
        assert_eq!(run(4, |pid| pid % 2), seq, "two empty shards of four");
    }

    /// A scratch telemetry directory unique to this test, cleaned on drop.
    struct TelDir(std::path::PathBuf);
    impl TelDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("hpsock_shard_tel_{}_{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TelDir(dir)
        }
        fn read(&self, file: &str) -> String {
            std::fs::read_to_string(self.0.join(file))
                .unwrap_or_else(|e| panic!("telemetry file {file} missing: {e}"))
        }
    }
    impl Drop for TelDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// First `"key": <integer>` in a hand-written run_report.json (the
    /// top-level fields precede the per-worker array, so the first match
    /// is the run-level value).
    fn json_u64(json: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\": ");
        let at = json
            .find(&pat)
            .unwrap_or_else(|| panic!("no {key} in {json}"));
        json[at + pat.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("integer field")
    }

    /// Exactness of the telemetry accounting: the per-round `events`
    /// column of `shard_rounds.csv` sums to the run's dispatched-event
    /// count, every worker reports the same number of rounds, and
    /// cross-shard traffic is visible in the sent/recv columns.
    #[test]
    fn telemetry_round_events_sum_to_dispatched_events() {
        let tel = TelDir::new("sum");
        let (_, _, events, _) = crate::telemetry::with_telemetry_dir(Some(&tel.0), || run_ring(2));
        let csv = tel.read("shard_rounds.csv");
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("round,worker,window_ns,events,sent,recv,barrier_wait_ns,busy_ns,idle_frac"),
            "pinned CSV header"
        );
        let mut summed = 0u64;
        let (mut sent, mut recv) = (0u64, 0u64);
        let mut rounds_per_worker = std::collections::BTreeMap::<u64, u64>::new();
        for line in lines {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 9, "malformed row: {line}");
            *rounds_per_worker
                .entry(cols[1].parse().unwrap())
                .or_default() += 1;
            summed += cols[3].parse::<u64>().unwrap();
            sent += cols[4].parse::<u64>().unwrap();
            recv += cols[5].parse::<u64>().unwrap();
        }
        assert_eq!(summed, events, "CSV events sum to the dispatched total");
        assert!(sent > 0, "the ring routes cross-shard messages");
        assert!(recv > 0, "workers fold cross-shard messages back in");
        let counts: Vec<u64> = rounds_per_worker.values().copied().collect();
        assert_eq!(rounds_per_worker.len(), 2, "one lane per worker");
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "workers exit together, so they log the same round count: {counts:?}"
        );
        let report = tel.read("run_report.json");
        assert_eq!(json_u64(&report, "events"), events);
        assert_eq!(json_u64(&report, "shards"), 2);
        assert_eq!(json_u64(&report, "rounds"), counts[0]);
        assert!(!tel.read("shard_lanes.json").is_empty(), "lanes emitted");
    }

    /// Digest-identical runs agree on the run-report accounting: the same
    /// events total at 1/2/4 shards. (Round counts are *not* compared
    /// across shard counts: with ragged per-destination windows even a
    /// uniform lookahead yields partition-dependent window sequences —
    /// the self-cycle `reach` term depends on the shard graph.) The
    /// sequential report has no rounds to count and says so.
    #[test]
    fn telemetry_reports_agree_across_shard_counts() {
        let with_tel = |name: &str, shards: usize| {
            let tel = TelDir::new(name);
            let out = crate::telemetry::with_telemetry_dir(Some(&tel.0), || run_ring(shards));
            (out, tel.read("run_report.json"))
        };
        let (seq, seq_rep) = with_tel("seq", 1);
        let (two, two_rep) = with_tel("two", 2);
        let (four, four_rep) = with_tel("four", 4);
        assert_eq!(two, seq, "telemetry-on sharded run replays sequential");
        assert_eq!(four, seq);
        for rep in [&seq_rep, &two_rep, &four_rep] {
            assert_eq!(json_u64(rep, "events"), seq.2, "events agree: {rep}");
        }
        assert!(seq_rep.contains("\"mode\": \"sequential\""));
        assert_eq!(json_u64(&seq_rep, "rounds"), 0);
        assert!(json_u64(&two_rep, "rounds") > 0);
        assert!(json_u64(&four_rep, "rounds") > 0);
    }

    #[test]
    fn sharded_resources_carry_stats_back() {
        let stats = |shards: usize| {
            let mut sim = Sim::new(7);
            let cpus: Vec<ResourceId> = (0..2)
                .map(|i| sim.add_resource(format!("cpu{i}"), 1))
                .collect();
            for (i, &cpu) in cpus.iter().enumerate() {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % 2),
                    cpu,
                    hops_left: 10,
                    heard: Vec::new(),
                }));
            }
            if shards > 1 {
                let mut p = plan(2, 10_000, |pid| pid % 2);
                p.resolve_rid = Arc::new(|rid: ResourceId| rid.0 % 2);
                sim.set_shard_plan(p);
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            sim.run();
            (0..2)
                .map(|i| sim.resource(cpus[i]).busy_time().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(stats(2), stats(1));
    }

    /// Every probe event, rendered to text, must come back in the exact
    /// sequential order.
    #[test]
    fn sharded_probe_stream_is_byte_identical() {
        struct TextProbe {
            lines: Arc<Mutex<Vec<String>>>,
        }
        impl Probe for TextProbe {
            fn record(&mut self, ev: ProbeEvent) {
                self.lines.lock().unwrap().push(format!("{ev:?}"));
            }
        }
        let run = |shards: usize| {
            let lines = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new(3);
            sim.attach_probe(Box::new(TextProbe {
                lines: lines.clone(),
            }));
            let cpus: Vec<ResourceId> = (0..4)
                .map(|i| sim.add_resource(format!("cpu{i}"), 1))
                .collect();
            for (i, &cpu) in cpus.iter().enumerate() {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % 4),
                    cpu,
                    hops_left: 15,
                    heard: Vec::new(),
                }));
            }
            if shards > 1 {
                let k = shards;
                let mut p = plan(k, 10_000, move |pid| pid % k);
                p.resolve_rid = Arc::new(move |rid: ResourceId| rid.0 % k);
                sim.set_shard_plan(p);
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            sim.run();
            drop(sim);
            Arc::try_unwrap(lines).unwrap().into_inner().unwrap()
        };
        let seq = run(1);
        assert!(!seq.is_empty());
        assert_eq!(run(2), seq);
        assert_eq!(run(4), seq);
    }

    #[test]
    fn run_until_resumes_across_sharded_rounds() {
        let run = |shards: usize| {
            let mut sim = Sim::new(11);
            let cpus: Vec<ResourceId> = (0..2)
                .map(|i| sim.add_resource(format!("cpu{i}"), 1))
                .collect();
            for (i, &cpu) in cpus.iter().enumerate() {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % 2),
                    cpu,
                    hops_left: 20,
                    heard: Vec::new(),
                }));
            }
            if shards > 1 {
                let mut p = plan(2, 10_000, |pid| pid % 2);
                p.resolve_rid = Arc::new(|rid: ResourceId| rid.0 % 2);
                sim.set_shard_plan(p);
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            let mid = sim.run_until(SimTime::from_nanos(55_000));
            let mid_events = sim.events_dispatched();
            let end = sim.run();
            (
                mid.as_nanos(),
                mid_events,
                end.as_nanos(),
                sim.trace_digest(),
                sim.events_dispatched(),
            )
        };
        let seq = run(1);
        assert_eq!(seq.0, 55_000, "run_until reports the horizon");
        assert_eq!(run(2), seq);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undersized_cross_shard_delay_panics() {
        struct Eager {
            peer: ProcessId,
        }
        impl Process for Eager {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                // 1 ns is far below the 10 us the plan promised.
                ctx.send_in(Dur::nanos(1), self.peer, Message::new(()));
            }
        }
        struct SinkProc;
        impl Process for SinkProc {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
        }
        let mut sim = Sim::new(0);
        let b = ProcessId(1);
        sim.add_process(Box::new(Eager { peer: b }));
        sim.add_process(Box::new(SinkProc));
        sim.set_shard_plan(plan(2, 10_000, |pid| pid % 2));
        sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(()));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "no network link between shards")]
    fn unlinked_shards_cannot_exchange_events() {
        struct Eager {
            peer: ProcessId,
        }
        impl Process for Eager {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                ctx.send_in(Dur::micros(50), self.peer, Message::new(()));
            }
        }
        struct SinkProc;
        impl Process for SinkProc {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
        }
        let mut sim = Sim::new(0);
        let b = ProcessId(1);
        sim.add_process(Box::new(Eager { peer: b }));
        sim.add_process(Box::new(SinkProc));
        sim.set_shard_plan(plan(2, u64::MAX, |pid| pid % 2));
        sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(()));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "called Ctx::spawn during a sharded run")]
    fn spawn_mid_run_panics_under_sharding() {
        struct Spawner;
        impl Process for Spawner {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                struct Late;
                impl Process for Late {
                    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
                }
                ctx.spawn(Box::new(Late));
            }
        }
        struct Quiet;
        impl Process for Quiet {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
        }
        let mut sim = Sim::new(0);
        sim.add_process(Box::new(Spawner));
        sim.add_process(Box::new(Quiet));
        sim.set_shard_plan(plan(2, 10_000, |pid| pid % 2));
        sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(()));
        sim.run();
    }

    #[test]
    fn zero_diagonal_lookahead_is_accepted() {
        // The diagonal is documented as ignored, so a plan that fills it
        // with 0 (a natural encoding of same-shard "links") must pass the
        // positivity check that guards real cross-shard entries — and run
        // to the same result as the sequential kernel.
        let run = |with_plan: bool| {
            let mut sim = Sim::new(42);
            let cpus: Vec<ResourceId> = (0..2)
                .map(|i| sim.add_resource(format!("cpu{i}"), 1))
                .collect();
            for (i, &cpu) in cpus.iter().enumerate() {
                sim.add_process(Box::new(RingHop {
                    nextp: ProcessId((i + 1) % 2),
                    cpu,
                    hops_left: 5,
                    heard: Vec::new(),
                }));
            }
            if with_plan {
                let mut p = plan(2, 10_000, |pid| pid % 2);
                let mut la = (*p.lookahead).clone();
                la[0][0] = 0;
                la[1][1] = 0;
                p.lookahead = Arc::new(la);
                p.resolve_rid = Arc::new(|rid: ResourceId| rid.0 % 2);
                sim.set_shard_plan(p);
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            sim.run();
            (sim.trace_digest(), sim.events_dispatched())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stop_halts_a_sharded_run() {
        struct Stopper {
            at: u32,
            seen: u32,
        }
        impl Process for Stopper {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                self.seen += 1;
                if self.seen >= self.at {
                    ctx.stop();
                } else {
                    ctx.send_self_in(Dur::micros(20), Message::new(()));
                }
            }
        }
        struct Chatter;
        impl Process for Chatter {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                ctx.send_self_in(Dur::micros(20), Message::new(()));
            }
        }
        let mut sim = Sim::new(0);
        sim.add_process(Box::new(Stopper { at: 5, seen: 0 }));
        sim.add_process(Box::new(Chatter));
        sim.set_shard_plan(plan(2, 10_000, |pid| pid % 2));
        sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(()));
        sim.schedule_at(SimTime::ZERO, ProcessId(1), Message::new(()));
        sim.run();
        // Stop lands at round granularity: the run halted (Chatter would
        // otherwise loop forever) shortly after the stopper's 5th message.
        let s: &Stopper = sim.process(ProcessId(0)).unwrap();
        assert_eq!(s.seen, 5);
    }

    /// `stop()` fired mid-round on a shard other than 0 pins full digest
    /// identity across 1/2/4 shards: the stopper always queues its next
    /// beat *before* deciding to stop, so a pending self-send exists at
    /// stop time and the digest proves it was never dispatched — on any
    /// shard count — while the stop propagates from shard 1 to everyone.
    #[test]
    fn mid_round_stop_on_nonzero_shard_keeps_digest_identity() {
        struct EagerStopper {
            at: u32,
            seen: u32,
        }
        impl Process for EagerStopper {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                self.seen += 1;
                ctx.trace_tag(0x5704 + u64::from(self.seen));
                // Queue the next beat first; the stop must strand it.
                ctx.send_self_in(Dur::micros(20), Message::new(()));
                if self.seen >= self.at {
                    ctx.stop();
                }
            }
        }
        struct Pinger {
            left: u32,
        }
        impl Process for Pinger {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                ctx.trace_tag(0x9100 + u64::from(self.left));
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send_self_in(Dur::micros(15), Message::new(()));
                }
            }
        }
        let run = |shards: usize| {
            let mut sim = Sim::new(9);
            // pid 1 is the stopper: on shard 1 (≠ 0) for both pid % 2
            // and pid % 4 partitions. The pingers go quiet at 60 µs,
            // before the stop lands at 80 µs.
            for pid in 0..4 {
                if pid == 1 {
                    sim.add_process(Box::new(EagerStopper { at: 5, seen: 0 }));
                } else {
                    sim.add_process(Box::new(Pinger { left: 4 }));
                }
            }
            if shards > 1 {
                let k = shards;
                sim.set_shard_plan(plan(k, 10_000, move |pid| pid % k));
            }
            for pid in 0..4 {
                sim.schedule_at(SimTime::ZERO, ProcessId(pid), Message::new(()));
            }
            let end = sim.run();
            let s: &EagerStopper = sim.process(ProcessId(1)).unwrap();
            assert_eq!(s.seen, 5, "stop fired on the 5th beat");
            (end.as_nanos(), sim.trace_digest(), sim.events_dispatched())
        };
        let seq = run(1);
        assert_eq!(run(2), seq, "stop from shard 1 of 2 replays sequential");
        assert_eq!(run(4), seq, "stop from shard 1 of 4 replays sequential");
    }

    #[test]
    fn single_shard_plan_stays_on_the_sequential_path() {
        let digest = |with_plan: bool| {
            let mut sim = Sim::new(5);
            let cpu = sim.add_resource("cpu", 1);
            sim.add_process(Box::new(RingHop {
                nextp: ProcessId(0),
                cpu,
                hops_left: 8,
                heard: Vec::new(),
            }));
            if with_plan {
                sim.set_shard_plan(plan(1, 10_000, |_| 0));
            }
            sim.schedule_at(SimTime::ZERO, ProcessId(0), Message::new(1u64));
            sim.run();
            (sim.trace_digest(), sim.events_dispatched())
        };
        assert_eq!(digest(true), digest(false));
    }
}
