//! Allocation-free event payloads.
//!
//! [`Payload`] is a type-erased container with the same role the old
//! `Box<dyn Any + Send>` message type played, minus the per-event heap
//! traffic on the hot path:
//!
//! * values of at most [`INLINE_BYTES`] bytes (alignment ≤ 8) are stored
//!   **inline** — no allocation at all. This covers every kernel-level
//!   message in the workspace (`NetCmd::Consumed`, the network engine's
//!   internal `Ev` variants, filter control messages, unit payloads);
//! * larger values up to [`SLOT_BYTES`] bytes (alignment ≤ 16) go into a
//!   **pooled slot** recycled through a thread-local free list, so steady
//!   state costs no allocator calls either (`Delivery`, `ComputeDone`);
//! * anything bigger falls back to a plain `Box`, preserving generality.
//!
//! The layout is two words beyond the inline buffer-less minimum: a
//! 24-byte buffer holding the value itself (inline), the slot pointer
//! (pooled) or the `Box<dyn Any + Send>` (boxed), plus one static vtable
//! pointer carrying the storage kind, type id and drop glue. A whole
//! [`Payload`] is therefore 32 bytes — it travels *inside* the event
//! queue's entries rather than behind them.
//!
//! The storage class is a pure function of the payload's type, never of
//! its value, and is invisible to receivers: `downcast`/`downcast_ref`
//! behave identically across all three classes, which is what keeps the
//! simulation trace independent of storage (pinned by the
//! `digest_equivalence` tests).

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::any::{Any, TypeId};
use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::{align_of, needs_drop, size_of, ManuallyDrop, MaybeUninit};
use std::ptr::NonNull;

/// Largest payload stored inline (alignment up to 8).
pub const INLINE_BYTES: usize = 24;
const INLINE_WORDS: usize = INLINE_BYTES / 8;

/// Pooled-slot size; payloads up to this (alignment ≤ [`SLOT_ALIGN`]) are
/// carried in recycled slots instead of fresh boxes.
pub const SLOT_BYTES: usize = 128;
/// Pooled-slot alignment.
pub const SLOT_ALIGN: usize = 16;

/// Most free slots a thread keeps cached; beyond this they are freed.
const POOL_CAP: usize = 256;

/// How the buffer is interpreted.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// The value lives in the buffer.
    Inline,
    /// The buffer holds a `NonNull<u8>` to a pooled slot with the value.
    Pooled,
    /// The buffer holds a `Box<dyn Any + Send>` with the value.
    Boxed,
}

/// Erased per-type operations; one static instance per (type, kind).
struct Vt {
    kind: Kind,
    /// Type id of the contained value; takes the buffer pointer so the
    /// boxed vtable (shared across all types) can ask the box.
    type_id: fn(*const u8) -> TypeId,
    /// `drop_in_place` for the value (inline/pooled kinds); `None` when
    /// the type has no drop glue, so trivial payloads drop branch-only.
    drop: Option<unsafe fn(*mut u8)>,
}

unsafe fn drop_erased<T>(p: *mut u8) {
    std::ptr::drop_in_place(p.cast::<T>());
}

fn type_id_static<T: Any>(_buf: *const u8) -> TypeId {
    TypeId::of::<T>()
}

/// For boxed payloads the concrete type may be unknown (adopted via
/// [`Payload::from_box`]); ask the box itself.
fn type_id_boxed(buf: *const u8) -> TypeId {
    unsafe { (**buf.cast::<Box<dyn Any + Send>>()).type_id() }
}

struct InlineVt<T: 'static>(PhantomData<T>);
impl<T: Any> InlineVt<T> {
    const VT: Vt = Vt {
        kind: Kind::Inline,
        type_id: type_id_static::<T>,
        drop: if needs_drop::<T>() {
            Some(drop_erased::<T>)
        } else {
            None
        },
    };
}

struct PooledVt<T: 'static>(PhantomData<T>);
impl<T: Any> PooledVt<T> {
    const VT: Vt = Vt {
        kind: Kind::Pooled,
        type_id: type_id_static::<T>,
        drop: if needs_drop::<T>() {
            Some(drop_erased::<T>)
        } else {
            None
        },
    };
}

/// Shared by every boxed payload; the box carries its own drop glue.
static BOXED_VT: Vt = Vt {
    kind: Kind::Boxed,
    type_id: type_id_boxed,
    drop: None,
};

fn slot_layout() -> Layout {
    Layout::from_size_align(SLOT_BYTES, SLOT_ALIGN).expect("valid slot layout")
}

/// Per-thread free list of pooled slots, intrusive: a free slot's first
/// eight bytes hold the next free slot's pointer, so take/return are a
/// couple of loads and stores with no container bookkeeping.
struct Pool {
    head: Cell<Option<NonNull<u8>>>,
    len: Cell<usize>,
}

std::thread_local! {
    /// Free pooled slots for this thread. Slots migrate between threads
    /// inside payloads and come back to whichever thread drops them; the
    /// layout is fixed, so cross-thread recycling is sound. Slots still on
    /// the list at thread exit are leaked (as any thread-cached allocator
    /// free list would be); call [`trim_pool`] first to release them.
    static POOL: Pool = const {
        Pool {
            head: Cell::new(None),
            len: Cell::new(0),
        }
    };
}

fn alloc_slot() -> NonNull<u8> {
    let layout = slot_layout();
    let ptr = unsafe { alloc(layout) };
    NonNull::new(ptr).unwrap_or_else(|| handle_alloc_error(layout))
}

fn pool_take() -> NonNull<u8> {
    POOL.try_with(|p| match p.head.get() {
        Some(slot) => {
            let next = unsafe { slot.as_ptr().cast::<Option<NonNull<u8>>>().read() };
            p.head.set(next);
            p.len.set(p.len.get() - 1);
            Some(slot)
        }
        None => None,
    })
    .ok()
    .flatten()
    .unwrap_or_else(alloc_slot)
}

fn pool_return(ptr: NonNull<u8>) {
    let kept = POOL
        .try_with(|p| {
            if p.len.get() < POOL_CAP {
                unsafe {
                    ptr.as_ptr()
                        .cast::<Option<NonNull<u8>>>()
                        .write(p.head.get())
                };
                p.head.set(Some(ptr));
                p.len.set(p.len.get() + 1);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if !kept {
        unsafe { dealloc(ptr.as_ptr(), slot_layout()) };
    }
}

/// Number of free pooled slots cached by this thread.
pub fn pooled_free_slots() -> usize {
    POOL.try_with(|p| p.len.get()).unwrap_or(0)
}

/// Free every pooled slot cached by this thread.
pub fn trim_pool() {
    let _ = POOL.try_with(|p| {
        while let Some(slot) = p.head.get() {
            let next = unsafe { slot.as_ptr().cast::<Option<NonNull<u8>>>().read() };
            unsafe { dealloc(slot.as_ptr(), slot_layout()) };
            p.head.set(next);
        }
        p.len.set(0);
    });
}

/// A type-erased, `Send` message payload (see module docs).
pub struct Payload {
    buf: [MaybeUninit<u64>; INLINE_WORDS],
    vt: &'static Vt,
    /// `Payload` must be `Send` but not `Sync` (like `Box<dyn Any + Send>`:
    /// the value is `Send`, nothing promises it is `Sync`).
    _marker: PhantomData<Box<dyn Any + Send>>,
}

// Sound: every constructor requires the contained value be `Send`, and a
// pooled slot's dealloc path is thread-independent (fixed layout).
// `buf` may conceal raw pointers, but ownership always moves with the
// payload. The PhantomData keeps the auto-!Sync of the old box type.
unsafe impl Send for Payload {}

/// Which storage class a payload landed in; exposed for tests and the
/// digest-equivalence suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Stored in the event itself.
    Inline,
    /// Stored in a recycled pool slot.
    Pooled,
    /// Stored in a dedicated heap allocation.
    Boxed,
}

impl Payload {
    #[inline]
    fn from_parts<S>(value: S, vt: &'static Vt) -> Payload {
        debug_assert!(size_of::<S>() <= INLINE_BYTES && align_of::<S>() <= 8);
        let mut buf = [MaybeUninit::<u64>::uninit(); INLINE_WORDS];
        unsafe { buf.as_mut_ptr().cast::<S>().write(value) };
        Payload {
            buf,
            vt,
            _marker: PhantomData,
        }
    }

    /// Wrap `value`, choosing inline, pooled or boxed storage by its size
    /// and alignment.
    #[inline]
    pub fn new<T: Any + Send>(value: T) -> Payload {
        if size_of::<T>() <= INLINE_BYTES && align_of::<T>() <= 8 {
            Payload::from_parts(value, &InlineVt::<T>::VT)
        } else if size_of::<T>() <= SLOT_BYTES && align_of::<T>() <= SLOT_ALIGN {
            let ptr = pool_take();
            unsafe { ptr.as_ptr().cast::<T>().write(value) };
            Payload::from_parts(ptr, &PooledVt::<T>::VT)
        } else {
            Payload::boxed(value)
        }
    }

    /// Wrap `value` in boxed storage unconditionally. Receivers cannot
    /// tell the difference; used by the digest-equivalence tests to prove
    /// storage class never affects a run.
    pub fn boxed<T: Any + Send>(value: T) -> Payload {
        Payload::from_box(Box::new(value))
    }

    /// Adopt an already-boxed payload without re-wrapping.
    pub fn from_box(value: Box<dyn Any + Send>) -> Payload {
        Payload::from_parts(value, &BOXED_VT)
    }

    /// The storage class this payload landed in.
    pub fn storage(&self) -> Storage {
        match self.vt.kind {
            Kind::Inline => Storage::Inline,
            Kind::Pooled => Storage::Pooled,
            Kind::Boxed => Storage::Boxed,
        }
    }

    #[inline]
    fn buf_ptr(&self) -> *const u8 {
        self.buf.as_ptr().cast()
    }

    /// `TypeId` of the contained value.
    #[inline]
    pub fn type_id_of(&self) -> TypeId {
        (self.vt.type_id)(self.buf_ptr())
    }

    /// Whether the contained value is a `T`.
    #[inline]
    pub fn is<T: Any>(&self) -> bool {
        // Vtable identity is conclusive when it matches (each vtable's
        // type_id fn pins its type); fall back to the dynamic check since
        // promoted statics may be duplicated across codegen units.
        std::ptr::eq(self.vt, &InlineVt::<T>::VT)
            || std::ptr::eq(self.vt, &PooledVt::<T>::VT)
            || self.type_id_of() == TypeId::of::<T>()
    }

    /// Take the value out as a `T`, or give the payload back on mismatch.
    #[inline]
    pub fn downcast<T: Any>(self) -> Result<T, Payload> {
        if !self.is::<T>() {
            return Err(self);
        }
        // The value is moved out manually below; suppress this wrapper's
        // own drop so it is not dropped twice.
        let this = ManuallyDrop::new(self);
        unsafe {
            match this.vt.kind {
                Kind::Inline => Ok(this.buf.as_ptr().cast::<T>().read()),
                Kind::Pooled => {
                    let slot = this.buf.as_ptr().cast::<NonNull<u8>>().read();
                    let value = slot.as_ptr().cast::<T>().read();
                    pool_return(slot);
                    Ok(value)
                }
                Kind::Boxed => {
                    let b = this.buf.as_ptr().cast::<Box<dyn Any + Send>>().read();
                    Ok(*b.downcast::<T>().expect("type id checked"))
                }
            }
        }
    }

    /// Borrow the value as a `T`, if it is one.
    #[inline]
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        if !self.is::<T>() {
            return None;
        }
        unsafe {
            Some(match self.vt.kind {
                Kind::Inline => &*self.buf.as_ptr().cast::<T>(),
                Kind::Pooled => {
                    let slot = self.buf.as_ptr().cast::<NonNull<u8>>().read();
                    &*slot.as_ptr().cast::<T>()
                }
                Kind::Boxed => (*self.buf.as_ptr().cast::<Box<dyn Any + Send>>())
                    .downcast_ref::<T>()
                    .expect("type id checked"),
            })
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        let p = self.buf.as_mut_ptr().cast::<u8>();
        match self.vt.kind {
            Kind::Inline => {
                if let Some(f) = self.vt.drop {
                    unsafe { f(p) };
                }
            }
            Kind::Pooled => unsafe {
                let slot = self.buf.as_ptr().cast::<NonNull<u8>>().read();
                if let Some(f) = self.vt.drop {
                    f(slot.as_ptr());
                }
                pool_return(slot);
            },
            Kind::Boxed => unsafe {
                drop(self.buf.as_ptr().cast::<Box<dyn Any + Send>>().read());
            },
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({:?})", self.storage())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn payload_is_two_words_plus_buffer() {
        assert_eq!(size_of::<Payload>(), INLINE_BYTES + size_of::<usize>());
    }

    #[test]
    fn small_values_are_inline() {
        let p = Payload::new(7u32);
        assert_eq!(p.storage(), Storage::Inline);
        assert!(p.is::<u32>());
        assert_eq!(p.downcast_ref::<u32>(), Some(&7));
        assert_eq!(p.downcast::<u32>().unwrap(), 7);
    }

    #[test]
    fn zero_sized_values_are_inline() {
        let p = Payload::new(());
        assert_eq!(p.storage(), Storage::Inline);
        p.downcast::<()>().unwrap();
    }

    #[test]
    fn exactly_inline_bytes_is_inline() {
        let p = Payload::new([0u64; INLINE_WORDS]);
        assert_eq!(p.storage(), Storage::Inline);
    }

    #[test]
    fn mid_size_values_are_pooled() {
        let v = [1u64; 6]; // 48 bytes: too big inline, fits a slot
        let p = Payload::new(v);
        assert_eq!(p.storage(), Storage::Pooled);
        assert_eq!(p.downcast_ref::<[u64; 6]>(), Some(&v));
        assert_eq!(p.downcast::<[u64; 6]>().unwrap(), v);
    }

    #[test]
    fn oversized_values_are_boxed() {
        let v = [2u64; 64]; // 512 bytes
        let p = Payload::new(v);
        assert_eq!(p.storage(), Storage::Boxed);
        assert_eq!(p.downcast::<[u64; 64]>().unwrap()[63], 2);
    }

    #[test]
    fn overaligned_values_are_boxed() {
        #[repr(align(64))]
        #[derive(PartialEq, Debug)]
        struct Aligned(u8);
        let p = Payload::new(Aligned(9));
        assert_eq!(p.storage(), Storage::Boxed);
        assert_eq!(p.downcast_ref::<Aligned>(), Some(&Aligned(9)));
        assert_eq!(p.downcast::<Aligned>().unwrap(), Aligned(9));
    }

    #[test]
    fn mismatched_downcast_returns_payload() {
        let p = Payload::new(1u8);
        let p = p.downcast::<u16>().unwrap_err();
        assert_eq!(p.downcast_ref::<u16>(), None);
        assert_eq!(p.downcast::<u8>().unwrap(), 1);
    }

    #[test]
    fn pool_recycles_slots() {
        trim_pool();
        assert_eq!(pooled_free_slots(), 0);
        drop(Payload::new([0u64; 6]));
        assert_eq!(pooled_free_slots(), 1);
        // The next pooled payload reuses the cached slot.
        let p = Payload::new([1u64; 6]);
        assert_eq!(pooled_free_slots(), 0);
        // downcast (move out) also returns the slot.
        let _ = p.downcast::<[u64; 6]>().unwrap();
        assert_eq!(pooled_free_slots(), 1);
        trim_pool();
        assert_eq!(pooled_free_slots(), 0);
    }

    /// Every storage class must run the contained value's destructor
    /// exactly once, on drop and never on `downcast`-by-value.
    #[test]
    fn drops_run_exactly_once() {
        struct Counted<const N: usize> {
            hits: Arc<AtomicUsize>,
            _pad: [u64; N],
        }
        impl<const N: usize> Drop for Counted<N> {
            fn drop(&mut self) {
                self.hits.fetch_add(1, Ordering::SeqCst);
            }
        }

        fn check<const N: usize>(expect: Storage) {
            let hits = Arc::new(AtomicUsize::new(0));
            let p = Payload::new(Counted::<N> {
                hits: Arc::clone(&hits),
                _pad: [0; N],
            });
            assert_eq!(p.storage(), expect);
            drop(p);
            assert_eq!(hits.load(Ordering::SeqCst), 1, "dropped payload");

            let p = Payload::new(Counted::<N> {
                hits: Arc::clone(&hits),
                _pad: [0; N],
            });
            let v = p.downcast::<Counted<N>>().unwrap();
            assert_eq!(hits.load(Ordering::SeqCst), 1, "moved out, not dropped");
            drop(v);
            assert_eq!(hits.load(Ordering::SeqCst), 2, "moved value drops once");
        }

        check::<1>(Storage::Inline);
        check::<8>(Storage::Pooled);
        check::<40>(Storage::Boxed);
    }

    #[test]
    fn payload_is_send_not_sync() {
        fn assert_send<T: Send>() {}
        assert_send::<Payload>();
        // (Sync is intentionally absent, like Box<dyn Any + Send>: a Send
        // value need not be Sync, so &Payload must not cross threads.)
        // A pooled payload may be dropped on another thread; its slot
        // joins that thread's pool.
        let p = Payload::new([3u64; 6]);
        std::thread::spawn(move || {
            assert_eq!(p.downcast_ref::<[u64; 6]>(), Some(&[3u64; 6]));
            drop(p);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn forced_boxed_storage_is_indistinguishable() {
        let a = Payload::new(11u64);
        let b = Payload::boxed(11u64);
        assert_eq!(a.storage(), Storage::Inline);
        assert_eq!(b.storage(), Storage::Boxed);
        assert!(b.is::<u64>());
        assert_eq!(a.downcast::<u64>().unwrap(), b.downcast::<u64>().unwrap());
    }

    #[test]
    fn from_box_adopts_without_rewrap() {
        let b: Box<dyn Any + Send> = Box::new(5u16);
        let p = Payload::from_box(b);
        assert_eq!(p.storage(), Storage::Boxed);
        assert_eq!(p.downcast_ref::<u16>(), Some(&5));
        assert_eq!(p.downcast::<u16>().unwrap(), 5);
    }
}
