//! Event-trace digest for determinism testing.
//!
//! Every dispatched event (time + target) and every application-supplied tag
//! is hashed and folded into the digest. Records are grouped into
//! per-timestamp *buckets*: within one virtual instant the per-record
//! hashes are combined commutatively (a wrapping sum plus a count), and
//! when time advances the closed bucket `(time, sum, count)` is folded
//! serially into a running multiply-xorshift chain. Across timestamps the
//! digest is therefore order-sensitive, while within a timestamp it is
//! order-*insensitive* — exactly the freedom the sharded executor needs to
//! merge equal-time buckets produced by different worker threads (see
//! `shard.rs`) and still land on the sequential run's digest. Two runs are
//! behaviourally identical iff their digests match. Only *simulated*
//! behaviour is folded — wall-clock readings (the `telemetry` module)
//! never enter a digest, which is what lets `HPSOCK_TELEMETRY` profile a
//! run without perturbing its identity.
//!
//! The digest sits on the kernel's per-event critical path, so the
//! per-record work is one strong scramble (splitmix-style finalizer) and a
//! wrapping add; the serial chain advances only once per distinct
//! timestamp.

use crate::kernel::ProcessId;
use crate::time::SimTime;

const SEED: u64 = 0xcbf2_9ce4_8422_2325;
const MIX_IN: u64 = 0x9E37_79B9_7F4A_7C15;
const MIX_STATE: u64 = 0xBF58_476D_1CE4_E5B9;
/// Salt distinguishing application tags from dispatch records.
const TAG_SALT: u64 = 0xA24B_AED4_963E_E407;

/// One closed per-timestamp group of records: the commutative combination
/// of every record hashed at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Bucket {
    pub time: SimTime,
    /// Wrapping sum of the scrambled per-record hashes.
    pub sum: u64,
    pub count: u64,
}

/// Full-avalanche scramble (splitmix64 finalizer): each record must be
/// strongly mixed *before* the commutative sum, so colliding sums require
/// colliding hashes.
#[inline]
fn scramble(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Running order-sensitive hash over the event trace.
#[derive(Debug, Clone)]
pub struct TraceDigest {
    /// Chain over closed buckets.
    state: u64,
    records: u64,
    bucket_time: SimTime,
    bucket_sum: u64,
    bucket_count: u64,
    /// Sharded ("logged") mode: closed buckets are appended here instead
    /// of folded, for a later deterministic cross-shard merge.
    log: Option<Vec<Bucket>>,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        TraceDigest {
            state: SEED,
            records: 0,
            bucket_time: SimTime::ZERO,
            bucket_sum: 0,
            bucket_count: 0,
            log: None,
        }
    }

    /// A digest that collects closed buckets instead of folding them,
    /// for one shard of a sharded run. Its buckets are later merged and
    /// absorbed into the master digest via [`TraceDigest::absorb`].
    pub(crate) fn new_logged() -> Self {
        TraceDigest {
            log: Some(Vec::new()),
            ..Self::new()
        }
    }

    #[inline]
    fn fold(state: &mut u64, word: u64) {
        // The word's own multiply is off the serial chain; the chain itself
        // is xor → xorshift → multiply per fold.
        let mut z = *state ^ word.wrapping_mul(MIX_IN);
        z ^= z >> 29;
        *state = z.wrapping_mul(MIX_STATE);
    }

    #[inline]
    fn fold_bucket(state: &mut u64, b: &Bucket) {
        // One chain advance per bucket, not three: in the common sequential
        // case every timestamp holds a single record, so this fold runs
        // once per dispatched event and its serial multiply chain is the
        // digest's dominant cost. The three fields are first combined into
        // one word — distinct odd multipliers keep time/sum/count from
        // cancelling each other, and `sum` is already a sum of
        // full-avalanche record hashes.
        let word = b
            .time
            .as_nanos()
            .wrapping_mul(MIX_STATE)
            .wrapping_add(b.count)
            ^ b.sum;
        Self::fold(state, word);
    }

    /// Close the pending bucket (fold it, or log it in sharded mode).
    fn close_bucket(&mut self) {
        if self.bucket_count == 0 {
            return;
        }
        let b = Bucket {
            time: self.bucket_time,
            sum: self.bucket_sum,
            count: self.bucket_count,
        };
        match &mut self.log {
            Some(log) => log.push(b),
            None => Self::fold_bucket(&mut self.state, &b),
        }
        self.bucket_sum = 0;
        self.bucket_count = 0;
    }

    /// Add one scrambled record hash to the bucket at `time`.
    #[inline]
    fn add(&mut self, time: SimTime, hash: u64) {
        if time != self.bucket_time {
            self.close_bucket();
            self.bucket_time = time;
        }
        self.bucket_sum = self.bucket_sum.wrapping_add(hash);
        self.bucket_count += 1;
        self.records += 1;
    }

    /// Fold one event dispatch into the digest.
    ///
    /// Time and target are combined into a single word (the target gets its
    /// own multiplier so `(t, p)` and `(p, t)` differ): this hash is on the
    /// critical path of every dispatched event.
    #[inline]
    pub fn record(&mut self, time: SimTime, target: ProcessId) {
        let word = time.as_nanos() ^ (target.0 as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.add(time, scramble(word.wrapping_mul(MIX_IN)));
    }

    /// Fold an application-level tag (e.g. a payload checksum) into the
    /// bucket of the timestamp currently being dispatched.
    #[inline]
    pub fn record_tag(&mut self, tag: u64) {
        let time = self.bucket_time;
        self.add(time, scramble(tag.wrapping_mul(MIX_IN) ^ TAG_SALT));
    }

    /// The digest value so far. Idempotent: the pending bucket is folded
    /// into a copy of the chain, never into the chain itself.
    pub fn value(&self) -> u64 {
        let mut state = self.state;
        if self.bucket_count > 0 {
            Self::fold_bucket(
                &mut state,
                &Bucket {
                    time: self.bucket_time,
                    sum: self.bucket_sum,
                    count: self.bucket_count,
                },
            );
        }
        state
    }

    /// Number of records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Drain the closed buckets of a logged digest (closing the pending
    /// one first). Buckets come out in nondecreasing time order because
    /// kernel time never runs backwards within a shard.
    pub(crate) fn take_log(&mut self) -> Vec<Bucket> {
        self.close_bucket();
        std::mem::take(self.log.as_mut().expect("take_log on a folding digest"))
    }

    /// Fold an externally produced bucket into this digest (master side of
    /// a sharded run). Equivalent to having recorded the bucket's records
    /// locally at `b.time`: a bucket at the pending bucket's time merges
    /// into it commutatively, a later one closes the pending bucket first,
    /// and the absorbed bucket itself stays pending — so the master's
    /// state matches a sequential digest record-for-record at every
    /// moment. Buckets must arrive in nondecreasing time order.
    pub(crate) fn absorb(&mut self, b: &Bucket) {
        debug_assert!(b.count > 0, "absorbing an empty bucket");
        if self.bucket_count > 0 && self.bucket_time == b.time {
            self.bucket_sum = self.bucket_sum.wrapping_add(b.sum);
        } else {
            self.close_bucket();
            self.bucket_time = b.time;
            self.bucket_sum = b.sum;
        }
        self.bucket_count += b.count;
        self.records += b.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_match() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        for i in 0..100 {
            a.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
            b.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.records(), 100);
    }

    #[test]
    fn order_matters_across_timestamps() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        a.record(SimTime::from_nanos(2), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(2), ProcessId(0));
        b.record(SimTime::from_nanos(1), ProcessId(0));
        assert_ne!(a.value(), b.value());
    }

    /// Within one virtual instant the digest is commutative — the property
    /// the sharded merge relies on.
    #[test]
    fn equal_time_records_commute() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(5), ProcessId(0));
        a.record(SimTime::from_nanos(5), ProcessId(1));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(5), ProcessId(1));
        b.record(SimTime::from_nanos(5), ProcessId(0));
        assert_eq!(a.value(), b.value());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn target_matters() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(1), ProcessId(1));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn tags_fold_in() {
        let mut a = TraceDigest::new();
        a.record_tag(42);
        let mut b = TraceDigest::new();
        b.record_tag(43);
        assert_ne!(a.value(), b.value());
        // A tag is not mistakable for a dispatch hashing to the same word.
        let mut c = TraceDigest::new();
        c.record(SimTime::ZERO, ProcessId(0));
        let mut d = TraceDigest::new();
        d.record_tag(0);
        assert_ne!(c.value(), d.value());
    }

    /// `value()` must not disturb the running state: reading the digest
    /// mid-run and then continuing gives the same final value as never
    /// reading it.
    #[test]
    fn value_is_idempotent() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        let mid = a.value();
        assert_eq!(mid, a.value());
        a.record(SimTime::from_nanos(1), ProcessId(1));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(1), ProcessId(0));
        b.record(SimTime::from_nanos(1), ProcessId(1));
        assert_eq!(a.value(), b.value());
    }

    /// Two shards' logs, two-pointer-merged by time and absorbed bucket by
    /// bucket, reproduce the interleaved sequential digest — including at
    /// instants where both shards recorded.
    #[test]
    fn split_logs_merge_to_the_sequential_value() {
        let t = SimTime::from_nanos;
        let mut seq = TraceDigest::new();
        let mut a = TraceDigest::new_logged();
        let mut b = TraceDigest::new_logged();
        for (time, pid, shard) in [
            (1u64, 0usize, 0u8),
            (1, 9, 1),
            (4, 1, 1),
            (9, 2, 0),
            (9, 3, 1),
            (9, 4, 0),
        ] {
            seq.record(t(time), ProcessId(pid));
            let d = if shard == 0 { &mut a } else { &mut b };
            d.record(t(time), ProcessId(pid));
        }
        let (la, lb) = (a.take_log(), b.take_log());
        let mut master = TraceDigest::new();
        let (mut i, mut j) = (0, 0);
        while i < la.len() || j < lb.len() {
            let take_a = j >= lb.len() || (i < la.len() && la[i].time <= lb[j].time);
            if take_a {
                master.absorb(&la[i]);
                i += 1;
            } else {
                master.absorb(&lb[j]);
                j += 1;
            }
        }
        assert_eq!(master.value(), seq.value());
        assert_eq!(master.records(), seq.records());
    }

    /// A logged digest's buckets, absorbed in time order into a fresh
    /// master, reproduce the folding digest exactly.
    #[test]
    fn logged_buckets_absorb_to_the_same_value() {
        let mut seq = TraceDigest::new();
        let mut logged = TraceDigest::new_logged();
        for (t, p) in [(1u64, 0usize), (1, 1), (4, 0), (9, 2), (9, 0)] {
            seq.record(SimTime::from_nanos(t), ProcessId(p));
            logged.record(SimTime::from_nanos(t), ProcessId(p));
        }
        seq.record_tag(7);
        logged.record_tag(7);
        let mut master = TraceDigest::new();
        for b in logged.take_log() {
            master.absorb(&b);
        }
        assert_eq!(master.value(), seq.value());
        assert_eq!(master.records(), seq.records());
    }
}
