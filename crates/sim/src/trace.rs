//! Event-trace digest for determinism testing.
//!
//! Every dispatched event (time + target) and every application-supplied tag
//! is folded into a running multiply-xorshift hash (splitmix-style rounds).
//! Two runs are behaviourally identical iff their digests match — a cheap,
//! order-sensitive fingerprint used by the `determinism` integration tests.
//! The digest sits on the kernel's per-event critical path, so the fold is
//! deliberately a short dependency chain (one multiply on the running
//! state), not a byte-at-a-time hash.

use crate::kernel::ProcessId;
use crate::time::SimTime;

const SEED: u64 = 0xcbf2_9ce4_8422_2325;
const MIX_IN: u64 = 0x9E37_79B9_7F4A_7C15;
const MIX_STATE: u64 = 0xBF58_476D_1CE4_E5B9;

/// Running order-sensitive hash over the event trace.
#[derive(Debug, Clone)]
pub struct TraceDigest {
    state: u64,
    records: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        TraceDigest {
            state: SEED,
            records: 0,
        }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        // The word's own multiply is off the serial chain; the chain itself
        // is xor → xorshift → multiply per fold.
        let mut z = self.state ^ word.wrapping_mul(MIX_IN);
        z ^= z >> 29;
        self.state = z.wrapping_mul(MIX_STATE);
    }

    /// Fold one event dispatch into the digest.
    ///
    /// Time and target are combined into a single word (the target gets its
    /// own multiplier so `(t, p)` and `(p, t)` differ) and folded in one
    /// round: this hash is on the critical path of every dispatched event.
    #[inline]
    pub fn record(&mut self, time: SimTime, target: ProcessId) {
        self.fold(time.as_nanos() ^ (target.0 as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        self.records += 1;
    }

    /// Fold an application-level tag (e.g. a payload checksum).
    #[inline]
    pub fn record_tag(&mut self, tag: u64) {
        self.fold(tag);
        self.records += 1;
    }

    /// The digest value so far.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Number of records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_match() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        for i in 0..100 {
            a.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
            b.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.records(), 100);
    }

    #[test]
    fn order_matters() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        a.record(SimTime::from_nanos(2), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(2), ProcessId(0));
        b.record(SimTime::from_nanos(1), ProcessId(0));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn target_matters() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(1), ProcessId(1));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn tags_fold_in() {
        let mut a = TraceDigest::new();
        a.record_tag(42);
        let mut b = TraceDigest::new();
        b.record_tag(43);
        assert_ne!(a.value(), b.value());
    }
}
