//! Event-trace digest for determinism testing.
//!
//! Every dispatched event (time + target) and every application-supplied tag
//! is folded into a running FNV-1a hash. Two runs are behaviourally identical
//! iff their digests match — a cheap, order-sensitive fingerprint used by the
//! `determinism` integration tests.

use crate::kernel::ProcessId;
use crate::time::SimTime;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a hash over the event trace.
#[derive(Debug, Clone)]
pub struct TraceDigest {
    state: u64,
    records: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        TraceDigest {
            state: FNV_OFFSET,
            records: 0,
        }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one event dispatch into the digest.
    #[inline]
    pub fn record(&mut self, time: SimTime, target: ProcessId) {
        self.fold(time.as_nanos());
        self.fold(target.0 as u64);
        self.records += 1;
    }

    /// Fold an application-level tag (e.g. a payload checksum).
    #[inline]
    pub fn record_tag(&mut self, tag: u64) {
        self.fold(tag);
        self.records += 1;
    }

    /// The digest value so far.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Number of records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_match() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        for i in 0..100 {
            a.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
            b.record(SimTime::from_nanos(i), ProcessId((i % 7) as usize));
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.records(), 100);
    }

    #[test]
    fn order_matters() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        a.record(SimTime::from_nanos(2), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(2), ProcessId(0));
        b.record(SimTime::from_nanos(1), ProcessId(0));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn target_matters() {
        let mut a = TraceDigest::new();
        a.record(SimTime::from_nanos(1), ProcessId(0));
        let mut b = TraceDigest::new();
        b.record(SimTime::from_nanos(1), ProcessId(1));
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn tags_fold_in() {
        let mut a = TraceDigest::new();
        a.record_tag(42);
        let mut b = TraceDigest::new();
        b.record_tag(43);
        assert_ne!(a.value(), b.value());
    }
}
