//! Virtual time: absolute instants ([`SimTime`]) and durations ([`Dur`]),
//! both with nanosecond resolution stored in `u64`.
//!
//! Nanoseconds in `u64` cover ~584 years of simulated time, far beyond any
//! experiment in this repository. All arithmetic is checked in debug builds
//! (plain `+`/`-` on the underlying integers), so a wrap would panic rather
//! than silently corrupt the event order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Time elapsed since `earlier`. Panics (in debug) if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// A zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Dur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Dur((us.max(0.0) * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scale by an integer factor.
    #[inline]
    pub const fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }

    /// Scale by a float factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Dur {
        Dur((self.0 as f64 * k).round() as u64)
    }

    /// Integer division by a positive factor.
    #[inline]
    pub const fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: Dur) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, other: Dur) -> Dur {
        Dur(self.0 + other.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, other: Dur) {
        self.0 += other.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Dur) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Dur::micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Dur::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(Dur::from_micros_f64(9.5).as_nanos(), 9_500);
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + Dur::micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let t2 = t + Dur::nanos(5);
        assert_eq!(t2.since(t).as_nanos(), 5);
        assert_eq!(t.saturating_since(t2), Dur::ZERO);
        assert_eq!((t2 - Dur::nanos(5)), t);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Dur::micros(10);
        let b = Dur::micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!(a.mul(3).as_nanos(), 30_000);
        assert_eq!(a.mul_f64(0.5).as_nanos(), 5_000);
        assert_eq!(a.div(2).as_nanos(), 5_000);
        assert_eq!(b.saturating_sub(a), Dur::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Dur = [a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 18_000);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", Dur::nanos(7)), "7ns");
        assert_eq!(format!("{}", Dur::micros(7)), "7.000us");
        assert_eq!(format!("{}", Dur::millis(7)), "7.000ms");
        assert_eq!(format!("{}", Dur::secs(7)), "7.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(Dur::nanos(1) < Dur::micros(1));
    }
}
