//! # hpsock-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which the whole reproduction of
//! *"Impact of High Performance Sockets on Data Intensive Applications"*
//! (HPDC 2003) is built. It provides:
//!
//! * a virtual clock with nanosecond resolution ([`SimTime`], [`Dur`]),
//! * an actor-style process model ([`Process`]) driven by a total-ordered
//!   calendar event queue with allocation-free inline/pooled message
//!   payloads ([`payload`]) and cross-run buffer recycling ([`arena`]),
//! * analytic FCFS multi-server resources ([`Resource`]) used to model CPUs,
//!   NICs and links,
//! * deterministic per-process random-number streams,
//! * statistics collectors ([`stats::Tally`], [`stats::Histogram`],
//!   [`stats::TimeWeighted`]),
//! * an event-trace digest used by determinism tests,
//! * a typed observability bus ([`probe`]) — zero overhead when disabled,
//!   with a buffering [`Recorder`], a [`MetricRegistry`], and Chrome
//!   trace-event JSON export for Perfetto,
//! * wall-clock self-profiling of the engine itself ([`telemetry`]) —
//!   per-round shard/barrier accounting, Chrome-trace worker lanes and
//!   `run_report.json` throughput summaries under `HPSOCK_TELEMETRY`,
//!   digest-neutral by construction.
//!
//! The kernel is deterministic: two runs with the same seed and the same
//! process construction order produce bit-identical event traces — whether
//! they execute sequentially (the default) or sharded across worker threads
//! under a conservative-parallel window protocol ([`shard`],
//! [`ShardPlan`]). Parallelism *between* simulations (parameter sweeps) is
//! achieved by running many independent `Sim` instances on different OS
//! threads — see the `hpsock-experiments` crate.
//!
//! ## Quick example
//!
//! ```
//! use hpsock_sim::{Sim, Process, Ctx, Message, Dur};
//!
//! struct Ping { pongs: u32 }
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send_self_in(Dur::micros(5), Message::new("tick"));
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
//!         self.pongs += 1;
//!         if self.pongs < 3 {
//!             ctx.send_self_in(Dur::micros(5), Message::new("tick"));
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! sim.add_process(Box::new(Ping { pongs: 0 }));
//! let end = sim.run();
//! assert_eq!(end.as_nanos(), 15_000);
//! ```

pub mod arena;
pub mod event;
pub mod kernel;
pub mod payload;
pub mod probe;
pub mod resource;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use event::{Event, EventQueue};
pub use kernel::{Ctx, Message, Process, ProcessId, Sim};
pub use payload::Payload;
pub use probe::{
    fold_spans, write_folded, MetricRegistry, Probe, ProbeEvent, Recorder, StreamingTraceWriter,
    Tee,
};
pub use resource::{Resource, ResourceId};
pub use shard::ShardPlan;
pub use stats::Tally;
pub use telemetry::{RunReport, TailSummary};
pub use time::{Dur, SimTime};
pub use trace::TraceDigest;
