//! Statistics collectors used by the experiments: streaming moments
//! ([`Tally`]), log-spaced histograms ([`Histogram`]), time-weighted
//! averages ([`TimeWeighted`]) and simple counters.

use crate::time::{Dur, SimTime};

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`Tally::new`]. A derived `Default` would zero the min/max
/// sentinels, so a default-constructed tally (e.g. via a map's
/// `or_default`) would clamp `min()` at 0 and `max()` at 0 after real
/// observations arrive.
impl Default for Tally {
    fn default() -> Self {
        Self::new()
    }
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration observation in microseconds.
    pub fn add_dur_us(&mut self, d: Dur) {
        self.add(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the two-sided 95 % confidence interval of the mean:
    /// `t · s / √n` with Student's t for small samples (exact critical
    /// values for n ≤ 31, the normal value 1.960 beyond). 0 with fewer
    /// than two observations — one seed gives a point estimate, not an
    /// interval.
    pub fn ci95(&self) -> f64 {
        /// Two-sided 95 % Student-t critical values for 1..=30 degrees of
        /// freedom (Abramowitz & Stegun table 26.10).
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        if self.n < 2 {
            return 0.0;
        }
        let df = (self.n - 1) as usize;
        let t = if df <= T95.len() { T95[df - 1] } else { 1.960 };
        t * (self.variance() / self.n as f64).sqrt()
    }

    /// `(mean − ci95, mean + ci95)` — the 95 % confidence interval of the
    /// mean. Collapses to `(mean, mean)` with fewer than two observations.
    pub fn ci95_bounds(&self) -> (f64, f64) {
        let h = self.ci95();
        (self.mean() - h, self.mean() + h)
    }

    /// Merge another tally into this one (parallel-sweep reduction).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Histogram with logarithmically spaced bins over `[lo, hi)` plus
/// underflow/overflow bins. Used for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    under: u64,
    over: u64,
    total: u64,
    /// Exact extrema of the observations; they bound the quantile
    /// estimates so under/overflow-only populations report real values
    /// instead of bin sentinels.
    min: f64,
    max: f64,
}

impl Histogram {
    /// `bins` log-spaced buckets spanning `[lo, hi)`; both bounds positive.
    pub fn log_spaced(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins > 0);
        Histogram {
            lo,
            ratio: (hi / lo).powf(1.0 / bins as f64),
            counts: vec![0; bins],
            under: 0,
            over: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < self.lo {
            self.under += 1;
        } else {
            let idx = ((x / self.lo).ln() / self.ratio.ln()).floor() as usize;
            if idx >= self.counts.len() {
                self.over += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest observation (0 if empty) — exact, not a bin edge.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty) — exact, not a bin edge.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`). Returns 0 for an empty
    /// histogram.
    ///
    /// The estimate is the upper edge of the bin holding the observation
    /// of rank `ceil(q·total)` — clamped to at least rank 1, so `q = 0`
    /// asks for the smallest observation's bin rather than degenerating
    /// into the underflow bound — and capped at the largest observation
    /// actually recorded.
    ///
    /// **Error bound.** Within `[lo, hi)` the true quantile lies inside
    /// the reported bin, so the estimate overshoots by at most one bin
    /// width: a relative error of `ratio − 1 = (hi/lo)^(1/bins) − 1`
    /// (≈ 12 % for the 160-bin `[1, 1e8)` latency histograms the probe
    /// layer uses; narrow the span or add bins for tighter tails).
    ///
    /// **Boundary bins.** A rank landing in the underflow bin reports
    /// `min(lo, max)` — the tightest upper bound the histogram can still
    /// prove — and a rank landing in the overflow bin reports the largest
    /// observation rather than the bin's unbounded upper edge (which
    /// historically surfaced as `+∞`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.under;
        if seen >= target {
            return self.lo.min(self.max);
        }
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (self.lo * self.ratio.powi(i as i32 + 1)).min(self.max);
            }
        }
        self.max
    }

    /// Build a histogram sized to `values`: bins span the positive
    /// observations at ≈ 0.1 % spacing (capped at 4096 bins, which keeps
    /// the relative error ≈ 1 % even across a 10¹⁹ dynamic range), so
    /// [`Histogram::quantile`] answers with sub-bin error everywhere.
    /// This is the plumbing behind the telemetry run reports and the
    /// figure tables' tail (`p50/p99/p999`) columns. Non-positive
    /// observations land in the underflow bin (quantiles there report the
    /// underflow bound `min(lo, max)`); an empty or zero-spread series
    /// degenerates to a single bin whose quantiles are the exact extrema.
    pub fn summarize(values: &[f64]) -> Histogram {
        let lo = values
            .iter()
            .copied()
            .filter(|v| *v > 0.0)
            .fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(0.0_f64, f64::max);
        let mut h = if lo.is_finite() && hi > lo {
            // Nudge the top edge so the maximum itself stays in range.
            let hi = hi * (1.0 + 1e-9);
            let bins = (((hi / lo).ln() / 1.001_f64.ln()).ceil() as usize).clamp(1, 4096);
            Histogram::log_spaced(lo, hi, bins)
        } else {
            // No positive spread: any span works, every quantile collapses
            // to the min/max clamps.
            Histogram::log_spaced(1.0, 2.0, 1)
        };
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Iterate `(bin_lower_edge, count)` for the regular bins.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo * self.ratio.powi(i as i32), c))
    }
}

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// outstanding-credit counts).
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    started: bool,
}

impl TimeWeighted {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal changed to `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if self.started {
            self.integral += self.last_v * t.saturating_since(self.last_t).as_nanos() as f64;
        }
        self.last_t = t;
        self.last_v = v;
        self.started = true;
    }

    /// Time-weighted mean over `[0, end]` (assumes signal was 0 before the
    /// first `set`).
    pub fn mean(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        let tail = self.last_v * end.saturating_since(self.last_t).as_nanos() as f64;
        (self.integral + tail) / end.as_nanos() as f64
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.add(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
    }

    #[test]
    fn tally_empty_is_zeroes() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
        assert!(
            t.min().is_finite() && t.max().is_finite(),
            "empty tally never leaks the ±INFINITY sentinels"
        );
    }

    /// Regression: `#[derive(Default)]` used to zero the min/max
    /// sentinels, so a default-constructed tally reported `min() == 0`
    /// even after only positive observations (and `max() == 0` after only
    /// negative ones).
    #[test]
    fn default_tally_behaves_like_new() {
        let mut t = Tally::default();
        t.add(5.0);
        assert_eq!(t.min(), 5.0, "min is the smallest observation, not 0");
        assert_eq!(t.max(), 5.0);
        let mut neg = Tally::default();
        neg.add(-3.0);
        assert_eq!(neg.max(), -3.0, "max is the largest observation, not 0");
        assert_eq!(neg.min(), -3.0);
        assert_eq!(Tally::default().min(), 0.0, "empty default stays 0");
        assert_eq!(Tally::default().max(), 0.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ci95_matches_hand_computed_small_samples() {
        // n = 2, {1, 3}: mean 2, s² = 2, se = √(2/2) = 1, t(df=1) = 12.706.
        let mut t = Tally::new();
        t.add(1.0);
        t.add(3.0);
        assert!((t.ci95() - 12.706).abs() < 1e-9, "{}", t.ci95());
        let (lo, hi) = t.ci95_bounds();
        assert!((lo - (2.0 - 12.706)).abs() < 1e-9);
        assert!((hi - (2.0 + 12.706)).abs() < 1e-9);
        // n = 5, {10,12,14,16,18}: mean 14, s² = 10, se = √2, t(df=4) = 2.776.
        let mut t = Tally::new();
        for x in [10.0, 12.0, 14.0, 16.0, 18.0] {
            t.add(x);
        }
        assert!(
            (t.ci95() - 2.776 * 2.0f64.sqrt()).abs() < 1e-9,
            "{}",
            t.ci95()
        );
    }

    #[test]
    fn ci95_uses_normal_value_for_large_samples() {
        // n = 32 (df = 31 > table): 1.960 · √(s²/n), s² = 2728/31 = 88.
        let mut t = Tally::new();
        for i in 0..32 {
            t.add(i as f64);
        }
        assert!((t.variance() - 88.0).abs() < 1e-9);
        assert!((t.ci95() - 1.960 * (88.0f64 / 32.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ci95_degenerate_cases() {
        let mut t = Tally::new();
        assert_eq!(t.ci95(), 0.0, "empty tally has no interval");
        t.add(5.0);
        assert_eq!(t.ci95(), 0.0, "one observation has no interval");
        assert_eq!(t.ci95_bounds(), (5.0, 5.0));
        t.add(5.0);
        assert_eq!(t.ci95(), 0.0, "zero variance collapses the interval");
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::log_spaced(1.0, 1000.0, 30);
        for i in 1..=1000 {
            h.add(i as f64);
        }
        assert_eq!(h.total(), 1000);
        let med = h.quantile(0.5);
        assert!(med > 400.0 && med < 700.0, "median approx: {med}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 900.0, "p99 approx: {p99}");
    }

    #[test]
    fn histogram_under_over() {
        let mut h = Histogram::log_spaced(10.0, 100.0, 4);
        h.add(1.0);
        h.add(1e6);
        assert_eq!(h.total(), 2);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1e6);
        assert!(h.quantile(0.25) <= 10.0);
        // A rank in the overflow bin reports the largest observation, not
        // the bin's unbounded edge (this used to return +INFINITY).
        assert_eq!(h.quantile(1.0), 1e6);
    }

    /// Populations that never leave the underflow bin must report the
    /// exact extrema, not the `lo` sentinel.
    #[test]
    fn histogram_underflow_only_population() {
        let mut h = Histogram::log_spaced(10.0, 100.0, 4);
        h.add(0.5);
        h.add(0.7);
        assert_eq!(h.quantile(0.0), 0.7, "bounded by the largest observation");
        assert_eq!(h.quantile(0.5), 0.7);
        assert_eq!(h.quantile(1.0), 0.7);
    }

    /// Populations that land entirely in the overflow bin report the
    /// largest observation at every quantile (the histogram cannot rank
    /// within the bin, but it can bound it exactly).
    #[test]
    fn histogram_overflow_only_population() {
        let mut h = Histogram::log_spaced(10.0, 100.0, 4);
        h.add(500.0);
        h.add(900.0);
        assert_eq!(h.quantile(0.5), 900.0);
        assert_eq!(h.quantile(1.0), 900.0);
        assert!(h.quantile(1.0).is_finite());
    }

    /// Bucket-boundary behaviour: `q = 0` targets rank 1 (the smallest
    /// observation's bin) instead of short-circuiting to the underflow
    /// bound, and in-range estimates are capped at the observed maximum
    /// so a lone observation on a bin's lower edge is not reported as
    /// the bin's upper edge overshooting every sample.
    #[test]
    fn histogram_quantile_bucket_boundaries() {
        // ratio = 2: bins [1,2) [2,4) [4,8) [8,16).
        let mut h = Histogram::log_spaced(1.0, 16.0, 4);
        for x in [1.0, 2.0, 4.0, 8.0] {
            h.add(x);
        }
        let q0 = h.quantile(0.0);
        assert!(
            (1.0..=2.0).contains(&q0),
            "q=0 reports the first bin, got {q0}"
        );
        assert_eq!(h.quantile(1.0), 8.0, "capped at the observed max");
        assert_eq!(Histogram::log_spaced(1.0, 16.0, 4).quantile(0.5), 0.0);
    }

    /// `summarize` sizes bins to the data so quantiles are near-exact,
    /// and degenerates gracefully on empty / constant / zero-heavy series.
    #[test]
    fn histogram_summarize_fits_the_data() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let h = Histogram::summarize(&xs);
        assert_eq!(h.total(), 1000);
        let p50 = h.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.01, "p50 ≈ 500, got {p50}");
        let p999 = h.quantile(0.999);
        assert!(
            (p999 - 999.0).abs() / 999.0 < 0.01,
            "p999 ≈ 999, got {p999}"
        );
        // Degenerate series still answer exactly.
        assert_eq!(Histogram::summarize(&[]).quantile(0.5), 0.0);
        let constant = Histogram::summarize(&[5.0, 5.0, 5.0]);
        assert_eq!(constant.quantile(0.5), 5.0);
        assert_eq!(constant.quantile(0.999), 5.0);
        let zeros = Histogram::summarize(&[0.0, 0.0]);
        assert_eq!(zeros.quantile(0.999), 0.0);
    }

    /// The documented error bound: an in-range quantile overshoots by at
    /// most one bin width (relative error `ratio - 1`).
    #[test]
    fn histogram_quantile_error_bound() {
        let bins = 30;
        let (lo, hi) = (1.0_f64, 1000.0_f64);
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        let mut h = Histogram::log_spaced(lo, hi, bins);
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &x in &xs {
            h.add(x);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = xs[((q * xs.len() as f64).ceil() as usize).max(1) - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            assert!(
                est <= exact * ratio,
                "q={q}: estimate {est} overshoots {exact} by more than one bin"
            );
        }
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_nanos(0), 2.0);
        tw.set(SimTime::from_nanos(100), 4.0);
        // 2.0 for 100ns, then 4.0 for 100ns.
        assert!((tw.mean(SimTime::from_nanos(200)) - 3.0).abs() < 1e-12);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_empty() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(SimTime::from_nanos(100)), 0.0);
    }
}
