//! The simulation kernel: process table, event dispatch loop, resources and
//! deterministic RNG streams.
//!
//! A [`Sim`] owns a set of [`Process`] actors. Each event delivers an opaque
//! [`Message`] to one process, which handles it via [`Process::on_message`]
//! with a [`Ctx`] granting access to the clock, the event queue, resources,
//! its private RNG stream, and process spawning. Dispatch follows the
//! canonical `(time, seq)` order, so runs are reproducible — whether the
//! kernel executes sequentially or sharded across worker threads under a
//! [`ShardPlan`] (see [`crate::shard`]).

use crate::arena;
use crate::event::EventQueue;
use crate::payload::Payload;
use crate::probe::{Probe, ProbeEvent};
use crate::resource::{Resource, ResourceId};
use crate::shard::{ShardPlan, ShardRoute};
use crate::time::{Dur, SimTime};
use crate::trace::TraceDigest;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;

/// Opaque message payload; receiving processes downcast to concrete types.
///
/// Construct with [`Message::new`] (which stores small values inline and
/// pools mid-sized ones — see [`crate::payload`]); consume with
/// [`Payload::downcast`] / [`Payload::downcast_ref`].
pub type Message = Payload;

/// Handle to a process registered with a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// An actor in the simulation.
///
/// Implementations react to messages; they never block. Time passes only via
/// scheduled future messages ([`Ctx::send_in`]) or resource usage
/// ([`Ctx::use_resource`]).
pub trait Process: Any + Send {
    /// Human-readable name used in panics and traces.
    fn name(&self) -> String {
        "process".to_string()
    }

    /// Called once, before any message is delivered: when [`Sim::run`] first
    /// starts for initially-added processes, or at spawn time for processes
    /// created during the run.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message);
}

/// Shared kernel state reachable from handlers (everything except the
/// process table, whose current entry is checked out during dispatch).
pub(crate) struct Core {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue,
    pub(crate) resources: Vec<Resource>,
    pub(crate) rngs: Vec<SmallRng>,
    pub(crate) trace: TraceDigest,
    pub(crate) master_seed: u64,
    /// Processes created from handlers; folded into the table after dispatch.
    pub(crate) pending_spawns: Vec<Box<dyn Process>>,
    /// Next pid, counting both live and pending processes.
    pub(crate) next_pid: usize,
    pub(crate) stop_requested: bool,
    pub(crate) events_dispatched: u64,
    /// Per-source push counters backing the canonical event ordering key:
    /// slot 0 is the external [`Sim::schedule_at`] stream, slot `pid + 1`
    /// the stream of pushes made from that process's handlers. The key of
    /// a push is `(slot << 40) | count`, so equal-time events order by
    /// `(source, push order)` — reproducible regardless of which worker
    /// thread executes the source (see `shard.rs`).
    pub(crate) push_counts: Vec<u64>,
    /// Observability sink; `None` (the default) makes every emission site
    /// a single branch with the event never constructed.
    pub(crate) probe: Option<Box<dyn Probe>>,
    /// In a sharded run, the worker-local view of the partition: which
    /// shard this core is, who owns each process/resource, and the
    /// cross-shard mailboxes. `None` (the default) keeps the sequential
    /// hot path to a single branch per push.
    pub(crate) route: Option<Box<ShardRoute>>,
}

/// Width of the per-source count field in an ordering key; the source
/// slot occupies the bits above. 2^40 pushes per source and 2^24 sources
/// are both far beyond any simulated workload.
pub(crate) const KEY_COUNT_BITS: u32 = 40;

/// The canonical ordering key for the next push from `slot`, advancing
/// its counter.
///
/// Keys must stay unique — `EventQueue::push` and the sharded probe merge
/// both rely on it — so debug builds fail loudly if either field would
/// overflow its bit range and silently collide.
#[inline]
pub(crate) fn next_key(push_counts: &mut [u64], slot: usize) -> u64 {
    debug_assert!(
        slot < (1 << (64 - KEY_COUNT_BITS)),
        "ordering-key slot field overflow: slot {slot}"
    );
    debug_assert!(
        slot < push_counts.len(),
        "push count slot {slot} out of range"
    );
    // SAFETY: every caller passes slot 0 (always present — `Sim::new`
    // seeds the table with one entry) or `pid + 1` for a registered pid,
    // and both `add_process` and `Ctx::spawn` grow the table in lockstep
    // with the pid space, so `slot < push_counts.len()` always holds (and
    // is asserted above in debug builds). This sits on the per-event hot
    // path; the checked index measurably slows dispatch.
    let c = unsafe { push_counts.get_unchecked_mut(slot) };
    debug_assert!(
        *c < (1 << KEY_COUNT_BITS),
        "ordering-key count field overflow: 2^{KEY_COUNT_BITS} pushes from slot {slot}"
    );
    let key = ((slot as u64) << KEY_COUNT_BITS) | *c;
    *c += 1;
    key
}

impl Core {
    /// Route one keyed push: locally onto the queue, or — in a sharded run
    /// when `target` lives on another shard — into that shard's mailbox,
    /// after checking the link's lookahead promise. The sharded case is
    /// outlined (`#[cold]`): keeping the mailbox machinery out of this
    /// function lets the sequential path inline `EventQueue::push` cleanly,
    /// which is worth several ns on every dispatched event.
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, key: u64, target: ProcessId, msg: Message) {
        if self.route.is_none() {
            self.queue.push(time, key, target, msg);
        } else {
            self.push_routed(time, key, target, msg);
        }
    }

    /// The sharded-run push path (see [`Core::push`]). Cold from the
    /// sequential kernel's perspective. Cross-shard sends are *staged*
    /// into a worker-local per-destination batch — no locks, no shared
    /// state — and flushed by the shard worker loop once per round.
    #[cold]
    fn push_routed(&mut self, time: SimTime, key: u64, target: ProcessId, msg: Message) {
        let now = self.now;
        let route = self.route.as_mut().expect("routed push has a route");
        let dest = route.owner_pid[target.0];
        if dest == route.shard {
            self.queue.push(time, key, target, msg);
        } else {
            route.check_lookahead(now, time, dest);
            route.sent += 1;
            let t = time.as_nanos();
            if t < route.staged_min[dest] {
                route.staged_min[dest] = t;
            }
            route.staged[dest].push(crate::shard::SentEvent {
                time,
                key,
                target,
                msg,
            });
        }
    }

    fn rng_for(master_seed: u64, pid: usize) -> SmallRng {
        // SplitMix64-style mixing so neighbouring pids get unrelated streams.
        let mut z = master_seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

/// The discrete-event simulator.
pub struct Sim {
    pub(crate) core: Core,
    pub(crate) procs: Vec<Option<Box<dyn Process>>>,
    /// Number of processes whose `on_start` has already run.
    pub(crate) started: usize,
    /// Safety valve against runaway simulations.
    pub(crate) max_events: u64,
    /// When set (and `shards > 1`), `run` executes under the sharded
    /// conservative-parallel protocol (see [`crate::shard`]).
    pub(crate) shard_plan: Option<ShardPlan>,
}

impl Sim {
    /// Create a simulator whose RNG streams derive from `seed`.
    ///
    /// Adopts event-queue/table buffers recycled from a previously dropped
    /// `Sim` on this thread (see [`crate::arena`]); reuse never changes
    /// behaviour, only allocation traffic.
    pub fn new(seed: u64) -> Self {
        let parts = arena::take();
        Sim {
            core: Core {
                now: SimTime::ZERO,
                queue: parts.queue,
                resources: parts.resources,
                rngs: parts.rngs,
                trace: TraceDigest::new(),
                master_seed: seed,
                pending_spawns: Vec::new(),
                next_pid: 0,
                stop_requested: false,
                events_dispatched: 0,
                push_counts: vec![0],
                probe: None,
                route: None,
            },
            procs: parts.procs,
            started: 0,
            max_events: u64::MAX,
            shard_plan: None,
        }
    }

    /// Attach a shard plan: subsequent `run`/`run_until` calls execute the
    /// simulation across `plan.shards` worker threads under the
    /// conservative window protocol of [`crate::shard`], producing the
    /// same trace digest and results as the sequential kernel. A plan with
    /// `shards == 1` is ignored (the run stays on the sequential path).
    pub fn set_shard_plan(&mut self, plan: ShardPlan) {
        assert!(plan.shards >= 1, "a shard plan needs at least one shard");
        assert_eq!(
            plan.lookahead.len(),
            plan.shards,
            "lookahead matrix must be shards x shards"
        );
        for (a, row) in plan.lookahead.iter().enumerate() {
            assert_eq!(
                row.len(),
                plan.shards,
                "lookahead matrix must be shards x shards"
            );
            for (b, &l) in row.iter().enumerate() {
                // Diagonal entries are documented as ignored, so any value
                // (including 0) is fine there.
                assert!(
                    a == b || l > 0,
                    "cross-shard links must have positive lookahead (got 0 for {a}->{b})"
                );
            }
        }
        self.shard_plan = Some(plan);
    }

    /// Cap the number of dispatched events; the run stops (without panicking)
    /// when the cap is hit. Useful in tests against runaway loops.
    pub fn set_max_events(&mut self, cap: u64) {
        self.max_events = cap;
    }

    /// Register a process; returns its id. `on_start` runs when the
    /// simulation first runs.
    pub fn add_process(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.core.next_pid);
        self.core.next_pid += 1;
        self.core
            .rngs
            .push(Core::rng_for(self.core.master_seed, pid.0));
        self.core.push_counts.push(0);
        self.procs.push(Some(p));
        pid
    }

    /// Register a FCFS station with `servers` identical servers.
    pub fn add_resource(&mut self, name: impl Into<String>, servers: usize) -> ResourceId {
        let rid = ResourceId(self.core.resources.len());
        self.core.resources.push(Resource::new(name, servers));
        rid
    }

    /// Inject a message from outside the simulation at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, target: ProcessId, msg: Message) {
        let key = next_key(&mut self.core.push_counts, 0);
        self.core.queue.push(at, key, target, msg);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Read-only access to a resource's statistics.
    pub fn resource(&self, rid: ResourceId) -> &Resource {
        &self.core.resources[rid.0]
    }

    /// Number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.core.events_dispatched
    }

    /// Digest of the event trace so far (see [`TraceDigest`]).
    pub fn trace_digest(&self) -> u64 {
        self.core.trace.value()
    }

    /// Attach an observability sink (see [`crate::probe`]). Probes are
    /// purely observational: attaching one never changes the trace digest.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.core.probe = Some(probe);
    }

    /// Detach and return the current probe, if any.
    pub fn detach_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.core.probe.take()
    }

    /// Names of all registered resources, indexed by `ResourceId`; the
    /// track table expected by [`crate::probe::Recorder::chrome_trace_json`].
    pub fn resource_names(&self) -> Vec<String> {
        self.core
            .resources
            .iter()
            .map(|r| r.name().to_string())
            .collect()
    }

    /// Run until the event queue drains (or `stop`/event cap). Returns the
    /// final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_inner(None)
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `limit`; events after `limit` stay queued. Returns the final time
    /// (≤ `limit`).
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        self.run_inner(Some(limit))
    }

    fn run_inner(&mut self, limit: Option<SimTime>) -> SimTime {
        // Per-run flow counter (flow-level network model): reset before
        // the shard branch so both kernels report this run's flows.
        crate::telemetry::reset_flows();
        if let Some(plan) = &self.shard_plan {
            if plan.shards > 1 {
                let plan = plan.clone();
                return crate::shard::run_sharded(self, &plan, limit);
            }
        }
        self.start_new_processes();
        // Wall-clock telemetry (off the dispatch path entirely): resolved
        // once per run, timed around the whole loop, flushed at exit.
        let tel_dir = crate::telemetry::configured_telemetry();
        let run_start = std::time::Instant::now();
        let events_before = self.core.events_dispatched;
        // Flatten the optional limit into one compare on the hot path; an
        // unlimited run can never pass t > MAX.
        let horizon = limit.unwrap_or(SimTime::from_nanos(u64::MAX));
        let end = 'run: {
            // `stop` can only flip inside a handler, so it is re-checked
            // after dispatch (below) rather than on every loop entry.
            if self.core.stop_requested {
                break 'run self.core.now;
            }
            while let Some(t) = self.core.queue.peek_time() {
                if t > horizon {
                    self.core.now = horizon;
                    break 'run self.core.now;
                }
                if self.core.events_dispatched >= self.max_events {
                    break;
                }
                // SAFETY: peek_time just returned Some and nothing between the
                // peek and here touches the queue. Skipping the unwrap branch
                // lets the event be popped straight into this frame.
                let (time, target, msg) = unsafe { self.core.queue.pop_parts().unwrap_unchecked() };
                debug_assert!(time >= self.core.now, "time must not run backwards");
                self.core.now = time;
                self.core.events_dispatched += 1;
                self.core.trace.record(time, target);
                if let Some(probe) = self.core.probe.as_mut() {
                    probe.record(ProbeEvent::Dispatch { time, target });
                }
                self.dispatch(target, msg);
                // Mid-run the table only grows through `Ctx::spawn`, which
                // stages into `pending_spawns`; anything added before the run
                // was started by the `start_new_processes` call at entry.
                if !self.core.pending_spawns.is_empty() {
                    self.start_new_processes();
                }
                if self.core.stop_requested {
                    break;
                }
            }
            self.core.now
        };
        if let Some(dir) = tel_dir {
            crate::telemetry::flush_sequential(
                &dir,
                run_start.elapsed().as_nanos() as u64,
                self.core.events_dispatched - events_before,
            );
        }
        end
    }

    fn dispatch(&mut self, target: ProcessId, msg: Message) {
        // Handlers can only reach `core` through `Ctx`, never the process
        // table, so the entry is borrowed in place (no checkout round-trip).
        let proc = self
            .procs
            .get_mut(target.0)
            .unwrap_or_else(|| panic!("message to unknown process {:?}", target))
            .as_deref_mut()
            .expect("process checked out during dispatch");
        let mut ctx = Ctx {
            core: &mut self.core,
            pid: target,
        };
        proc.on_message(&mut ctx, msg);
    }

    /// Fold pending spawns into the table and run `on_start` for every
    /// process that has not started yet (in pid order).
    pub(crate) fn start_new_processes(&mut self) {
        loop {
            let spawns: Vec<Box<dyn Process>> = std::mem::take(&mut self.core.pending_spawns);
            for p in spawns {
                self.core
                    .rngs
                    .push(Core::rng_for(self.core.master_seed, self.procs.len()));
                self.procs.push(Some(p));
            }
            if self.started == self.procs.len() {
                break;
            }
            let pid = ProcessId(self.started);
            self.started += 1;
            let mut proc = self.procs[pid.0].take().expect("unstarted process exists");
            let mut ctx = Ctx {
                core: &mut self.core,
                pid,
            };
            proc.on_start(&mut ctx);
            self.procs[pid.0] = Some(proc);
            // Loop again: on_start may itself have spawned processes.
        }
    }

    /// Borrow a process back out of the simulator, e.g. to read collected
    /// statistics after the run. Returns `None` if the process has a
    /// different concrete type. Panics if `pid` is unknown.
    pub fn process<T: Process>(&self, pid: ProcessId) -> Option<&T> {
        self.procs[pid.0]
            .as_deref()
            .and_then(|p| (p as &dyn Any).downcast_ref::<T>())
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        arena::put(arena::Parts {
            queue: std::mem::replace(&mut self.core.queue, EventQueue::hollow()),
            procs: std::mem::take(&mut self.procs),
            rngs: std::mem::take(&mut self.core.rngs),
            resources: std::mem::take(&mut self.core.resources),
        });
    }
}

/// Handler-side view of the kernel: clock, event queue, resources, RNG.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut Core,
    pub(crate) pid: ProcessId,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the process handling the current event.
    #[inline]
    pub fn self_id(&self) -> ProcessId {
        self.pid
    }

    /// Deliver `msg` to `target` at the current instant (after all events
    /// already queued for this instant from this and earlier sources).
    pub fn send(&mut self, target: ProcessId, msg: Message) {
        let key = next_key(&mut self.core.push_counts, self.pid.0 + 1);
        let now = self.core.now;
        self.core.push(now, key, target, msg);
    }

    /// Deliver `msg` to `target` after `delay`.
    pub fn send_in(&mut self, delay: Dur, target: ProcessId, msg: Message) {
        let key = next_key(&mut self.core.push_counts, self.pid.0 + 1);
        let at = self.core.now + delay;
        self.core.push(at, key, target, msg);
    }

    /// Deliver `msg` back to this process after `delay`.
    pub fn send_self_in(&mut self, delay: Dur, msg: Message) {
        let pid = self.pid;
        self.send_in(delay, pid, msg);
    }

    /// Submit a job of `service` demand to resource `rid`, arriving now;
    /// `msg` is delivered to `target` when the job completes under FCFS.
    /// Returns the completion instant.
    pub fn use_resource_for(
        &mut self,
        rid: ResourceId,
        service: Dur,
        target: ProcessId,
        msg: Message,
    ) -> SimTime {
        let done = self.schedule_observed(rid, service);
        let key = next_key(&mut self.core.push_counts, self.pid.0 + 1);
        self.core.push(done, key, target, msg);
        done
    }

    /// Schedule on the resource and report the acquisition to the probe.
    fn schedule_observed(&mut self, rid: ResourceId, service: Dur) -> SimTime {
        if let Some(route) = &self.core.route {
            let owner = route.owner_rid[rid.0];
            assert!(
                owner == route.shard,
                "resource {:?} ({}) used from shard {} but owned by shard {}: \
                 the shard plan must co-locate a resource with every process using it",
                rid,
                self.core.resources[rid.0].name(),
                route.shard,
                owner,
            );
        }
        let now = self.core.now;
        let busy_servers = self.core.resources[rid.0].busy_servers(now);
        let done = self.core.resources[rid.0].schedule(now, service);
        if let Some(probe) = self.core.probe.as_mut() {
            probe.record(ProbeEvent::ResourceAcquire {
                rid,
                arrived: now,
                start: done - service,
                completion: done,
                service,
                busy_servers,
            });
        }
        done
    }

    /// Like [`Ctx::use_resource_for`] with this process as the target.
    pub fn use_resource(&mut self, rid: ResourceId, service: Dur, msg: Message) -> SimTime {
        let pid = self.pid;
        self.use_resource_for(rid, service, pid, msg)
    }

    /// Occupy resource time without any completion notification (e.g.
    /// protocol processing whose completion is accounted for elsewhere).
    /// Returns the completion instant.
    pub fn occupy_resource(&mut self, rid: ResourceId, service: Dur) -> SimTime {
        self.schedule_observed(rid, service)
    }

    /// Read-only view of a resource's statistics.
    pub fn resource(&self, rid: ResourceId) -> &Resource {
        &self.core.resources[rid.0]
    }

    /// This process's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rngs[self.pid.0]
    }

    /// Create a new process mid-run. Its `on_start` runs as soon as the
    /// current handler returns. Returns the new process id (valid
    /// immediately as a message target).
    ///
    /// # Panics
    ///
    /// Under a sharded run: worker process tables cannot grow
    /// deterministically (the new pid's owner is not in the plan), so
    /// mid-run spawning is a documented limitation of the sharded kernel.
    /// Register all processes before `run`, or run sequentially.
    pub fn spawn(&mut self, p: Box<dyn Process>) -> ProcessId {
        if let Some(route) = &self.core.route {
            panic!(
                "process {:?} (pid {}) called Ctx::spawn during a sharded run \
                 (on shard {}): the shard plan cannot place processes created \
                 mid-run, so spawns would be silently dropped. Register all \
                 processes before run(), or run without a shard plan.",
                p.name(),
                self.pid.0,
                route.shard,
            );
        }
        let pid = ProcessId(self.core.next_pid);
        self.core.next_pid += 1;
        self.core.push_counts.push(0);
        self.core.pending_spawns.push(p);
        pid
    }

    /// Halt the simulation after the current handler returns.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }

    /// Fold an application-level tag into the determinism trace digest.
    pub fn trace_tag(&mut self, tag: u64) {
        self.core.trace.record_tag(tag);
    }

    /// Whether a probe is attached. Use to skip expensive event *inputs*
    /// (string formatting etc.); [`Ctx::probe_emit`] already skips event
    /// construction itself.
    #[inline]
    pub fn probe_enabled(&self) -> bool {
        self.core.probe.is_some()
    }

    /// Emit a probe event. The closure runs — i.e. the event is built —
    /// only when a probe is attached, so a disabled bus costs one branch.
    #[inline]
    pub fn probe_emit(&mut self, f: impl FnOnce(SimTime) -> ProbeEvent) {
        if let Some(probe) = self.core.probe.as_mut() {
            probe.record(f(self.core.now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    struct Echo {
        heard: Vec<u64>,
        peer: Option<ProcessId>,
        bounces: u32,
    }

    impl Process for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let v = msg.downcast::<u64>().unwrap();
            self.heard.push(v);
            if let Some(peer) = self.peer {
                if self.bounces > 0 {
                    self.bounces -= 1;
                    ctx.send_in(Dur::micros(10), peer, Message::new(v + 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Sim::new(1);
        let a = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: None,
            bounces: 0,
        }));
        let b = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: Some(a),
            bounces: 3,
        }));
        sim.schedule_at(SimTime::ZERO, b, Message::new(0u64));
        let end = sim.run();
        // b hears 0 at t=0, sends to a at 10us; a is a sink.
        assert_eq!(end.as_nanos(), 10_000);
        let a_ref: &Echo = sim.process(a).unwrap();
        assert_eq!(a_ref.heard, vec![1]);
    }

    struct Starter;
    impl Process for Starter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_self_in(Dur::nanos(7), Message::new(1u64));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            ctx.stop();
        }
    }

    #[test]
    fn on_start_runs_and_stop_halts() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Starter));
        sim.schedule_at(SimTime::from_nanos(100), p, Message::new(2u64));
        let end = sim.run();
        assert_eq!(end.as_nanos(), 7); // stopped before the t=100 event
        assert_eq!(sim.events_dispatched(), 1);
    }

    struct Spawner {
        child_heard: Option<ProcessId>,
    }
    struct Child {
        heard: u32,
    }
    impl Process for Child {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            self.heard += 1;
        }
    }
    impl Process for Spawner {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            let child = ctx.spawn(Box::new(Child { heard: 0 }));
            self.child_heard = Some(child);
            ctx.send_in(Dur::nanos(1), child, Message::new(()));
        }
    }

    #[test]
    fn spawn_mid_run_is_addressable() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Spawner { child_heard: None }));
        sim.schedule_at(SimTime::ZERO, p, Message::new(()));
        sim.run();
        let spawner: &Spawner = sim.process(p).unwrap();
        let child_pid = spawner.child_heard.unwrap();
        let child: &Child = sim.process(child_pid).unwrap();
        assert_eq!(child.heard, 1);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: None,
            bounces: 0,
        }));
        sim.schedule_at(SimTime::from_nanos(50), p, Message::new(1u64));
        sim.schedule_at(SimTime::from_nanos(150), p, Message::new(2u64));
        let t = sim.run_until(SimTime::from_nanos(100));
        assert_eq!(t.as_nanos(), 100);
        assert_eq!(sim.events_dispatched(), 1);
        sim.run();
        assert_eq!(sim.events_dispatched(), 2);
    }

    #[test]
    fn resource_completion_delivers_message() {
        struct Worker {
            done_at: Vec<u64>,
            cpu: ResourceId,
        }
        impl Process for Worker {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
                match msg.downcast::<&'static str>() {
                    Ok("job") => {
                        ctx.use_resource(self.cpu, Dur::nanos(100), Message::new("done"));
                        ctx.use_resource(self.cpu, Dur::nanos(100), Message::new("done"));
                    }
                    Ok(_) => self.done_at.push(ctx.now().as_nanos()),
                    Err(_) => panic!("unexpected message"),
                }
            }
        }
        let mut sim = Sim::new(0);
        let cpu = sim.add_resource("cpu", 1);
        let w = sim.add_process(Box::new(Worker {
            done_at: vec![],
            cpu,
        }));
        sim.schedule_at(SimTime::ZERO, w, Message::new("job"));
        sim.run();
        let w_ref: &Worker = sim.process(w).unwrap();
        assert_eq!(w_ref.done_at, vec![100, 200]); // serialized on one server
    }

    #[test]
    fn determinism_same_seed_same_digest() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(seed);
            let a = sim.add_process(Box::new(Echo {
                heard: vec![],
                peer: None,
                bounces: 0,
            }));
            let b = sim.add_process(Box::new(Echo {
                heard: vec![],
                peer: Some(a),
                bounces: 10,
            }));
            sim.schedule_at(SimTime::ZERO, b, Message::new(0u64));
            sim.run();
            (sim.trace_digest(), sim.events_dispatched())
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn rng_streams_differ_per_process() {
        let mut sim = Sim::new(9);
        struct R {
            v: u64,
        }
        impl Process for R {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _m: Message) {
                self.v = ctx.rng().next_u64();
            }
        }
        let a = sim.add_process(Box::new(R { v: 0 }));
        let b = sim.add_process(Box::new(R { v: 0 }));
        sim.schedule_at(SimTime::ZERO, a, Message::new(()));
        sim.schedule_at(SimTime::ZERO, b, Message::new(()));
        sim.run();
        let ra: &R = sim.process(a).unwrap();
        let rb: &R = sim.process(b).unwrap();
        assert_ne!(ra.v, rb.v);
    }

    #[test]
    fn max_events_caps_runaway() {
        struct Loopy;
        impl Process for Loopy {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _m: Message) {
                ctx.send_self_in(Dur::nanos(1), Message::new(()));
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Loopy));
        sim.schedule_at(SimTime::ZERO, p, Message::new(()));
        sim.set_max_events(1000);
        sim.run();
        assert_eq!(sim.events_dispatched(), 1000);
    }
}
