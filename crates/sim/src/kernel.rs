//! The simulation kernel: process table, event dispatch loop, resources and
//! deterministic RNG streams.
//!
//! A [`Sim`] owns a set of [`Process`] actors. Each event delivers an opaque
//! [`Message`] to one process, which handles it via [`Process::on_message`]
//! with a [`Ctx`] granting access to the clock, the event queue, resources,
//! its private RNG stream, and process spawning. Dispatch is strictly
//! sequential in `(time, seq)` order, so runs are reproducible.

use crate::arena;
use crate::event::EventQueue;
use crate::payload::Payload;
use crate::probe::{Probe, ProbeEvent};
use crate::resource::{Resource, ResourceId};
use crate::time::{Dur, SimTime};
use crate::trace::TraceDigest;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;

/// Opaque message payload; receiving processes downcast to concrete types.
///
/// Construct with [`Message::new`] (which stores small values inline and
/// pools mid-sized ones — see [`crate::payload`]); consume with
/// [`Payload::downcast`] / [`Payload::downcast_ref`].
pub type Message = Payload;

/// Handle to a process registered with a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// An actor in the simulation.
///
/// Implementations react to messages; they never block. Time passes only via
/// scheduled future messages ([`Ctx::send_in`]) or resource usage
/// ([`Ctx::use_resource`]).
pub trait Process: Any + Send {
    /// Human-readable name used in panics and traces.
    fn name(&self) -> String {
        "process".to_string()
    }

    /// Called once, before any message is delivered: when [`Sim::run`] first
    /// starts for initially-added processes, or at spawn time for processes
    /// created during the run.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message);
}

/// Shared kernel state reachable from handlers (everything except the
/// process table, whose current entry is checked out during dispatch).
struct Core {
    now: SimTime,
    queue: EventQueue,
    resources: Vec<Resource>,
    rngs: Vec<SmallRng>,
    trace: TraceDigest,
    master_seed: u64,
    /// Processes created from handlers; folded into the table after dispatch.
    pending_spawns: Vec<Box<dyn Process>>,
    /// Next pid, counting both live and pending processes.
    next_pid: usize,
    stop_requested: bool,
    events_dispatched: u64,
    /// Observability sink; `None` (the default) makes every emission site
    /// a single branch with the event never constructed.
    probe: Option<Box<dyn Probe>>,
}

impl Core {
    fn rng_for(master_seed: u64, pid: usize) -> SmallRng {
        // SplitMix64-style mixing so neighbouring pids get unrelated streams.
        let mut z = master_seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

/// The discrete-event simulator.
pub struct Sim {
    core: Core,
    procs: Vec<Option<Box<dyn Process>>>,
    /// Number of processes whose `on_start` has already run.
    started: usize,
    /// Safety valve against runaway simulations.
    max_events: u64,
}

impl Sim {
    /// Create a simulator whose RNG streams derive from `seed`.
    ///
    /// Adopts event-queue/table buffers recycled from a previously dropped
    /// `Sim` on this thread (see [`crate::arena`]); reuse never changes
    /// behaviour, only allocation traffic.
    pub fn new(seed: u64) -> Self {
        let parts = arena::take();
        Sim {
            core: Core {
                now: SimTime::ZERO,
                queue: parts.queue,
                resources: parts.resources,
                rngs: parts.rngs,
                trace: TraceDigest::new(),
                master_seed: seed,
                pending_spawns: Vec::new(),
                next_pid: 0,
                stop_requested: false,
                events_dispatched: 0,
                probe: None,
            },
            procs: parts.procs,
            started: 0,
            max_events: u64::MAX,
        }
    }

    /// Cap the number of dispatched events; the run stops (without panicking)
    /// when the cap is hit. Useful in tests against runaway loops.
    pub fn set_max_events(&mut self, cap: u64) {
        self.max_events = cap;
    }

    /// Register a process; returns its id. `on_start` runs when the
    /// simulation first runs.
    pub fn add_process(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.core.next_pid);
        self.core.next_pid += 1;
        self.core
            .rngs
            .push(Core::rng_for(self.core.master_seed, pid.0));
        self.procs.push(Some(p));
        pid
    }

    /// Register a FCFS station with `servers` identical servers.
    pub fn add_resource(&mut self, name: impl Into<String>, servers: usize) -> ResourceId {
        let rid = ResourceId(self.core.resources.len());
        self.core.resources.push(Resource::new(name, servers));
        rid
    }

    /// Inject a message from outside the simulation at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, target: ProcessId, msg: Message) {
        self.core.queue.push(at, target, msg);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Read-only access to a resource's statistics.
    pub fn resource(&self, rid: ResourceId) -> &Resource {
        &self.core.resources[rid.0]
    }

    /// Number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.core.events_dispatched
    }

    /// Digest of the event trace so far (see [`TraceDigest`]).
    pub fn trace_digest(&self) -> u64 {
        self.core.trace.value()
    }

    /// Attach an observability sink (see [`crate::probe`]). Probes are
    /// purely observational: attaching one never changes the trace digest.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.core.probe = Some(probe);
    }

    /// Detach and return the current probe, if any.
    pub fn detach_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.core.probe.take()
    }

    /// Names of all registered resources, indexed by `ResourceId`; the
    /// track table expected by [`crate::probe::Recorder::chrome_trace_json`].
    pub fn resource_names(&self) -> Vec<String> {
        self.core
            .resources
            .iter()
            .map(|r| r.name().to_string())
            .collect()
    }

    /// Run until the event queue drains (or `stop`/event cap). Returns the
    /// final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_inner(None)
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `limit`; events after `limit` stay queued. Returns the final time
    /// (≤ `limit`).
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        self.run_inner(Some(limit))
    }

    fn run_inner(&mut self, limit: Option<SimTime>) -> SimTime {
        self.start_new_processes();
        // Flatten the optional limit into one compare on the hot path; an
        // unlimited run can never pass t > MAX.
        let horizon = limit.unwrap_or(SimTime::from_nanos(u64::MAX));
        // `stop` can only flip inside a handler, so it is re-checked after
        // dispatch (below) rather than on every loop entry.
        if self.core.stop_requested {
            return self.core.now;
        }
        while let Some(t) = self.core.queue.peek_time() {
            if t > horizon {
                self.core.now = horizon;
                return self.core.now;
            }
            if self.core.events_dispatched >= self.max_events {
                break;
            }
            // SAFETY: peek_time just returned Some and nothing between the
            // peek and here touches the queue. Skipping the unwrap branch
            // lets the event be popped straight into this frame.
            let (time, target, msg) = unsafe { self.core.queue.pop_parts().unwrap_unchecked() };
            debug_assert!(time >= self.core.now, "time must not run backwards");
            self.core.now = time;
            self.core.events_dispatched += 1;
            self.core.trace.record(time, target);
            if let Some(probe) = self.core.probe.as_mut() {
                probe.record(ProbeEvent::Dispatch { time, target });
            }
            self.dispatch(target, msg);
            // Mid-run the table only grows through `Ctx::spawn`, which
            // stages into `pending_spawns`; anything added before the run
            // was started by the `start_new_processes` call at entry.
            if !self.core.pending_spawns.is_empty() {
                self.start_new_processes();
            }
            if self.core.stop_requested {
                break;
            }
        }
        self.core.now
    }

    fn dispatch(&mut self, target: ProcessId, msg: Message) {
        // Handlers can only reach `core` through `Ctx`, never the process
        // table, so the entry is borrowed in place (no checkout round-trip).
        let proc = self
            .procs
            .get_mut(target.0)
            .unwrap_or_else(|| panic!("message to unknown process {:?}", target))
            .as_deref_mut()
            .expect("process checked out during dispatch");
        let mut ctx = Ctx {
            core: &mut self.core,
            pid: target,
        };
        proc.on_message(&mut ctx, msg);
    }

    /// Fold pending spawns into the table and run `on_start` for every
    /// process that has not started yet (in pid order).
    fn start_new_processes(&mut self) {
        loop {
            let spawns: Vec<Box<dyn Process>> = std::mem::take(&mut self.core.pending_spawns);
            for p in spawns {
                self.core
                    .rngs
                    .push(Core::rng_for(self.core.master_seed, self.procs.len()));
                self.procs.push(Some(p));
            }
            if self.started == self.procs.len() {
                break;
            }
            let pid = ProcessId(self.started);
            self.started += 1;
            let mut proc = self.procs[pid.0].take().expect("unstarted process exists");
            let mut ctx = Ctx {
                core: &mut self.core,
                pid,
            };
            proc.on_start(&mut ctx);
            self.procs[pid.0] = Some(proc);
            // Loop again: on_start may itself have spawned processes.
        }
    }

    /// Borrow a process back out of the simulator, e.g. to read collected
    /// statistics after the run. Returns `None` if the process has a
    /// different concrete type. Panics if `pid` is unknown.
    pub fn process<T: Process>(&self, pid: ProcessId) -> Option<&T> {
        self.procs[pid.0]
            .as_deref()
            .and_then(|p| (p as &dyn Any).downcast_ref::<T>())
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        arena::put(arena::Parts {
            queue: std::mem::replace(&mut self.core.queue, EventQueue::hollow()),
            procs: std::mem::take(&mut self.procs),
            rngs: std::mem::take(&mut self.core.rngs),
            resources: std::mem::take(&mut self.core.resources),
        });
    }
}

/// Handler-side view of the kernel: clock, event queue, resources, RNG.
pub struct Ctx<'a> {
    core: &'a mut Core,
    pid: ProcessId,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the process handling the current event.
    #[inline]
    pub fn self_id(&self) -> ProcessId {
        self.pid
    }

    /// Deliver `msg` to `target` at the current instant (after all events
    /// already queued for this instant).
    pub fn send(&mut self, target: ProcessId, msg: Message) {
        self.core.queue.push(self.core.now, target, msg);
    }

    /// Deliver `msg` to `target` after `delay`.
    pub fn send_in(&mut self, delay: Dur, target: ProcessId, msg: Message) {
        self.core.queue.push(self.core.now + delay, target, msg);
    }

    /// Deliver `msg` back to this process after `delay`.
    pub fn send_self_in(&mut self, delay: Dur, msg: Message) {
        let pid = self.pid;
        self.send_in(delay, pid, msg);
    }

    /// Submit a job of `service` demand to resource `rid`, arriving now;
    /// `msg` is delivered to `target` when the job completes under FCFS.
    /// Returns the completion instant.
    pub fn use_resource_for(
        &mut self,
        rid: ResourceId,
        service: Dur,
        target: ProcessId,
        msg: Message,
    ) -> SimTime {
        let done = self.schedule_observed(rid, service);
        self.core.queue.push(done, target, msg);
        done
    }

    /// Schedule on the resource and report the acquisition to the probe.
    fn schedule_observed(&mut self, rid: ResourceId, service: Dur) -> SimTime {
        let now = self.core.now;
        let busy_servers = self.core.resources[rid.0].busy_servers(now);
        let done = self.core.resources[rid.0].schedule(now, service);
        if let Some(probe) = self.core.probe.as_mut() {
            probe.record(ProbeEvent::ResourceAcquire {
                rid,
                arrived: now,
                start: done - service,
                completion: done,
                service,
                busy_servers,
            });
        }
        done
    }

    /// Like [`Ctx::use_resource_for`] with this process as the target.
    pub fn use_resource(&mut self, rid: ResourceId, service: Dur, msg: Message) -> SimTime {
        let pid = self.pid;
        self.use_resource_for(rid, service, pid, msg)
    }

    /// Occupy resource time without any completion notification (e.g.
    /// protocol processing whose completion is accounted for elsewhere).
    /// Returns the completion instant.
    pub fn occupy_resource(&mut self, rid: ResourceId, service: Dur) -> SimTime {
        self.schedule_observed(rid, service)
    }

    /// Read-only view of a resource's statistics.
    pub fn resource(&self, rid: ResourceId) -> &Resource {
        &self.core.resources[rid.0]
    }

    /// This process's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rngs[self.pid.0]
    }

    /// Create a new process mid-run. Its `on_start` runs as soon as the
    /// current handler returns. Returns the new process id (valid
    /// immediately as a message target).
    pub fn spawn(&mut self, p: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.core.next_pid);
        self.core.next_pid += 1;
        self.core.pending_spawns.push(p);
        pid
    }

    /// Halt the simulation after the current handler returns.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }

    /// Fold an application-level tag into the determinism trace digest.
    pub fn trace_tag(&mut self, tag: u64) {
        self.core.trace.record_tag(tag);
    }

    /// Whether a probe is attached. Use to skip expensive event *inputs*
    /// (string formatting etc.); [`Ctx::probe_emit`] already skips event
    /// construction itself.
    #[inline]
    pub fn probe_enabled(&self) -> bool {
        self.core.probe.is_some()
    }

    /// Emit a probe event. The closure runs — i.e. the event is built —
    /// only when a probe is attached, so a disabled bus costs one branch.
    #[inline]
    pub fn probe_emit(&mut self, f: impl FnOnce(SimTime) -> ProbeEvent) {
        if let Some(probe) = self.core.probe.as_mut() {
            probe.record(f(self.core.now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    struct Echo {
        heard: Vec<u64>,
        peer: Option<ProcessId>,
        bounces: u32,
    }

    impl Process for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let v = msg.downcast::<u64>().unwrap();
            self.heard.push(v);
            if let Some(peer) = self.peer {
                if self.bounces > 0 {
                    self.bounces -= 1;
                    ctx.send_in(Dur::micros(10), peer, Message::new(v + 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Sim::new(1);
        let a = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: None,
            bounces: 0,
        }));
        let b = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: Some(a),
            bounces: 3,
        }));
        sim.schedule_at(SimTime::ZERO, b, Message::new(0u64));
        let end = sim.run();
        // b hears 0 at t=0, sends to a at 10us; a is a sink.
        assert_eq!(end.as_nanos(), 10_000);
        let a_ref: &Echo = sim.process(a).unwrap();
        assert_eq!(a_ref.heard, vec![1]);
    }

    struct Starter;
    impl Process for Starter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_self_in(Dur::nanos(7), Message::new(1u64));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            ctx.stop();
        }
    }

    #[test]
    fn on_start_runs_and_stop_halts() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Starter));
        sim.schedule_at(SimTime::from_nanos(100), p, Message::new(2u64));
        let end = sim.run();
        assert_eq!(end.as_nanos(), 7); // stopped before the t=100 event
        assert_eq!(sim.events_dispatched(), 1);
    }

    struct Spawner {
        child_heard: Option<ProcessId>,
    }
    struct Child {
        heard: u32,
    }
    impl Process for Child {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            self.heard += 1;
        }
    }
    impl Process for Spawner {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            let child = ctx.spawn(Box::new(Child { heard: 0 }));
            self.child_heard = Some(child);
            ctx.send_in(Dur::nanos(1), child, Message::new(()));
        }
    }

    #[test]
    fn spawn_mid_run_is_addressable() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Spawner { child_heard: None }));
        sim.schedule_at(SimTime::ZERO, p, Message::new(()));
        sim.run();
        let spawner: &Spawner = sim.process(p).unwrap();
        let child_pid = spawner.child_heard.unwrap();
        let child: &Child = sim.process(child_pid).unwrap();
        assert_eq!(child.heard, 1);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Echo {
            heard: vec![],
            peer: None,
            bounces: 0,
        }));
        sim.schedule_at(SimTime::from_nanos(50), p, Message::new(1u64));
        sim.schedule_at(SimTime::from_nanos(150), p, Message::new(2u64));
        let t = sim.run_until(SimTime::from_nanos(100));
        assert_eq!(t.as_nanos(), 100);
        assert_eq!(sim.events_dispatched(), 1);
        sim.run();
        assert_eq!(sim.events_dispatched(), 2);
    }

    #[test]
    fn resource_completion_delivers_message() {
        struct Worker {
            done_at: Vec<u64>,
            cpu: ResourceId,
        }
        impl Process for Worker {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
                match msg.downcast::<&'static str>() {
                    Ok("job") => {
                        ctx.use_resource(self.cpu, Dur::nanos(100), Message::new("done"));
                        ctx.use_resource(self.cpu, Dur::nanos(100), Message::new("done"));
                    }
                    Ok(_) => self.done_at.push(ctx.now().as_nanos()),
                    Err(_) => panic!("unexpected message"),
                }
            }
        }
        let mut sim = Sim::new(0);
        let cpu = sim.add_resource("cpu", 1);
        let w = sim.add_process(Box::new(Worker {
            done_at: vec![],
            cpu,
        }));
        sim.schedule_at(SimTime::ZERO, w, Message::new("job"));
        sim.run();
        let w_ref: &Worker = sim.process(w).unwrap();
        assert_eq!(w_ref.done_at, vec![100, 200]); // serialized on one server
    }

    #[test]
    fn determinism_same_seed_same_digest() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(seed);
            let a = sim.add_process(Box::new(Echo {
                heard: vec![],
                peer: None,
                bounces: 0,
            }));
            let b = sim.add_process(Box::new(Echo {
                heard: vec![],
                peer: Some(a),
                bounces: 10,
            }));
            sim.schedule_at(SimTime::ZERO, b, Message::new(0u64));
            sim.run();
            (sim.trace_digest(), sim.events_dispatched())
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn rng_streams_differ_per_process() {
        let mut sim = Sim::new(9);
        struct R {
            v: u64,
        }
        impl Process for R {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _m: Message) {
                self.v = ctx.rng().next_u64();
            }
        }
        let a = sim.add_process(Box::new(R { v: 0 }));
        let b = sim.add_process(Box::new(R { v: 0 }));
        sim.schedule_at(SimTime::ZERO, a, Message::new(()));
        sim.schedule_at(SimTime::ZERO, b, Message::new(()));
        sim.run();
        let ra: &R = sim.process(a).unwrap();
        let rb: &R = sim.process(b).unwrap();
        assert_ne!(ra.v, rb.v);
    }

    #[test]
    fn max_events_caps_runaway() {
        struct Loopy;
        impl Process for Loopy {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _m: Message) {
                ctx.send_self_in(Dur::nanos(1), Message::new(()));
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.add_process(Box::new(Loopy));
        sim.schedule_at(SimTime::ZERO, p, Message::new(()));
        sim.set_max_events(1000);
        sim.run();
        assert_eq!(sim.events_dispatched(), 1000);
    }
}
