//! Wall-clock self-profiling for the simulation kernel (`HPSOCK_TELEMETRY`).
//!
//! The probe bus ([`crate::probe`]) observes *simulated* time; this module
//! observes the *wall clock* of the engine itself, answering questions the
//! probe bus cannot — how much of a sharded run is barrier wait, how wide
//! the conservative safe windows really are, how many events cross shards
//! — without perturbing results: wall-clock counters are accumulated in
//! per-worker buffers (no shared-state writes on the dispatch hot path),
//! never feed the [`crate::trace::TraceDigest`], and are flushed to disk
//! only after the run's threads have joined.
//!
//! ## Activation
//!
//! Set `HPSOCK_TELEMETRY=<dir>` (strictly parsed: an empty value is an
//! error naming the variable, and the directory is created on demand like
//! `HPSOCK_TRACE`'s `ensure_trace_dir`), or scope it in-process with
//! [`with_telemetry_dir`] — the test-friendly override that mirrors
//! [`crate::shard::with_shard_count`], because `std::env::set_var` is
//! undefined behaviour on glibc while other threads may call `getenv`.
//!
//! ## Outputs (written under the configured directory)
//!
//! * `run_report.json` — machine-readable summary of the **last completed
//!   run** (each kernel run overwrites it; a figure sweep therefore leaves
//!   the report of its final simulation): mode, wall time, events/sec,
//!   per-shard utilization, and log-spaced-histogram quantile summaries
//!   ([`Histogram::summarize`]) of safe-window widths and per-round event
//!   counts. Written for sequential and sharded runs alike.
//! * `shard_rounds.csv` — one row per (round, worker) of a sharded run:
//!   safe-window width, events dispatched, cross-shard messages
//!   routed/received, barrier-wait nanoseconds, busy nanoseconds and the
//!   idle fraction.
//! * `shard_lanes.json` — per-worker Chrome-trace lanes (one `shard N`
//!   track each, reusing [`StreamingTraceWriter`]) with barrier / merge /
//!   drain / dispatch spans on the wall-clock timeline; load it in
//!   Perfetto to *see* where a slow sharded run spends its time.
//!
//! Telemetry output never lands in `HPSOCK_RESULTS` or `HPSOCK_TRACE`
//! directories, so result trees stay byte-comparable across telemetry
//! settings.

use crate::probe::{ProbeEvent, StreamingTraceWriter};
use crate::stats::Histogram;
use crate::time::SimTime;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Strictly parse an `HPSOCK_TELEMETRY` value: any non-empty path is the
/// output directory; an empty (or all-whitespace) value is a hard error
/// naming the variable, mirroring `HPSOCK_SHARDS` / `HPSOCK_SEEDS`.
pub fn parse_telemetry_dir(raw: &str) -> Result<PathBuf, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "HPSOCK_TELEMETRY must name an output directory, got {raw:?} \
             (unset it to disable telemetry)"
        ));
    }
    Ok(PathBuf::from(trimmed))
}

thread_local! {
    /// Per-thread override consulted by [`configured_telemetry`] before
    /// the `HPSOCK_TELEMETRY` environment variable: `Some(None)` forces
    /// telemetry off, `Some(Some(dir))` forces it on into `dir`.
    static TELEMETRY_OVERRIDE: RefCell<Option<Option<PathBuf>>> = const { RefCell::new(None) };
}

/// The telemetry override active on this thread, if any. Thread pools that
/// fan simulation work out to workers (e.g. the experiment sweeps) should
/// capture this on the submitting thread and re-install it in each worker
/// via [`with_telemetry_dir`], exactly like
/// [`crate::shard::shard_override`].
pub fn telemetry_override() -> Option<Option<PathBuf>> {
    TELEMETRY_OVERRIDE.with(|c| c.borrow().clone())
}

/// Run `f` with [`configured_telemetry`] returning `dir` on this thread,
/// regardless of the `HPSOCK_TELEMETRY` environment variable (`None`
/// forces telemetry off); the previous override is restored afterwards,
/// including on unwind. This is how tests toggle telemetry — calling
/// `std::env::set_var` mid-run is undefined behaviour on glibc while any
/// other thread may call `getenv`.
pub fn with_telemetry_dir<T>(dir: Option<&Path>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Option<Option<PathBuf>>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take().expect("restored once");
            TELEMETRY_OVERRIDE.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(Some(
        TELEMETRY_OVERRIDE.with(|c| c.replace(Some(dir.map(Path::to_path_buf)))),
    ));
    f()
}

/// The telemetry directory requested via [`with_telemetry_dir`] or, absent
/// an override, the `HPSOCK_TELEMETRY` environment variable (default:
/// disabled). Invalid values abort with a message naming the variable
/// rather than silently disabling telemetry.
pub fn configured_telemetry() -> Option<PathBuf> {
    if let Some(over) = telemetry_override() {
        return over;
    }
    match std::env::var("HPSOCK_TELEMETRY") {
        Ok(raw) => Some(parse_telemetry_dir(&raw).unwrap_or_else(|e| panic!("{e}"))),
        Err(_) => None,
    }
}

/// Create the telemetry output directory (and parents) if missing,
/// panicking with a message that names the variable and the path —
/// the `ensure_trace_dir` precedent.
pub fn ensure_telemetry_dir(dir: &Path) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        panic!(
            "HPSOCK_TELEMETRY={}: cannot create the telemetry directory: {e}",
            dir.display()
        )
    });
}

/// One worker's wall-clock measurements for one protocol round. All
/// `*_ns` durations are wall-clock; `start_ns` is the offset from the
/// run's start.
#[derive(Debug, Clone, Default)]
pub struct RoundSample {
    /// Wall-clock offset of the round's start since the run began.
    pub start_ns: u64,
    /// Width of the safe window actually dispatched (`w_end − min_next`),
    /// in *simulated* nanoseconds — the one virtual-time column here,
    /// kept because tiny windows are the usual reason sharding loses.
    pub window_ns: u64,
    /// Events this worker dispatched this round.
    pub events: u64,
    /// Cross-shard messages this worker routed into peer mailboxes.
    pub sent: u64,
    /// Cross-shard messages this worker folded in from its mailbox.
    pub recv: u64,
    /// Window computation + pair-slot drain wall time.
    pub drain_ns: u64,
    /// Wall time blocked on the round barrier (the protocol's only one).
    pub b1_wait_ns: u64,
    /// Dispatch-loop wall time, including the publish/flush/deposit tail.
    pub dispatch_ns: u64,
    /// Always 0 since the merge barrier was fused into the round barrier;
    /// kept so the pinned `shard_rounds.csv` schema is stable across PRs.
    pub b2_wait_ns: u64,
    /// Deferred digest/probe cutoff-merge wall time (worker 0; 0 elsewhere).
    pub merge_ns: u64,
}

impl RoundSample {
    /// Wall time spent doing useful work this round.
    pub fn busy_ns(&self) -> u64 {
        self.drain_ns + self.dispatch_ns + self.merge_ns
    }

    /// Wall time spent blocked on the two barriers this round.
    pub fn barrier_wait_ns(&self) -> u64 {
        self.b1_wait_ns + self.b2_wait_ns
    }

    /// Fraction of the round's accounted wall time spent waiting.
    pub fn idle_frac(&self) -> f64 {
        let busy = self.busy_ns();
        let wait = self.barrier_wait_ns();
        if busy + wait == 0 {
            0.0
        } else {
            wait as f64 / (busy + wait) as f64
        }
    }
}

/// Per-worker telemetry buffer: filled by the worker thread alone during
/// the run (no shared-state writes on the hot path), flushed by
/// `run_sharded` after the threads have joined.
#[derive(Debug)]
pub struct WorkerTelemetry {
    /// The worker's shard index.
    pub worker: usize,
    /// The run's start instant; all `start_ns` offsets are relative to it.
    pub epoch: Instant,
    /// One sample per dispatched round, in round order.
    pub rounds: Vec<RoundSample>,
}

impl WorkerTelemetry {
    /// An empty buffer for shard `worker` of a run that started at `epoch`.
    pub fn new(worker: usize, epoch: Instant) -> Self {
        WorkerTelemetry {
            worker,
            epoch,
            rounds: Vec::new(),
        }
    }
}

/// Per-round stopwatch used by the sharded worker loop: `start` at the
/// top of the round, then one checkpoint call per protocol step; `finish`
/// yields the completed [`RoundSample`].
pub(crate) struct RoundClock {
    last: Instant,
    sample: RoundSample,
}

impl RoundClock {
    pub(crate) fn start(epoch: Instant) -> Self {
        let now = Instant::now();
        RoundClock {
            last: now,
            sample: RoundSample {
                start_ns: now.duration_since(epoch).as_nanos() as u64,
                ..RoundSample::default()
            },
        }
    }

    fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let d = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        d
    }

    /// The round barrier released.
    pub(crate) fn barrier(&mut self) {
        self.sample.b1_wait_ns = self.lap();
    }

    /// The (worker-0) deferred cutoff merge finished; 0-lap elsewhere.
    pub(crate) fn merged(&mut self) {
        self.sample.merge_ns = self.lap();
    }

    /// Window computed and pair slots drained into the local queue.
    pub(crate) fn drained(&mut self) {
        self.sample.drain_ns = self.lap();
    }

    /// The dispatch loop finished.
    pub(crate) fn dispatched(&mut self) {
        self.sample.dispatch_ns = self.lap();
    }

    pub(crate) fn finish(
        mut self,
        window_ns: u64,
        events: u64,
        sent: u64,
        recv: u64,
    ) -> RoundSample {
        // Publish/flush/deposit tail, folded into the dispatch span.
        self.sample.dispatch_ns += self.lap();
        self.sample.window_ns = window_ns;
        self.sample.events = events;
        self.sample.sent = sent;
        self.sample.recv = recv;
        self.sample
    }
}

/// Quantile summary of one value series, via [`Histogram::summarize`].
#[derive(Debug, Clone, Default)]
pub struct TailSummary {
    /// Exact smallest observation.
    pub min: f64,
    /// Approximate median (sub-bin error, see [`Histogram::quantile`]).
    pub p50: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Approximate 99.9th percentile.
    pub p999: f64,
    /// Exact largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: u64,
}

impl TailSummary {
    /// Summarize `values` (all zeros if empty).
    pub fn of(values: &[f64]) -> TailSummary {
        let h = Histogram::summarize(values);
        TailSummary {
            min: h.min(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
            n: h.total(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"min\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}, \"n\": {}}}",
            json_f64(self.min),
            json_f64(self.p50),
            json_f64(self.p99),
            json_f64(self.p999),
            json_f64(self.max),
            self.n
        )
    }
}

/// One worker's run totals in a [`RunReport`].
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Shard index.
    pub worker: usize,
    /// Rounds this worker completed.
    pub rounds: u64,
    /// Events this worker dispatched.
    pub events: u64,
    /// Cross-shard messages routed out / folded in.
    pub sent: u64,
    /// Cross-shard messages received.
    pub recv: u64,
    /// Total busy wall time (drain + dispatch + merge).
    pub busy_ns: u64,
    /// Total barrier-wait wall time.
    pub barrier_wait_ns: u64,
    /// `busy_ns / wall_ns` — the shard's utilization over the run.
    pub utilization: f64,
}

/// The machine-readable run summary written to `run_report.json` and kept
/// in memory for [`last_report`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `"sequential"` or `"sharded"`.
    pub mode: &'static str,
    /// Worker-thread count (1 for sequential runs).
    pub shards: usize,
    /// Total wall time of the run, nanoseconds.
    pub wall_ns: u64,
    /// Events dispatched during the run.
    pub events: u64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// Completed network flows under the flow-level model (0 under the
    /// packet model, where the unit of work is the event, not the flow).
    pub flows: u64,
    /// `flows / wall seconds` — the like-for-like rate to compare against
    /// a packet run's events/sec when judging the fluid fast path.
    pub flows_per_sec: f64,
    /// Protocol rounds (0 for sequential runs).
    pub rounds: u64,
    /// Per-shard totals (one entry, the whole run, for sequential runs).
    pub workers: Vec<WorkerSummary>,
    /// Distribution of per-round safe-window widths (simulated ns).
    pub window_ns: TailSummary,
    /// Distribution of per-(round, worker) dispatched-event counts.
    pub round_events: TailSummary,
}

/// The last run's report, plus the file-write lock: concurrent sims (e.g.
/// a parameter sweep) serialize their flushes here, and the stored report
/// — like the files — reflects whichever run completed last.
static LAST_REPORT: Mutex<Option<RunReport>> = Mutex::new(None);

/// Completed network flows this run, counted by the flow-level network
/// engine (`HPSOCK_NETMODEL=flow`); stays 0 under the packet model. Like
/// [`LAST_REPORT`] this is process-wide last-run-wins state: the kernel
/// resets it when a run starts and the flush folds it into the report, so
/// concurrent sweep runs interleave (and the single-run bench/CI flows
/// figures are exact).
static FLOWS: AtomicU64 = AtomicU64::new(0);

/// Record `n` completed flows for the current run (called by the
/// flow-level network engine once per delivered flow).
pub fn count_flows(n: u64) {
    FLOWS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn reset_flows() {
    FLOWS.store(0, Ordering::Relaxed);
}

pub(crate) fn current_flows() -> u64 {
    FLOWS.load(Ordering::Relaxed)
}

/// The [`RunReport`] of the most recently flushed run, if any run has
/// flushed telemetry in this process. This is the in-memory twin of
/// `run_report.json` — benches use it to print wall-clock events/sec
/// without re-parsing the file.
pub fn last_report() -> Option<RunReport> {
    LAST_REPORT
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Render a finite f64 for JSON (guards against `inf`/`NaN`, which are
/// not valid JSON tokens; they can only arise from a zero-wall-time run).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn write_file(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| {
        panic!(
            "HPSOCK_TELEMETRY={}: cannot write {}: {e}",
            dir.display(),
            path.display()
        )
    });
}

fn report_json(rep: &RunReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", rep.mode));
    s.push_str(&format!("  \"shards\": {},\n", rep.shards));
    s.push_str(&format!("  \"wall_ns\": {},\n", rep.wall_ns));
    s.push_str(&format!("  \"events\": {},\n", rep.events));
    s.push_str(&format!(
        "  \"events_per_sec\": {},\n",
        json_f64(rep.events_per_sec)
    ));
    s.push_str(&format!("  \"flows\": {},\n", rep.flows));
    s.push_str(&format!(
        "  \"flows_per_sec\": {},\n",
        json_f64(rep.flows_per_sec)
    ));
    s.push_str(&format!("  \"rounds\": {},\n", rep.rounds));
    s.push_str("  \"workers\": [\n");
    for (i, w) in rep.workers.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"worker\": {}, \"rounds\": {}, \"events\": {}, \"sent\": {}, \
             \"recv\": {}, \"busy_ns\": {}, \"barrier_wait_ns\": {}, \"utilization\": {}}}{}\n",
            w.worker,
            w.rounds,
            w.events,
            w.sent,
            w.recv,
            w.busy_ns,
            w.barrier_wait_ns,
            json_f64(w.utilization),
            if i + 1 == rep.workers.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"window_ns\": {},\n", rep.window_ns.to_json()));
    s.push_str(&format!(
        "  \"round_events\": {}\n",
        rep.round_events.to_json()
    ));
    s.push_str("}\n");
    s
}

/// Flush a sequential run's telemetry: `run_report.json` only (there are
/// no rounds, mailboxes or barriers to itemize). The single worker entry
/// covers the whole run.
pub(crate) fn flush_sequential(dir: &Path, wall_ns: u64, events: u64) {
    let flows = current_flows();
    let rep = RunReport {
        mode: "sequential",
        shards: 1,
        wall_ns,
        events,
        events_per_sec: rate(events, wall_ns),
        flows,
        flows_per_sec: rate(flows, wall_ns),
        rounds: 0,
        workers: vec![WorkerSummary {
            worker: 0,
            rounds: 0,
            events,
            sent: 0,
            recv: 0,
            busy_ns: wall_ns,
            barrier_wait_ns: 0,
            utilization: 1.0,
        }],
        window_ns: TailSummary::default(),
        round_events: TailSummary::default(),
    };
    let mut last = LAST_REPORT.lock().unwrap_or_else(PoisonError::into_inner);
    ensure_telemetry_dir(dir);
    write_file(dir, "run_report.json", &report_json(&rep));
    *last = Some(rep);
}

/// Flush a sharded run's telemetry: `shard_rounds.csv`, the
/// `shard_lanes.json` Chrome trace and `run_report.json`. `events` is the
/// number of events dispatched by this run (the sum of the CSV's `events`
/// column — pinned by tests).
pub(crate) fn flush_sharded(dir: &Path, wall_ns: u64, events: u64, workers: &[WorkerTelemetry]) {
    let rounds = workers.iter().map(|w| w.rounds.len()).max().unwrap_or(0);

    let mut csv =
        String::from("round,worker,window_ns,events,sent,recv,barrier_wait_ns,busy_ns,idle_frac\n");
    for r in 0..rounds {
        for w in workers {
            let Some(s) = w.rounds.get(r) else { continue };
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.6}\n",
                r,
                w.worker,
                s.window_ns,
                s.events,
                s.sent,
                s.recv,
                s.barrier_wait_ns(),
                s.busy_ns(),
                s.idle_frac()
            ));
        }
    }

    let summaries: Vec<WorkerSummary> = workers
        .iter()
        .map(|w| {
            let busy: u64 = w.rounds.iter().map(RoundSample::busy_ns).sum();
            WorkerSummary {
                worker: w.worker,
                rounds: w.rounds.len() as u64,
                events: w.rounds.iter().map(|s| s.events).sum(),
                sent: w.rounds.iter().map(|s| s.sent).sum(),
                recv: w.rounds.iter().map(|s| s.recv).sum(),
                busy_ns: busy,
                barrier_wait_ns: w.rounds.iter().map(RoundSample::barrier_wait_ns).sum(),
                utilization: if wall_ns == 0 {
                    0.0
                } else {
                    busy as f64 / wall_ns as f64
                },
            }
        })
        .collect();
    // Windows are ragged per destination shard, so every worker's view is
    // a distinct observation.
    let window_vals: Vec<f64> = workers
        .iter()
        .flat_map(|w| w.rounds.iter().map(|s| s.window_ns as f64))
        .collect();
    let round_event_vals: Vec<f64> = workers
        .iter()
        .flat_map(|w| w.rounds.iter().map(|s| s.events as f64))
        .collect();
    let flows = current_flows();
    let rep = RunReport {
        mode: "sharded",
        shards: workers.len(),
        wall_ns,
        events,
        events_per_sec: rate(events, wall_ns),
        flows,
        flows_per_sec: rate(flows, wall_ns),
        rounds: rounds as u64,
        workers: summaries,
        window_ns: TailSummary::of(&window_vals),
        round_events: TailSummary::of(&round_event_vals),
    };

    let mut last = LAST_REPORT.lock().unwrap_or_else(PoisonError::into_inner);
    ensure_telemetry_dir(dir);
    write_file(dir, "shard_rounds.csv", &csv);
    write_lanes(dir, workers);
    write_file(dir, "run_report.json", &report_json(&rep));
    *last = Some(rep);
}

fn rate(events: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        events as f64 / (wall_ns as f64 / 1e9)
    }
}

/// Lane rounds written per worker. Long runs go through hundreds of
/// thousands of rounds; at up to 5 spans each that is gigabytes of JSON
/// and far beyond what trace viewers load, so the lanes keep the first
/// `MAX_LANE_ROUNDS` rounds (enough to see the steady-state rhythm) and
/// the full record stays in `shard_rounds.csv`.
const MAX_LANE_ROUNDS: usize = 20_000;

/// Write the per-worker Chrome-trace lanes: one `shard N` track per
/// worker, with `barrier` / `merge` / `drain` / `dispatch` spans laid out
/// on the wall-clock timeline (nanosecond offsets from the run start,
/// rendered by the trace writer as microseconds). Truncated to
/// [`MAX_LANE_ROUNDS`] rounds per worker.
fn write_lanes(dir: &Path, workers: &[WorkerTelemetry]) {
    let path = dir.join("shard_lanes.json");
    let writer = StreamingTraceWriter::create(&path, &[]).unwrap_or_else(|e| {
        panic!(
            "HPSOCK_TELEMETRY={}: cannot write {}: {e}",
            dir.display(),
            path.display()
        )
    });
    {
        let mut probe = writer.probe();
        let mut id = 0u64;
        for w in workers {
            let track = format!("shard {}", w.worker);
            for s in w.rounds.iter().take(MAX_LANE_ROUNDS) {
                let mut t = s.start_ns;
                let segments = [
                    ("barrier", s.b1_wait_ns),
                    ("merge", s.merge_ns),
                    ("drain", s.drain_ns),
                    ("dispatch", s.dispatch_ns),
                ];
                for (label, d) in segments {
                    if d == 0 {
                        continue;
                    }
                    probe.record(ProbeEvent::SpanBegin {
                        track: track.clone(),
                        label: label.to_string(),
                        time: SimTime::from_nanos(t),
                        id,
                    });
                    t += d;
                    probe.record(ProbeEvent::SpanEnd {
                        track: track.clone(),
                        time: SimTime::from_nanos(t),
                        id,
                    });
                    id += 1;
                }
            }
        }
    }
    if let Err(e) = writer.finish() {
        panic!(
            "HPSOCK_TELEMETRY={}: cannot write {}: {e}",
            dir.display(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_dir_parsing_is_strict() {
        assert_eq!(parse_telemetry_dir("out"), Ok(PathBuf::from("out")));
        assert_eq!(
            parse_telemetry_dir(" tel/run1 "),
            Ok(PathBuf::from("tel/run1"))
        );
        let err = parse_telemetry_dir("").unwrap_err();
        assert!(
            err.contains("HPSOCK_TELEMETRY"),
            "names the variable: {err}"
        );
        assert!(parse_telemetry_dir("   ").is_err(), "whitespace rejected");
    }

    #[test]
    fn with_telemetry_dir_overrides_and_restores() {
        assert_eq!(telemetry_override(), None);
        let dir = PathBuf::from("tel-a");
        let got = with_telemetry_dir(Some(&dir), || {
            assert_eq!(telemetry_override(), Some(Some(dir.clone())));
            // Nesting: an inner forced-off scope wins, then restores.
            with_telemetry_dir(None, configured_telemetry)
        });
        assert_eq!(got, None, "inner scope forced telemetry off");
        assert_eq!(telemetry_override(), None);
        // Restored on unwind too.
        let r = std::panic::catch_unwind(|| {
            with_telemetry_dir(Some(Path::new("tel-b")), || panic!("boom"))
        });
        assert!(r.is_err());
        assert_eq!(telemetry_override(), None);
    }

    #[test]
    fn ensure_telemetry_dir_creates_missing_directories() {
        let base = std::env::temp_dir().join(format!("hpsock_tel_ensure_{}", std::process::id()));
        let nested = base.join("a/b");
        let _ = std::fs::remove_dir_all(&base);
        ensure_telemetry_dir(&nested);
        assert!(nested.is_dir());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn round_sample_accounting() {
        let s = RoundSample {
            drain_ns: 10,
            b1_wait_ns: 30,
            dispatch_ns: 50,
            b2_wait_ns: 10,
            merge_ns: 0,
            ..RoundSample::default()
        };
        assert_eq!(s.busy_ns(), 60);
        assert_eq!(s.barrier_wait_ns(), 40);
        assert!((s.idle_frac() - 0.4).abs() < 1e-12);
        assert_eq!(RoundSample::default().idle_frac(), 0.0);
    }

    #[test]
    fn report_json_is_valid_and_self_consistent() {
        let rep = RunReport {
            mode: "sharded",
            shards: 2,
            wall_ns: 1_000_000,
            events: 500,
            events_per_sec: rate(500, 1_000_000),
            flows: 20,
            flows_per_sec: rate(20, 1_000_000),
            rounds: 7,
            workers: vec![
                WorkerSummary {
                    worker: 0,
                    rounds: 7,
                    events: 300,
                    sent: 12,
                    recv: 11,
                    busy_ns: 600_000,
                    barrier_wait_ns: 300_000,
                    utilization: 0.6,
                },
                WorkerSummary {
                    worker: 1,
                    rounds: 7,
                    events: 200,
                    sent: 11,
                    recv: 12,
                    busy_ns: 400_000,
                    barrier_wait_ns: 500_000,
                    utilization: 0.4,
                },
            ],
            window_ns: TailSummary::of(&[10_000.0, 12_000.0, 9_000.0]),
            round_events: TailSummary::of(&[30.0, 40.0, 0.0]),
        };
        let js = report_json(&rep);
        assert!(js.contains("\"mode\": \"sharded\""));
        assert!(js.contains("\"rounds\": 7"));
        assert!(js.contains("\"events_per_sec\": 500000"));
        assert!(js.contains("\"p999\""));
        // Crude but effective structural checks: balanced braces/brackets,
        // no JSON-invalid tokens.
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        assert_eq!(js.matches('[').count(), js.matches(']').count());
        assert!(!js.contains("inf") && !js.contains("NaN"));
    }

    #[test]
    fn zero_wall_time_yields_finite_rates() {
        assert_eq!(rate(100, 0), 0.0);
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    /// A synthetic zero-width round (every duration 0 — coarse clocks can
    /// report that) and a zero-wall-time run must still produce a finite
    /// idle fraction and a JSON report with no `inf`/`NaN` tokens.
    #[test]
    fn zero_width_rounds_serialize_finite() {
        let zero = RoundSample::default();
        assert_eq!(zero.busy_ns(), 0);
        assert_eq!(zero.barrier_wait_ns(), 0);
        assert_eq!(zero.idle_frac(), 0.0, "0/0 accounted time is 0, not NaN");
        let rep = RunReport {
            mode: "sharded",
            shards: 1,
            wall_ns: 0,
            events: 100,
            events_per_sec: rate(100, 0),
            flows: 0,
            flows_per_sec: rate(0, 0),
            rounds: 1,
            workers: vec![WorkerSummary {
                worker: 0,
                rounds: 1,
                events: 100,
                sent: 0,
                recv: 0,
                busy_ns: 0,
                barrier_wait_ns: 0,
                utilization: 0.0,
            }],
            window_ns: TailSummary::of(&[0.0]),
            round_events: TailSummary::of(&[]),
        };
        let js = report_json(&rep);
        assert!(js.contains("\"events_per_sec\": 0"));
        assert!(!js.contains("inf") && !js.contains("NaN"), "{js}");
    }
}
