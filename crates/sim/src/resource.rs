//! Analytic FCFS multi-server resources.
//!
//! CPUs, NIC engines and links are modeled as non-preemptive first-come
//! first-served stations with `c` identical servers. Because the kernel
//! dispatches events in non-decreasing time order, jobs arrive at a resource
//! in time order, and the classic "assign to the earliest-free server"
//! rule computes the exact FCFS completion time in O(c) without simulating
//! the queue explicitly: each `schedule` call immediately returns the
//! completion instant, which the caller turns into a future event.

use crate::time::{Dur, SimTime};

/// Handle to a [`Resource`] registered with the simulation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// A non-preemptive FCFS station with a fixed number of identical servers.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Instant at which each server next becomes idle.
    free_at: Vec<SimTime>,
    /// Sum of all service demands ever scheduled (for utilization).
    busy: Dur,
    /// Sum of all queueing delays (time between arrival and service start).
    waited: Dur,
    /// Number of jobs scheduled.
    jobs: u64,
    /// Latest completion instant ever handed out.
    last_completion: SimTime,
}

impl Resource {
    /// Create a station with `servers >= 1` identical servers.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers >= 1, "a resource needs at least one server");
        Resource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            busy: Dur::ZERO,
            waited: Dur::ZERO,
            jobs: 0,
            last_completion: SimTime::ZERO,
        }
    }

    /// Schedule a job arriving `now` with the given `service` demand; returns
    /// the instant the job completes under FCFS.
    ///
    /// Callers must present arrivals in non-decreasing `now` order (the
    /// kernel guarantees this when called from event handlers).
    pub fn schedule(&mut self, now: SimTime, service: Dur) -> SimTime {
        // Earliest-free server.
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("resource has at least one server");
        let start = self.free_at[idx].max(now);
        let completion = start + service;
        self.free_at[idx] = completion;
        self.busy += service;
        self.waited += start.since(now);
        self.jobs += 1;
        self.last_completion = self.last_completion.max(completion);
        completion
    }

    /// The instant at which the earliest server becomes free (i.e. when a job
    /// arriving now could start).
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.free_at
            .iter()
            .min()
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now)
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Servers still serving (or backed up past) `now` — instantaneous
    /// occupancy, used by probe events to report queue pressure.
    pub fn busy_servers(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t > now).count()
    }

    /// Jobs scheduled so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total service demand scheduled so far.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Mean queueing delay experienced by jobs so far.
    pub fn mean_wait(&self) -> Dur {
        match self.waited.as_nanos().checked_div(self.jobs) {
            None => Dur::ZERO,
            Some(ns) => Dur::nanos(ns),
        }
    }

    /// Utilization over `[0, horizon]`: busy time divided by total server
    /// capacity. Clamped to 1.0.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let cap = horizon.as_nanos().saturating_mul(self.servers() as u64);
        if cap == 0 {
            0.0
        } else {
            (self.busy.as_nanos() as f64 / cap as f64).min(1.0)
        }
    }

    /// Latest completion instant handed out so far.
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Station name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn single_server_serializes() {
        let mut r = Resource::new("cpu", 1);
        assert_eq!(r.schedule(t(0), Dur::nanos(100)), t(100));
        assert_eq!(r.schedule(t(0), Dur::nanos(50)), t(150));
        assert_eq!(r.schedule(t(200), Dur::nanos(10)), t(210));
        assert_eq!(r.jobs(), 3);
        assert_eq!(r.busy_time(), Dur::nanos(160));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = Resource::new("cpu2", 2);
        assert_eq!(r.schedule(t(0), Dur::nanos(100)), t(100));
        assert_eq!(r.schedule(t(0), Dur::nanos(100)), t(100));
        // Third job queues behind the earlier finisher.
        assert_eq!(r.schedule(t(0), Dur::nanos(10)), t(110));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut r = Resource::new("link", 1);
        r.schedule(t(0), Dur::nanos(10));
        assert_eq!(r.schedule(t(1_000), Dur::nanos(10)), t(1_010));
    }

    #[test]
    fn wait_accounting() {
        let mut r = Resource::new("cpu", 1);
        r.schedule(t(0), Dur::nanos(100)); // no wait
        r.schedule(t(0), Dur::nanos(100)); // waits 100
        assert_eq!(r.mean_wait(), Dur::nanos(50));
    }

    #[test]
    fn utilization_bounds() {
        let mut r = Resource::new("cpu", 2);
        r.schedule(t(0), Dur::nanos(100));
        assert!((r.utilization(t(100)) - 0.5).abs() < 1e-12);
        assert_eq!(Resource::new("idle", 1).utilization(t(0)), 0.0);
    }

    #[test]
    fn earliest_start_reflects_backlog() {
        let mut r = Resource::new("cpu", 1);
        r.schedule(t(0), Dur::nanos(500));
        assert_eq!(r.earliest_start(t(100)), t(500));
        assert_eq!(r.earliest_start(t(700)), t(700));
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        let _ = Resource::new("bad", 0);
    }
}
