//! Cross-run reuse of kernel allocations.
//!
//! A parameter sweep runs thousands of short simulations per worker
//! thread; building each [`crate::Sim`] from nothing means re-growing the
//! event-queue ring, the process table and the RNG table every time. The
//! arena is a thread-local parking spot for those buffers: dropping a
//! `Sim` returns its (emptied) structures here, and the next `Sim::new`
//! on the same thread adopts them, so steady-state sweep workers stop
//! touching the allocator between points. Together with the thread-local
//! payload slot pool ([`crate::payload`]) this makes whole sweep points
//! allocation-free after warm-up.
//!
//! Reuse is invisible to the simulation: the queue is recycled to an
//! empty, sequence-zero state (its ring *shape* may stay tuned from the
//! previous run, which cannot affect pop order), and tables come back
//! empty. Digest determinism across fresh/recycled sims is pinned by
//! `recycled_sim_runs_identically` in the kernel tests.

use crate::event::EventQueue;
use crate::kernel::Process;
use crate::resource::Resource;
use rand::rngs::SmallRng;
use std::cell::{Cell, RefCell};

/// The buffers a [`crate::Sim`] can adopt from a previous run.
#[derive(Default)]
pub(crate) struct Parts {
    pub queue: EventQueue,
    pub procs: Vec<Option<Box<dyn Process>>>,
    pub rngs: Vec<SmallRng>,
    pub resources: Vec<Resource>,
}

std::thread_local! {
    static ARENA: RefCell<Option<Parts>> = const { RefCell::new(None) };
    static HITS: Cell<u64> = const { Cell::new(0) };
}

/// Adopt the parked buffers, if any; otherwise build fresh ones.
pub(crate) fn take() -> Parts {
    let parked = ARENA.try_with(|a| a.borrow_mut().take()).ok().flatten();
    match parked {
        Some(parts) => {
            HITS.with(|h| h.set(h.get() + 1));
            parts
        }
        None => Parts::default(),
    }
}

/// Park buffers for the next `Sim` on this thread. Contents are cleared
/// here (dropping any live processes/events); allocations are kept.
pub(crate) fn put(mut parts: Parts) {
    parts.queue.recycle();
    parts.procs.clear();
    parts.rngs.clear();
    parts.resources.clear();
    let _ = ARENA.try_with(|a| {
        let mut slot = a.borrow_mut();
        // Keep the roomier process table if two sims raced a slot.
        if slot
            .as_ref()
            .map_or(true, |old| old.procs.capacity() < parts.procs.capacity())
        {
            *slot = Some(parts);
        }
    });
}

/// How many times a `Sim` on this thread adopted recycled buffers.
pub fn reuse_hits() -> u64 {
    HITS.with(|h| h.get())
}

/// Drop this thread's parked buffers and payload slot pool (e.g. at the
/// end of a sweep worker's life).
pub fn trim() {
    let _ = ARENA.try_with(|a| a.borrow_mut().take());
    crate::payload::trim_pool();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip_and_count() {
        let before = reuse_hits();
        let mut parts = take();
        parts.procs.reserve(32);
        put(parts);
        let parts = take();
        assert!(parts.procs.capacity() >= 32, "capacity survives the park");
        assert!(parts.procs.is_empty() && parts.rngs.is_empty());
        assert_eq!(reuse_hits(), before + 1);
        put(parts);
        trim();
        // After trim the next take builds fresh parts.
        let parts = take();
        assert_eq!(reuse_hits(), before + 1);
        put(parts);
    }
}
