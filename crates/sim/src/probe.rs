//! `sim::probe` — a typed, zero-overhead-when-disabled observability bus.
//!
//! The kernel and the domain layers (net engine, DataCutter filters, the
//! vizserver pipeline) emit [`ProbeEvent`]s describing *what the simulation
//! did*: event dispatches, resource acquisitions (with queueing detail),
//! credit stalls, labelled spans, counters and gauges. A [`Probe`] sink
//! attached via [`crate::Sim::attach_probe`] receives them; with no probe
//! attached the emission sites reduce to a branch on an `Option` — the
//! event values are never even constructed (see [`crate::Ctx::probe_emit`]).
//!
//! Probes are **purely observational**: they never draw from the RNG
//! streams and never insert events, so the [`crate::TraceDigest`] of a run
//! is identical with and without a probe attached (this is pinned by the
//! determinism test-suite).
//!
//! [`Recorder`] is the batteries-included sink: it buffers events, folds
//! counters/gauges into a [`MetricRegistry`], and exports Chrome
//! trace-event JSON openable in Perfetto / `chrome://tracing`, with one
//! track per simulated resource plus one per named span track. The span
//! tracks also fold into flamegraph collapsed stacks ([`fold_spans`],
//! written as `.folded` files by [`write_folded`]).

use crate::kernel::ProcessId;
use crate::resource::ResourceId;
use crate::stats::{Histogram, Tally, TimeWeighted};
use crate::time::{Dur, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One observation on the probe bus.
#[derive(Debug, Clone)]
pub enum ProbeEvent {
    /// The kernel dispatched an event to `target` at `time`.
    Dispatch {
        /// Dispatch instant.
        time: SimTime,
        /// Receiving process.
        target: ProcessId,
    },
    /// A job was scheduled on a FCFS resource.
    ResourceAcquire {
        /// The station.
        rid: ResourceId,
        /// When the job arrived at the station.
        arrived: SimTime,
        /// When service actually started (`>= arrived` under backlog).
        start: SimTime,
        /// When service completes.
        completion: SimTime,
        /// Service demand.
        service: Dur,
        /// Servers busy at the arrival instant (before this job).
        busy_servers: usize,
    },
    /// Begin a labelled span on a named track (e.g. one filter's compute).
    SpanBegin {
        /// Track name; all spans with the same track share a timeline row.
        track: String,
        /// Span label.
        label: String,
        /// Start instant.
        time: SimTime,
        /// Caller-chosen id matching the corresponding [`ProbeEvent::SpanEnd`].
        id: u64,
    },
    /// End the span opened with the same `track`/`id`.
    SpanEnd {
        /// Track name.
        track: String,
        /// End instant.
        time: SimTime,
        /// Id from the matching [`ProbeEvent::SpanBegin`].
        id: u64,
    },
    /// Increment a named monotonic counter.
    Counter {
        /// Counter name.
        name: String,
        /// Instant of the increment.
        time: SimTime,
        /// Increment (usually 1.0).
        delta: f64,
    },
    /// Set a named piecewise-constant gauge (queue depths etc.).
    Gauge {
        /// Gauge name.
        name: String,
        /// Instant of the change.
        time: SimTime,
        /// New value.
        value: f64,
    },
    /// A sender sat blocked on flow-control credits for `[from, until]`,
    /// attributed to the resource it would otherwise have been feeding.
    Stall {
        /// The starved station (the sender's host-TX engine).
        rid: ResourceId,
        /// Stall start.
        from: SimTime,
        /// Stall end.
        until: SimTime,
    },
}

/// A sink for [`ProbeEvent`]s. Implementations must not interact with the
/// simulation (no RNG draws, no event insertion) — observation only.
pub trait Probe: Send {
    /// Receive one event.
    fn record(&mut self, ev: ProbeEvent);

    /// The kernel is about to dispatch the event with ordering key
    /// `(time, key)`; every `record` until the next call belongs to that
    /// dispatch. Only the sharded executor's buffering probe uses this (to
    /// replay per-shard streams in the sequential order); ordinary sinks
    /// can ignore it.
    fn begin_dispatch(&mut self, _time: SimTime, _key: u64) {}
}

/// Named counters, gauges and histograms, keyed deterministically.
///
/// Thin registry over the existing collectors: counters are plain running
/// sums, gauges are [`TimeWeighted`] signals, histograms are log-spaced
/// [`Histogram`]s (1 µs – 100 s when values are in µs). `BTreeMap` keys
/// make snapshot iteration order deterministic.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, TimeWeighted>,
    hists: BTreeMap<String, Histogram>,
    tallies: BTreeMap<String, Tally>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Record that gauge `name` changed to `value` at `t`.
    pub fn gauge_set(&mut self, name: &str, t: SimTime, value: f64) {
        self.gauges
            .entry(name.to_string())
            .or_default()
            .set(t, value);
    }

    /// Time-weighted mean of gauge `name` over `[0, end]`.
    pub fn gauge_mean(&self, name: &str, end: SimTime) -> f64 {
        self.gauges.get(name).map_or(0.0, |g| g.mean(end))
    }

    /// Latest value of gauge `name` (0 if never set).
    pub fn gauge_current(&self, name: &str) -> f64 {
        self.gauges.get(name).map_or(0.0, |g| g.current())
    }

    /// Iterate gauge names in order.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// Record an observation into histogram `name` (µs-scale bins,
    /// 1 µs – 100 s, created on first touch).
    pub fn hist_add(&mut self, name: &str, x: f64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::log_spaced(1.0, 1e8, 160))
            .add(x);
        self.tallies.entry(name.to_string()).or_default().add(x);
    }

    /// The histogram named `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Streaming moments for histogram `name`, if any.
    pub fn tally(&self, name: &str) -> Option<&Tally> {
        self.tallies.get(name)
    }
}

struct RecorderInner {
    events: Vec<ProbeEvent>,
    dispatches: u64,
    metrics: MetricRegistry,
    /// Bounded-memory mode: when set, counter and gauge events fold into
    /// `metrics` (one slot per metric name) and are forwarded here —
    /// typically a [`StreamingTraceWriter`] probe writing to disk —
    /// instead of accumulating in `events`.
    spill: Option<Box<dyn Probe>>,
}

/// Shared-handle buffering sink.
///
/// `Recorder::probe()` hands the kernel a [`Probe`] that feeds this
/// recorder; the caller keeps the `Recorder` and reads events / metrics
/// after (or during) the run. [`ProbeEvent::Dispatch`] is *counted*, not
/// buffered — large runs dispatch millions of events and the per-dispatch
/// payload carries no information beyond its count.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                events: Vec::new(),
                dispatches: 0,
                metrics: MetricRegistry::new(),
                spill: None,
            })),
        }
    }

    /// A bounded-memory recorder for long runs: counter and gauge events
    /// still fold into the [`MetricRegistry`] — whose size is bounded by
    /// the number of distinct metric *names*, not the run length — but
    /// the per-change event stream spills to `sink` (typically a
    /// [`StreamingTraceWriter`] probe streaming to disk) instead of
    /// growing the in-memory buffer. Gauges and counters dominate event
    /// volume on long runs (one event per frame/credit/queue change), so
    /// this caps the recorder's footprint while losing nothing: exact
    /// totals and time-weighted means stay queryable via
    /// [`Recorder::with_metrics`], and the full change history lives in
    /// the spilled trace.
    pub fn spilling_metrics(sink: Box<dyn Probe>) -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                events: Vec::new(),
                dispatches: 0,
                metrics: MetricRegistry::new(),
                spill: Some(sink),
            })),
        }
    }

    /// A probe handle feeding this recorder; attach it with
    /// [`crate::Sim::attach_probe`].
    pub fn probe(&self) -> Box<dyn Probe> {
        Box::new(RecorderProbe {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Number of kernel dispatches observed.
    pub fn dispatches(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dispatches
    }

    /// Number of buffered (non-dispatch) events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// True when no non-dispatch event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` against the buffered events without copying them out.
    pub fn with_events<R>(&self, f: impl FnOnce(&[ProbeEvent]) -> R) -> R {
        f(&self.inner.lock().expect("recorder lock").events)
    }

    /// Run `f` against the metric registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricRegistry) -> R) -> R {
        f(&self.inner.lock().expect("recorder lock").metrics)
    }

    /// Flamegraph-style aggregation of the buffered span tracks; see
    /// [`fold_spans`].
    pub fn folded_spans(&self) -> BTreeMap<String, u64> {
        self.with_events(fold_spans)
    }

    /// Export buffered events as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` open directly).
    ///
    /// Convenience wrapper feeding the buffered events through a
    /// [`StreamingTraceWriter`] over an in-memory buffer; for long runs
    /// prefer attaching a `StreamingTraceWriter` directly so events go to
    /// disk as they happen instead of accumulating here.
    pub fn chrome_trace_json(&self, resource_names: &[String]) -> String {
        let writer = StreamingTraceWriter::new(Vec::new(), resource_names);
        {
            let mut p = writer.probe();
            self.with_events(|events| {
                for ev in events {
                    p.record(ev.clone());
                }
            });
        }
        let bytes = writer.finish().expect("in-memory trace write cannot fail");
        String::from_utf8(bytes).expect("trace JSON is UTF-8")
    }
}

/// Incremental Chrome trace-event JSON writer.
///
/// The [`Probe`] side serializes each event straight into the underlying
/// `io::Write` as it is recorded, so memory stays bounded regardless of
/// run length: the only retained state is the track-id tables, one running
/// total per counter name, and the labels of currently-open spans. Wrap a
/// `File` in a `BufWriter` (or use [`StreamingTraceWriter::create`]) to
/// batch the small per-event writes.
///
/// Layout matches [`Recorder::chrome_trace_json`]: tid 0 carries counters
/// and gauges, tids `1..=n` the resource tracks (named up-front from
/// `resource_names`), and stall/span tracks are assigned — with their
/// `thread_name` metadata emitted inline — the first time each appears.
/// Timestamps are virtual µs. [`ProbeEvent::Dispatch`] is counted, never
/// written. The timebase is whatever the span times encode: the
/// `telemetry` module reuses this writer with *wall-clock* nanoseconds
/// smuggled through `SimTime` to render per-worker shard lanes.
///
/// Call [`finish`](Self::finish) to write the JSON trailer and recover the
/// writer (and the first I/O error, if any). Dropping the handle without
/// finishing writes the trailer best-effort so the file stays loadable.
pub struct StreamingTraceWriter<W: std::io::Write + Send + 'static> {
    inner: Arc<Mutex<StreamInner<W>>>,
}

struct StreamInner<W: std::io::Write> {
    /// `None` only after [`StreamingTraceWriter::finish`] reclaimed it.
    w: Option<W>,
    /// No event object has been emitted yet (controls comma placement).
    first: bool,
    finished: bool,
    /// First write error; once set, further events are dropped.
    err: Option<std::io::Error>,
    dispatches: u64,
    written: u64,
    next_tid: u64,
    stall_tid: BTreeMap<usize, u64>,
    span_tid: BTreeMap<String, u64>,
    resource_names: Vec<String>,
    /// Cumulative counter values (counters plot running totals).
    running: BTreeMap<String, f64>,
    /// Labels of open spans; async span ends reuse the label from their
    /// matching begin (Perfetto pairs on cat+id).
    open_spans: BTreeMap<(u64, u64), String>,
}

impl<W: std::io::Write + Send + 'static> StreamingTraceWriter<W> {
    /// Start a trace into `w`: writes the JSON header and one
    /// `thread_name` metadata record per resource track immediately.
    pub fn new(w: W, resource_names: &[String]) -> Self {
        let mut inner = StreamInner {
            w: Some(w),
            first: true,
            finished: false,
            err: None,
            dispatches: 0,
            written: 0,
            next_tid: resource_names.len() as u64 + 1,
            stall_tid: BTreeMap::new(),
            span_tid: BTreeMap::new(),
            resource_names: resource_names.to_vec(),
            running: BTreeMap::new(),
            open_spans: BTreeMap::new(),
        };
        inner.try_io(|w| w.write_all(b"{\"traceEvents\":["));
        for idx in 0..inner.resource_names.len() {
            let name = json_escape(&inner.resource_names[idx]);
            inner.emit(format_args!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                idx + 1,
                name
            ));
        }
        StreamingTraceWriter {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// A probe handle feeding this writer; attach it with
    /// [`crate::Sim::attach_probe`].
    pub fn probe(&self) -> Box<dyn Probe> {
        Box::new(StreamingProbe {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Number of kernel dispatches observed (counted, not written).
    pub fn dispatches(&self) -> u64 {
        self.inner.lock().expect("trace writer lock").dispatches
    }

    /// Number of JSON event records written so far (metadata included).
    pub fn events_written(&self) -> u64 {
        self.inner.lock().expect("trace writer lock").written
    }

    /// Write the JSON trailer, flush, and return the writer — or the
    /// first I/O error hit at any point during the trace.
    pub fn finish(self) -> std::io::Result<W> {
        let mut inner = self.inner.lock().expect("trace writer lock");
        inner.close();
        if let Some(e) = inner.err.take() {
            return Err(e);
        }
        Ok(inner.w.take().expect("writer reclaimed once"))
    }
}

impl<W: std::io::Write> StreamInner<W> {
    /// Run an I/O action, latching the first error and dropping later work.
    fn try_io(&mut self, f: impl FnOnce(&mut W) -> std::io::Result<()>) {
        if self.err.is_none() {
            if let Some(w) = self.w.as_mut() {
                if let Err(e) = f(w) {
                    self.err = Some(e);
                }
            }
        }
    }

    /// Write one JSON object, comma-separated from the previous one.
    fn emit(&mut self, body: std::fmt::Arguments<'_>) {
        let first = std::mem::replace(&mut self.first, false);
        self.try_io(|w| {
            if !first {
                w.write_all(b",")?;
            }
            w.write_fmt(body)
        });
        self.written += 1;
    }

    /// Tid for `rid`'s stall track, emitting its metadata on first use.
    fn stall_tid_for(&mut self, rid: usize) -> u64 {
        if let Some(&tid) = self.stall_tid.get(&rid) {
            return tid;
        }
        let tid = self.next_tid;
        self.next_tid += 1;
        self.stall_tid.insert(rid, tid);
        let name = json_escape(
            self.resource_names
                .get(rid)
                .map(String::as_str)
                .unwrap_or("resource"),
        );
        self.emit(format_args!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name} · stall\"}}}}"
        ));
        tid
    }

    /// Tid for span track `track`, emitting its metadata on first use.
    fn span_tid_for(&mut self, track: &str) -> u64 {
        if let Some(&tid) = self.span_tid.get(track) {
            return tid;
        }
        let tid = self.next_tid;
        self.next_tid += 1;
        self.span_tid.insert(track.to_string(), tid);
        let name = json_escape(track);
        self.emit(format_args!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        tid
    }

    fn record(&mut self, ev: ProbeEvent) {
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;
        match ev {
            ProbeEvent::Dispatch { .. } => self.dispatches += 1,
            ProbeEvent::ResourceAcquire {
                rid,
                arrived,
                start,
                completion,
                service,
                busy_servers,
            } => {
                let dur = completion.saturating_since(start);
                self.emit(format_args!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"use\",\"args\":{{\"service_us\":{:.3},\"wait_us\":{:.3},\
                     \"busy_servers\":{}}}}}",
                    rid.0 + 1,
                    us(start),
                    dur.as_nanos() as f64 / 1e3,
                    service.as_nanos() as f64 / 1e3,
                    start.saturating_since(arrived).as_nanos() as f64 / 1e3,
                    busy_servers
                ));
            }
            ProbeEvent::Stall { rid, from, until } => {
                let tid = self.stall_tid_for(rid.0);
                self.emit(format_args!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"credit stall\",\"args\":{{}}}}",
                    us(from),
                    until.saturating_since(from).as_nanos() as f64 / 1e3
                ));
            }
            ProbeEvent::SpanBegin {
                track,
                label,
                time,
                id,
            } => {
                let tid = self.span_tid_for(&track);
                let escaped = json_escape(&label);
                self.open_spans.insert((tid, id), label);
                self.emit(format_args!(
                    "{{\"ph\":\"b\",\"cat\":\"span\",\"id\":{id},\"pid\":0,\
                     \"tid\":{tid},\"ts\":{:.3},\"name\":\"{escaped}\"}}",
                    us(time)
                ));
            }
            ProbeEvent::SpanEnd { track, time, id } => {
                let tid = self.span_tid_for(&track);
                let label = self.open_spans.remove(&(tid, id)).unwrap_or_default();
                let escaped = json_escape(&label);
                self.emit(format_args!(
                    "{{\"ph\":\"e\",\"cat\":\"span\",\"id\":{id},\"pid\":0,\
                     \"tid\":{tid},\"ts\":{:.3},\"name\":\"{escaped}\"}}",
                    us(time)
                ));
            }
            ProbeEvent::Counter { name, time, delta } => {
                let v = *self
                    .running
                    .entry(name.clone())
                    .and_modify(|v| *v += delta)
                    .or_insert(delta);
                let escaped = json_escape(&name);
                self.emit(format_args!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"name\":\"{escaped}\",\
                     \"args\":{{\"value\":{v}}}}}",
                    us(time)
                ));
            }
            ProbeEvent::Gauge { name, time, value } => {
                let escaped = json_escape(&name);
                self.emit(format_args!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"name\":\"{escaped}\",\
                     \"args\":{{\"value\":{value}}}}}",
                    us(time)
                ));
            }
        }
    }

    /// Write the trailer and flush (idempotent).
    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.try_io(|w| {
            w.write_all(b"],\"displayTimeUnit\":\"ms\"}")?;
            w.flush()
        });
    }
}

impl<W: std::io::Write> Drop for StreamInner<W> {
    fn drop(&mut self) {
        self.close();
    }
}

struct StreamingProbe<W: std::io::Write + Send> {
    inner: Arc<Mutex<StreamInner<W>>>,
}

impl<W: std::io::Write + Send> Probe for StreamingProbe<W> {
    fn record(&mut self, ev: ProbeEvent) {
        self.inner.lock().expect("trace writer lock").record(ev);
    }
}

impl StreamingTraceWriter<std::io::BufWriter<std::fs::File>> {
    /// Stream a trace to a freshly created file through a `BufWriter`
    /// (creating parent directories), so each probe event costs a small
    /// buffered write rather than a syscall.
    pub fn create(path: &std::path::Path, resource_names: &[String]) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file), resource_names))
    }
}

/// Fan a probe stream out to two sinks (e.g. a [`Recorder`] for analysis
/// plus a [`StreamingTraceWriter`] for on-disk export in one run).
pub struct Tee(pub Box<dyn Probe>, pub Box<dyn Probe>);

impl Probe for Tee {
    fn record(&mut self, ev: ProbeEvent) {
        self.0.record(ev.clone());
        self.1.record(ev);
    }
}

struct RecorderProbe {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Probe for RecorderProbe {
    fn record(&mut self, ev: ProbeEvent) {
        let mut inner = self.inner.lock().expect("recorder lock");
        match &ev {
            ProbeEvent::Dispatch { .. } => {
                inner.dispatches += 1;
                return;
            }
            ProbeEvent::Counter { name, delta, .. } => {
                let (name, delta) = (name.clone(), *delta);
                inner.metrics.counter_add(&name, delta);
                if let Some(spill) = inner.spill.as_mut() {
                    spill.record(ev);
                    return;
                }
            }
            ProbeEvent::Gauge { name, time, value } => {
                let (name, time, value) = (name.clone(), *time, *value);
                inner.metrics.gauge_set(&name, time, value);
                if let Some(spill) = inner.spill.as_mut() {
                    spill.record(ev);
                    return;
                }
            }
            _ => {}
        }
        inner.events.push(ev);
    }
}

/// Per-track open-span state while folding.
struct FoldTrack {
    /// Open spans in begin order: `(id, label)`.
    stack: Vec<(u64, String)>,
    /// Last instant time was attributed up to.
    last: SimTime,
}

/// Attribute `[fold.last, now)` to the track's current stack path.
fn fold_attribute(
    out: &mut BTreeMap<String, u64>,
    track: &str,
    fold: &mut FoldTrack,
    now: SimTime,
) {
    let dt = now.saturating_since(fold.last).as_nanos();
    fold.last = now;
    if dt == 0 || fold.stack.is_empty() {
        return;
    }
    let mut key = String::from(track);
    for (_, label) in &fold.stack {
        key.push(';');
        key.push_str(label);
    }
    *out.entry(key).or_insert(0) += dt;
}

/// Fold span tracks into flamegraph collapsed stacks: identical stacks of
/// open spans are merged, keyed `track;outer_label;…;inner_label` and
/// weighted by the virtual nanoseconds spent with exactly that stack open.
///
/// The output is the collapsed-stack format `inferno` / speedscope /
/// `flamegraph.pl` consume (one `stack weight` line per entry, see
/// [`write_folded`]). Spans that overlap on one track without nesting
/// (e.g. concurrent open-loop queries) stack in begin order — the fold
/// shows *what was in flight*, not a call hierarchy. Determinism: keys
/// iterate in `BTreeMap` order and weights are integer nanoseconds, so
/// equal runs fold byte-identically.
pub fn fold_spans(events: &[ProbeEvent]) -> BTreeMap<String, u64> {
    let mut tracks: BTreeMap<String, FoldTrack> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for ev in events {
        match ev {
            ProbeEvent::SpanBegin {
                track,
                label,
                time,
                id,
            } => {
                let fold = tracks.entry(track.clone()).or_insert(FoldTrack {
                    stack: Vec::new(),
                    last: *time,
                });
                fold_attribute(&mut out, track, fold, *time);
                fold.stack.push((*id, label.clone()));
            }
            ProbeEvent::SpanEnd { track, time, id } => {
                if let Some(fold) = tracks.get_mut(track) {
                    fold_attribute(&mut out, track, fold, *time);
                    if let Some(pos) = fold.stack.iter().rposition(|(sid, _)| sid == id) {
                        fold.stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Write collapsed stacks (from [`fold_spans`]) as a `.folded` file —
/// one `stack weight` line per entry, weights in virtual nanoseconds —
/// creating parent directories as needed.
pub fn write_folded(path: &std::path::Path, stacks: &BTreeMap<String, u64>) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    for (stack, weight) in stacks {
        writeln!(w, "{stack} {weight}")?;
    }
    w.flush()
}

/// Escape `s` for inclusion inside a JSON string literal (quotes,
/// backslash, and all control characters below U+0020).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn json_escape_passes_plain_text() {
        assert_eq!(json_escape("host_tx[0]"), "host_tx[0]");
        assert_eq!(json_escape("π · stall"), "π · stall");
    }

    #[test]
    fn json_escape_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        assert_eq!(json_escape("\u{1f}"), "\\u001f");
    }

    #[test]
    fn registry_counters_accumulate() {
        let mut m = MetricRegistry::new();
        m.counter_add("net.frames", 1.0);
        m.counter_add("net.frames", 2.0);
        m.counter_add("dc.acks", 1.0);
        assert_eq!(m.counter("net.frames"), 3.0);
        assert_eq!(m.counter("missing"), 0.0);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["dc.acks", "net.frames"], "BTreeMap order");
    }

    #[test]
    fn registry_gauges_time_weight() {
        let mut m = MetricRegistry::new();
        m.gauge_set("q", t(0), 2.0);
        m.gauge_set("q", t(100), 4.0);
        assert!((m.gauge_mean("q", t(200)) - 3.0).abs() < 1e-12);
        assert_eq!(m.gauge_current("q"), 4.0);
        assert_eq!(m.gauge_mean("absent", t(100)), 0.0);
    }

    #[test]
    fn registry_histograms_and_tallies() {
        let mut m = MetricRegistry::new();
        for x in [10.0, 20.0, 30.0] {
            m.hist_add("lat", x);
        }
        assert_eq!(m.histogram("lat").unwrap().total(), 3);
        assert!((m.tally("lat").unwrap().mean() - 20.0).abs() < 1e-12);
        assert!(m.histogram("absent").is_none());
    }

    #[test]
    fn recorder_counts_dispatches_without_buffering() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        for i in 0..5 {
            p.record(ProbeEvent::Dispatch {
                time: t(i),
                target: ProcessId(0),
            });
        }
        assert_eq!(rec.dispatches(), 5);
        assert!(rec.is_empty());
    }

    #[test]
    fn recorder_folds_counters_and_gauges_into_metrics() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        p.record(ProbeEvent::Counter {
            name: "c".into(),
            time: t(10),
            delta: 2.0,
        });
        p.record(ProbeEvent::Gauge {
            name: "g".into(),
            time: t(0),
            value: 7.0,
        });
        assert_eq!(rec.with_metrics(|m| m.counter("c")), 2.0);
        assert_eq!(rec.with_metrics(|m| m.gauge_current("g")), 7.0);
        assert_eq!(rec.len(), 2, "counter/gauge events stay in the buffer");
    }

    /// Bounded-memory mode: counter/gauge events fold into the registry
    /// and spill to the streaming writer, never touching the in-memory
    /// buffer; everything else buffers as usual.
    #[test]
    fn spilling_recorder_keeps_metrics_but_not_metric_events() {
        let writer = StreamingTraceWriter::new(Vec::new(), &[]);
        let rec = Recorder::spilling_metrics(writer.probe());
        let mut p = rec.probe();
        for i in 0..1_000u64 {
            p.record(ProbeEvent::Counter {
                name: "net.frames".into(),
                time: t(i),
                delta: 1.0,
            });
            p.record(ProbeEvent::Gauge {
                name: "q".into(),
                time: t(i),
                value: i as f64,
            });
        }
        p.record(ProbeEvent::Dispatch {
            time: t(5),
            target: ProcessId(0),
        });
        p.record(ProbeEvent::SpanBegin {
            track: "work".into(),
            label: "x".into(),
            time: t(0),
            id: 1,
        });
        p.record(ProbeEvent::SpanEnd {
            track: "work".into(),
            time: t(10),
            id: 1,
        });
        // 2000 metric events spilled; only the two span events buffer.
        assert_eq!(rec.len(), 2, "metric events never reach the buffer");
        assert_eq!(rec.dispatches(), 1);
        assert_eq!(rec.with_metrics(|m| m.counter("net.frames")), 1_000.0);
        assert_eq!(rec.with_metrics(|m| m.gauge_current("q")), 999.0);
        assert_eq!(rec.folded_spans().get("work;x"), Some(&10));
        drop(p);
        drop(rec);
        let json = String::from_utf8(writer.finish().unwrap()).unwrap();
        assert_eq!(
            json.matches("\"name\":\"net.frames\"").count(),
            1_000,
            "every counter change reached the spill sink"
        );
        assert!(json.contains("\"name\":\"q\""));
    }

    /// The streaming writer, fed the same events, produces the same JSON
    /// as the Recorder convenience export (which now delegates to it) —
    /// and writes incrementally: the header and early events are already
    /// in the sink before the trace is finished.
    #[test]
    fn streaming_writer_matches_recorder_export() {
        let events = [
            ProbeEvent::ResourceAcquire {
                rid: ResourceId(0),
                arrived: t(0),
                start: t(100),
                completion: t(300),
                service: Dur::nanos(200),
                busy_servers: 0,
            },
            ProbeEvent::Dispatch {
                time: t(5),
                target: ProcessId(3),
            },
            ProbeEvent::Stall {
                rid: ResourceId(0),
                from: t(400),
                until: t(600),
            },
            ProbeEvent::Counter {
                name: "frames".into(),
                time: t(50),
                delta: 2.0,
            },
            ProbeEvent::Counter {
                name: "frames".into(),
                time: t(60),
                delta: 3.0,
            },
        ];
        let names = vec!["nic".to_string()];

        let rec = Recorder::new();
        let mut rp = rec.probe();
        for ev in &events {
            rp.record(ev.clone());
        }

        let stream = StreamingTraceWriter::new(Vec::new(), &names);
        let mut sp = stream.probe();
        for ev in &events {
            sp.record(ev.clone());
        }
        assert_eq!(stream.dispatches(), 1);
        assert!(
            stream.events_written() >= 4,
            "events flow to the sink before finish"
        );
        let json = String::from_utf8(stream.finish().unwrap()).unwrap();
        assert_eq!(json, rec.chrome_trace_json(&names));
        assert!(json.contains("\"value\":5"), "counter totals accumulate");
        assert!(json.contains("nic · stall"));
    }

    /// Dropping the writer handle without `finish` still closes the JSON
    /// so the file is loadable.
    #[test]
    fn streaming_writer_closes_on_drop() {
        use std::sync::mpsc;
        struct SendOnDrop(Vec<u8>, mpsc::Sender<Vec<u8>>);
        impl std::io::Write for SendOnDrop {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl Drop for SendOnDrop {
            fn drop(&mut self) {
                let _ = self.1.send(std::mem::take(&mut self.0));
            }
        }
        let (tx, rx) = mpsc::channel();
        let w = StreamingTraceWriter::new(SendOnDrop(Vec::new(), tx), &[]);
        w.probe().record(ProbeEvent::Gauge {
            name: "q".into(),
            time: t(1),
            value: 1.0,
        });
        drop(w);
        let bytes = rx.try_recv().expect("sink dropped with contents");
        let json = String::from_utf8(bytes).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn fold_spans_merges_identical_stacks_and_splits_nesting() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        let begin = |p: &mut Box<dyn Probe>, at, label: &str, id| {
            p.record(ProbeEvent::SpanBegin {
                track: "work".into(),
                label: label.into(),
                time: t(at),
                id,
            })
        };
        let end = |p: &mut Box<dyn Probe>, at, id| {
            p.record(ProbeEvent::SpanEnd {
                track: "work".into(),
                time: t(at),
                id,
            })
        };
        // outer [0,100) with inner [20,60); then outer again [100,130).
        begin(&mut p, 0, "outer", 1);
        begin(&mut p, 20, "inner", 2);
        end(&mut p, 60, 2);
        end(&mut p, 100, 1);
        begin(&mut p, 100, "outer", 3);
        end(&mut p, 130, 3);
        let folded = rec.folded_spans();
        assert_eq!(folded.get("work;outer"), Some(&90), "20 + 40 + 30 self-ns");
        assert_eq!(folded.get("work;outer;inner"), Some(&40));
        assert_eq!(folded.len(), 2, "identical stacks fold into one entry");
        // Total folded weight equals total open time (130ns, no gaps).
        assert_eq!(folded.values().sum::<u64>(), 130);
    }

    #[test]
    fn fold_spans_keeps_tracks_separate_and_ignores_non_spans() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        for (track, id) in [("a", 1u64), ("b", 2)] {
            p.record(ProbeEvent::SpanBegin {
                track: track.into(),
                label: "x".into(),
                time: t(0),
                id,
            });
            p.record(ProbeEvent::SpanEnd {
                track: track.into(),
                time: t(50),
                id,
            });
        }
        p.record(ProbeEvent::Counter {
            name: "c".into(),
            time: t(10),
            delta: 1.0,
        });
        let folded = rec.folded_spans();
        assert_eq!(folded.get("a;x"), Some(&50));
        assert_eq!(folded.get("b;x"), Some(&50));
        assert_eq!(folded.len(), 2);
        assert!(fold_spans(&[]).is_empty(), "no spans, no stacks");
    }

    #[test]
    fn write_folded_emits_collapsed_stack_lines() {
        let dir = std::env::temp_dir().join(format!("hpsock_folded_{}", std::process::id()));
        let path = dir.join("nested/out.folded");
        let mut stacks = BTreeMap::new();
        stacks.insert("track;outer".to_string(), 90u64);
        stacks.insert("track;outer;inner".to_string(), 40u64);
        write_folded(&path, &stacks).expect("write .folded");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "track;outer 90\ntrack;outer;inner 40\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tee_duplicates_to_both_sinks() {
        let a = Recorder::new();
        let b = Recorder::new();
        let mut tee = Tee(a.probe(), b.probe());
        tee.record(ProbeEvent::Dispatch {
            time: t(1),
            target: ProcessId(0),
        });
        tee.record(ProbeEvent::Counter {
            name: "c".into(),
            time: t(2),
            delta: 1.0,
        });
        for rec in [&a, &b] {
            assert_eq!(rec.dispatches(), 1);
            assert_eq!(rec.len(), 1);
            assert_eq!(rec.with_metrics(|m| m.counter("c")), 1.0);
        }
    }

    #[test]
    fn chrome_trace_has_named_tracks_and_balanced_events() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        p.record(ProbeEvent::ResourceAcquire {
            rid: ResourceId(0),
            arrived: t(0),
            start: t(500),
            completion: t(1_500),
            service: Dur::nanos(1_000),
            busy_servers: 1,
        });
        p.record(ProbeEvent::Stall {
            rid: ResourceId(0),
            from: t(2_000),
            until: t(3_000),
        });
        p.record(ProbeEvent::SpanBegin {
            track: "dc.magnify[0]".into(),
            label: "compute \"x\"".into(),
            time: t(100),
            id: 1,
        });
        p.record(ProbeEvent::SpanEnd {
            track: "dc.magnify[0]".into(),
            time: t(900),
            id: 1,
        });
        let json = rec.chrome_trace_json(&["host_tx[0]".to_string()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("host_tx[0]"));
        assert!(json.contains("host_tx[0] · stall"));
        assert!(json.contains("dc.magnify[0]"));
        assert!(json.contains("compute \\\"x\\\""), "labels are escaped");
        assert_eq!(
            json.matches("\"ph\":\"b\"").count(),
            json.matches("\"ph\":\"e\"").count(),
            "span begins and ends balance"
        );
        // Occupancy X event carries wait accounting: started 0.5us late.
        assert!(json.contains("\"wait_us\":0.500"));
    }
}
