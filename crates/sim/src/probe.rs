//! `sim::probe` — a typed, zero-overhead-when-disabled observability bus.
//!
//! The kernel and the domain layers (net engine, DataCutter filters, the
//! vizserver pipeline) emit [`ProbeEvent`]s describing *what the simulation
//! did*: event dispatches, resource acquisitions (with queueing detail),
//! credit stalls, labelled spans, counters and gauges. A [`Probe`] sink
//! attached via [`crate::Sim::attach_probe`] receives them; with no probe
//! attached the emission sites reduce to a branch on an `Option` — the
//! event values are never even constructed (see [`crate::Ctx::probe_emit`]).
//!
//! Probes are **purely observational**: they never draw from the RNG
//! streams and never insert events, so the [`crate::TraceDigest`] of a run
//! is identical with and without a probe attached (this is pinned by the
//! determinism test-suite).
//!
//! [`Recorder`] is the batteries-included sink: it buffers events, folds
//! counters/gauges into a [`MetricRegistry`], and exports Chrome
//! trace-event JSON openable in Perfetto / `chrome://tracing`, with one
//! track per simulated resource plus one per named span track.

use crate::kernel::ProcessId;
use crate::resource::ResourceId;
use crate::stats::{Histogram, Tally, TimeWeighted};
use crate::time::{Dur, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One observation on the probe bus.
#[derive(Debug, Clone)]
pub enum ProbeEvent {
    /// The kernel dispatched an event to `target` at `time`.
    Dispatch {
        /// Dispatch instant.
        time: SimTime,
        /// Receiving process.
        target: ProcessId,
    },
    /// A job was scheduled on a FCFS resource.
    ResourceAcquire {
        /// The station.
        rid: ResourceId,
        /// When the job arrived at the station.
        arrived: SimTime,
        /// When service actually started (`>= arrived` under backlog).
        start: SimTime,
        /// When service completes.
        completion: SimTime,
        /// Service demand.
        service: Dur,
        /// Servers busy at the arrival instant (before this job).
        busy_servers: usize,
    },
    /// Begin a labelled span on a named track (e.g. one filter's compute).
    SpanBegin {
        /// Track name; all spans with the same track share a timeline row.
        track: String,
        /// Span label.
        label: String,
        /// Start instant.
        time: SimTime,
        /// Caller-chosen id matching the corresponding [`ProbeEvent::SpanEnd`].
        id: u64,
    },
    /// End the span opened with the same `track`/`id`.
    SpanEnd {
        /// Track name.
        track: String,
        /// End instant.
        time: SimTime,
        /// Id from the matching [`ProbeEvent::SpanBegin`].
        id: u64,
    },
    /// Increment a named monotonic counter.
    Counter {
        /// Counter name.
        name: String,
        /// Instant of the increment.
        time: SimTime,
        /// Increment (usually 1.0).
        delta: f64,
    },
    /// Set a named piecewise-constant gauge (queue depths etc.).
    Gauge {
        /// Gauge name.
        name: String,
        /// Instant of the change.
        time: SimTime,
        /// New value.
        value: f64,
    },
    /// A sender sat blocked on flow-control credits for `[from, until]`,
    /// attributed to the resource it would otherwise have been feeding.
    Stall {
        /// The starved station (the sender's host-TX engine).
        rid: ResourceId,
        /// Stall start.
        from: SimTime,
        /// Stall end.
        until: SimTime,
    },
}

/// A sink for [`ProbeEvent`]s. Implementations must not interact with the
/// simulation (no RNG draws, no event insertion) — observation only.
pub trait Probe: Send {
    /// Receive one event.
    fn record(&mut self, ev: ProbeEvent);
}

/// Named counters, gauges and histograms, keyed deterministically.
///
/// Thin registry over the existing collectors: counters are plain running
/// sums, gauges are [`TimeWeighted`] signals, histograms are log-spaced
/// [`Histogram`]s (1 µs – 100 s when values are in µs). `BTreeMap` keys
/// make snapshot iteration order deterministic.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, TimeWeighted>,
    hists: BTreeMap<String, Histogram>,
    tallies: BTreeMap<String, Tally>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Record that gauge `name` changed to `value` at `t`.
    pub fn gauge_set(&mut self, name: &str, t: SimTime, value: f64) {
        self.gauges
            .entry(name.to_string())
            .or_default()
            .set(t, value);
    }

    /// Time-weighted mean of gauge `name` over `[0, end]`.
    pub fn gauge_mean(&self, name: &str, end: SimTime) -> f64 {
        self.gauges.get(name).map_or(0.0, |g| g.mean(end))
    }

    /// Latest value of gauge `name` (0 if never set).
    pub fn gauge_current(&self, name: &str) -> f64 {
        self.gauges.get(name).map_or(0.0, |g| g.current())
    }

    /// Iterate gauge names in order.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// Record an observation into histogram `name` (µs-scale bins,
    /// 1 µs – 100 s, created on first touch).
    pub fn hist_add(&mut self, name: &str, x: f64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::log_spaced(1.0, 1e8, 160))
            .add(x);
        self.tallies.entry(name.to_string()).or_default().add(x);
    }

    /// The histogram named `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Streaming moments for histogram `name`, if any.
    pub fn tally(&self, name: &str) -> Option<&Tally> {
        self.tallies.get(name)
    }
}

struct RecorderInner {
    events: Vec<ProbeEvent>,
    dispatches: u64,
    metrics: MetricRegistry,
}

/// Shared-handle buffering sink.
///
/// `Recorder::probe()` hands the kernel a [`Probe`] that feeds this
/// recorder; the caller keeps the `Recorder` and reads events / metrics
/// after (or during) the run. [`ProbeEvent::Dispatch`] is *counted*, not
/// buffered — large runs dispatch millions of events and the per-dispatch
/// payload carries no information beyond its count.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                events: Vec::new(),
                dispatches: 0,
                metrics: MetricRegistry::new(),
            })),
        }
    }

    /// A probe handle feeding this recorder; attach it with
    /// [`crate::Sim::attach_probe`].
    pub fn probe(&self) -> Box<dyn Probe> {
        Box::new(RecorderProbe {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Number of kernel dispatches observed.
    pub fn dispatches(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dispatches
    }

    /// Number of buffered (non-dispatch) events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// True when no non-dispatch event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` against the buffered events without copying them out.
    pub fn with_events<R>(&self, f: impl FnOnce(&[ProbeEvent]) -> R) -> R {
        f(&self.inner.lock().expect("recorder lock").events)
    }

    /// Run `f` against the metric registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricRegistry) -> R) -> R {
        f(&self.inner.lock().expect("recorder lock").metrics)
    }

    /// Export buffered events as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` open directly).
    ///
    /// `resource_names[i]` labels the track for `ResourceId(i)` (use
    /// [`crate::Sim::resource_names`]). Layout: tid 0 carries counters and
    /// gauges, tids `1..=n` are the resource tracks (occupancy as complete
    /// `"X"` events, stalls on a sibling `"· stall"` track), and span
    /// tracks follow in name order. Timestamps are virtual µs.
    pub fn chrome_trace_json(&self, resource_names: &[String]) -> String {
        let inner = self.inner.lock().expect("recorder lock");
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;

        // Deterministic track table: resources first, then stall tracks for
        // resources that stalled, then span tracks in name order.
        let mut stall_rids: BTreeSet<usize> = BTreeSet::new();
        let mut span_tracks: BTreeSet<&str> = BTreeSet::new();
        for ev in &inner.events {
            match ev {
                ProbeEvent::Stall { rid, .. } => {
                    stall_rids.insert(rid.0);
                }
                ProbeEvent::SpanBegin { track, .. } | ProbeEvent::SpanEnd { track, .. } => {
                    span_tracks.insert(track);
                }
                _ => {}
            }
        }
        let stall_tid: BTreeMap<usize, u64> = stall_rids
            .iter()
            .enumerate()
            .map(|(i, &rid)| (rid, resource_names.len() as u64 + 1 + i as u64))
            .collect();
        let span_base = resource_names.len() as u64 + 1 + stall_tid.len() as u64;
        let span_tid: BTreeMap<&str, u64> = span_tracks
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, span_base + i as u64))
            .collect();

        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, body: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(body);
        };

        // Track-name metadata.
        for (i, name) in resource_names.iter().enumerate() {
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    i + 1,
                    json_escape(name)
                ),
            );
        }
        for (&rid, &tid) in &stall_tid {
            let name = resource_names
                .get(rid)
                .map(String::as_str)
                .unwrap_or("resource");
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{} · stall\"}}}}",
                    json_escape(name)
                ),
            );
        }
        for (&track, &tid) in &span_tid {
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(track)
                ),
            );
        }

        // Counters plot cumulative running totals; async span ends reuse
        // the label from their matching begin (Perfetto pairs on cat+id).
        let mut running: BTreeMap<&str, f64> = BTreeMap::new();
        let mut open_spans: BTreeMap<(u64, u64), String> = BTreeMap::new();
        for ev in &inner.events {
            match ev {
                ProbeEvent::Dispatch { .. } => {}
                ProbeEvent::ResourceAcquire {
                    rid,
                    arrived,
                    start,
                    completion,
                    service,
                    busy_servers,
                } => {
                    let dur = completion.saturating_since(*start);
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                             \"name\":\"use\",\"args\":{{\"service_us\":{:.3},\"wait_us\":{:.3},\
                             \"busy_servers\":{}}}}}",
                            rid.0 + 1,
                            us(*start),
                            dur.as_nanos() as f64 / 1e3,
                            service.as_nanos() as f64 / 1e3,
                            start.saturating_since(*arrived).as_nanos() as f64 / 1e3,
                            busy_servers
                        ),
                    );
                }
                ProbeEvent::Stall { rid, from, until } => {
                    let tid = stall_tid[&rid.0];
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\
                             \"name\":\"credit stall\",\"args\":{{}}}}",
                            us(*from),
                            until.saturating_since(*from).as_nanos() as f64 / 1e3
                        ),
                    );
                }
                ProbeEvent::SpanBegin {
                    track,
                    label,
                    time,
                    id,
                } => {
                    let tid = span_tid[track.as_str()];
                    open_spans.insert((tid, *id), label.clone());
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"b\",\"cat\":\"span\",\"id\":{id},\"pid\":0,\
                             \"tid\":{tid},\"ts\":{:.3},\"name\":\"{}\"}}",
                            us(*time),
                            json_escape(label)
                        ),
                    );
                }
                ProbeEvent::SpanEnd { track, time, id } => {
                    let tid = span_tid[track.as_str()];
                    let label = open_spans.remove(&(tid, *id)).unwrap_or_default();
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"e\",\"cat\":\"span\",\"id\":{id},\"pid\":0,\
                             \"tid\":{tid},\"ts\":{:.3},\"name\":\"{}\"}}",
                            us(*time),
                            json_escape(&label)
                        ),
                    );
                }
                ProbeEvent::Counter { name, time, delta } => {
                    let v = running.entry(name.as_str()).or_insert(0.0);
                    *v += delta;
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"name\":\"{}\",\
                             \"args\":{{\"value\":{}}}}}",
                            us(*time),
                            json_escape(name),
                            v
                        ),
                    );
                }
                ProbeEvent::Gauge { name, time, value } => {
                    emit(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"name\":\"{}\",\
                             \"args\":{{\"value\":{}}}}}",
                            us(*time),
                            json_escape(name),
                            value
                        ),
                    );
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

struct RecorderProbe {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Probe for RecorderProbe {
    fn record(&mut self, ev: ProbeEvent) {
        let mut inner = self.inner.lock().expect("recorder lock");
        match &ev {
            ProbeEvent::Dispatch { .. } => {
                inner.dispatches += 1;
                return;
            }
            ProbeEvent::Counter { name, delta, .. } => {
                let (name, delta) = (name.clone(), *delta);
                inner.metrics.counter_add(&name, delta);
            }
            ProbeEvent::Gauge { name, time, value } => {
                let (name, time, value) = (name.clone(), *time, *value);
                inner.metrics.gauge_set(&name, time, value);
            }
            _ => {}
        }
        inner.events.push(ev);
    }
}

/// Escape `s` for inclusion inside a JSON string literal (quotes,
/// backslash, and all control characters below U+0020).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn json_escape_passes_plain_text() {
        assert_eq!(json_escape("host_tx[0]"), "host_tx[0]");
        assert_eq!(json_escape("π · stall"), "π · stall");
    }

    #[test]
    fn json_escape_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        assert_eq!(json_escape("\u{1f}"), "\\u001f");
    }

    #[test]
    fn registry_counters_accumulate() {
        let mut m = MetricRegistry::new();
        m.counter_add("net.frames", 1.0);
        m.counter_add("net.frames", 2.0);
        m.counter_add("dc.acks", 1.0);
        assert_eq!(m.counter("net.frames"), 3.0);
        assert_eq!(m.counter("missing"), 0.0);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["dc.acks", "net.frames"], "BTreeMap order");
    }

    #[test]
    fn registry_gauges_time_weight() {
        let mut m = MetricRegistry::new();
        m.gauge_set("q", t(0), 2.0);
        m.gauge_set("q", t(100), 4.0);
        assert!((m.gauge_mean("q", t(200)) - 3.0).abs() < 1e-12);
        assert_eq!(m.gauge_current("q"), 4.0);
        assert_eq!(m.gauge_mean("absent", t(100)), 0.0);
    }

    #[test]
    fn registry_histograms_and_tallies() {
        let mut m = MetricRegistry::new();
        for x in [10.0, 20.0, 30.0] {
            m.hist_add("lat", x);
        }
        assert_eq!(m.histogram("lat").unwrap().total(), 3);
        assert!((m.tally("lat").unwrap().mean() - 20.0).abs() < 1e-12);
        assert!(m.histogram("absent").is_none());
    }

    #[test]
    fn recorder_counts_dispatches_without_buffering() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        for i in 0..5 {
            p.record(ProbeEvent::Dispatch {
                time: t(i),
                target: ProcessId(0),
            });
        }
        assert_eq!(rec.dispatches(), 5);
        assert!(rec.is_empty());
    }

    #[test]
    fn recorder_folds_counters_and_gauges_into_metrics() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        p.record(ProbeEvent::Counter {
            name: "c".into(),
            time: t(10),
            delta: 2.0,
        });
        p.record(ProbeEvent::Gauge {
            name: "g".into(),
            time: t(0),
            value: 7.0,
        });
        assert_eq!(rec.with_metrics(|m| m.counter("c")), 2.0);
        assert_eq!(rec.with_metrics(|m| m.gauge_current("g")), 7.0);
        assert_eq!(rec.len(), 2, "counter/gauge events stay in the buffer");
    }

    #[test]
    fn chrome_trace_has_named_tracks_and_balanced_events() {
        let rec = Recorder::new();
        let mut p = rec.probe();
        p.record(ProbeEvent::ResourceAcquire {
            rid: ResourceId(0),
            arrived: t(0),
            start: t(500),
            completion: t(1_500),
            service: Dur::nanos(1_000),
            busy_servers: 1,
        });
        p.record(ProbeEvent::Stall {
            rid: ResourceId(0),
            from: t(2_000),
            until: t(3_000),
        });
        p.record(ProbeEvent::SpanBegin {
            track: "dc.magnify[0]".into(),
            label: "compute \"x\"".into(),
            time: t(100),
            id: 1,
        });
        p.record(ProbeEvent::SpanEnd {
            track: "dc.magnify[0]".into(),
            time: t(900),
            id: 1,
        });
        let json = rec.chrome_trace_json(&["host_tx[0]".to_string()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("host_tx[0]"));
        assert!(json.contains("host_tx[0] · stall"));
        assert!(json.contains("dc.magnify[0]"));
        assert!(json.contains("compute \\\"x\\\""), "labels are escaped");
        assert_eq!(
            json.matches("\"ph\":\"b\"").count(),
            json.matches("\"ph\":\"e\"").count(),
            "span begins and ends balance"
        );
        // Occupancy X event carries wait accounting: started 0.5us late.
        assert!(json.contains("\"wait_us\":0.500"));
    }
}
