//! Model-based property test: the calendar [`EventQueue`] must produce
//! byte-for-byte the same `(time, seq, target)` pop sequence as a plain
//! binary-heap priority queue over the `(time, seq)` key — including FIFO
//! order among equal times when keys follow insertion order, as the
//! kernel's per-source keys do within one source — for arbitrary
//! interleavings of pushes and pops. This is the ordering contract the
//! kernel's `TraceDigest` stability rests on.

use hpsock_sim::event::EventQueue;
use hpsock_sim::{Message, ProcessId, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: a min-heap over the full `(time, seq)` key with its
/// own insertion counter. `target` rides along for comparison.
#[derive(Default)]
struct ModelQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, time: SimTime, target: ProcessId) {
        self.heap.push(Reverse((time, self.next_seq, target.0)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64, usize)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

/// One scripted operation, decoded from two raw generator words.
enum Op {
    /// Push at `last popped time + dt`.
    Push {
        dt: u64,
        target: usize,
    },
    Pop,
}

fn decode(sel: u64, raw: u64) -> Op {
    match sel % 10 {
        // Mostly pushes, with time deltas drawn from three scales:
        // near-zero (equal-time ties), in-window, and far beyond the
        // default ring window (overflow heap + migration).
        0..=2 => Op::Push {
            dt: raw % 4,
            target: (raw / 7) as usize % 5,
        },
        3..=5 => Op::Push {
            dt: raw % (1 << 16),
            target: (raw / 7) as usize % 5,
        },
        6 => Op::Push {
            dt: raw % (1 << 26),
            target: (raw / 7) as usize % 5,
        },
        _ => Op::Pop,
    }
}

/// Run a script against both queues, checking each pop and the final
/// drain agree exactly.
fn check_script(script: Vec<(u64, u64)>) {
    let mut real = EventQueue::new();
    let mut model = ModelQueue::default();
    // Pushes are relative to the last popped time, mirroring how the
    // kernel schedules (never before "now").
    let mut now = SimTime::ZERO;
    for (sel, raw) in script {
        match decode(sel, raw) {
            Op::Push { dt, target } => {
                let t = now + hpsock_sim::Dur::nanos(dt);
                // The payload carries the model's expected seq so payload
                // identity is checked too, not just the key.
                real.push(
                    t,
                    model.next_seq,
                    ProcessId(target),
                    Message::new(model.next_seq),
                );
                model.push(t, ProcessId(target));
            }
            Op::Pop => {
                let got = real.pop();
                let want = model.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some(ev), Some((t, seq, target))) => {
                        assert_eq!((ev.time, ev.seq, ev.target.0), (t, seq, target));
                        assert_eq!(ev.msg.downcast::<u64>().unwrap(), seq);
                        now = t;
                    }
                    (got, want) => panic!(
                        "pop mismatch: real={:?} model={:?}",
                        got.map(|e| e.key()),
                        want
                    ),
                }
            }
        }
        assert_eq!(real.len(), model.heap.len());
        assert_eq!(
            real.peek_time(),
            model.heap.peek().map(|Reverse((t, _, _))| *t)
        );
    }
    // Drain: every remaining event must come out in model order.
    while let Some((t, seq, target)) = model.pop() {
        let ev = real.pop().expect("real queue drained early");
        assert_eq!((ev.time, ev.seq, ev.target.0), (t, seq, target));
        assert_eq!(ev.msg.downcast::<u64>().unwrap(), seq);
    }
    assert!(real.pop().is_none(), "real queue has extra events");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_binary_heap_model(script in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..400)) {
        check_script(script);
    }
}

/// Enough same-scale pushes to force ring growth, mixed with pops, still
/// matches the model (exercises `rebuild`).
#[test]
fn growth_under_interleaving_matches_model() {
    let mut script = Vec::new();
    for i in 0u64..4000 {
        script.push((i % 7, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    }
    check_script(script);
}
