//! Time-breakdown reports: attribute a run's total virtual server-time to
//! host-overhead / wire / compute / credit-stall / idle, per transport.
//!
//! The accounting is exact by construction. Total capacity is
//! `C = T_end × Σ servers`; host, wire and compute are the summed busy
//! times of the `host_tx`/`host_rx`, `nic_tx` and `cpu` stations (from the
//! probe bus's `ResourceAcquire` events); stall is the length of the union
//! of credit-stall intervals *minus* the portion where the stalled host-TX
//! engine was actually serving (so busy time is never double-counted); and
//! idle is the remainder `C − host − wire − compute − stall`. The five
//! components therefore sum to the total exactly — the acceptance check
//! "within 1 %" holds with zero error.
//!
//! This quantifies the paper's central claim from the transport side: on
//! TCP the host-overhead share dwarfs the wire share, while SocketVIA
//! moves most of the per-byte cost off the host.

use crate::replicate;
use crate::runner::{run_guarantee_probed, GuaranteeRun, RunCapture};
use crate::table::Table;
use hpsock_sim::{Probe, ProbeEvent, Recorder, StreamingTraceWriter, Tee};
use std::collections::BTreeMap;
use std::path::Path;

/// One transport's attribution of total server-time, in virtual µs.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Row label (usually the transport).
    pub label: String,
    /// Total server capacity `T_end × Σ servers`.
    pub total_us: f64,
    /// Host protocol-engine busy time (TX + RX sides).
    pub host_us: f64,
    /// NIC DMA + wire serialization busy time.
    pub wire_us: f64,
    /// Application CPU busy time.
    pub compute_us: f64,
    /// Credit-stall time not overlapped by host-TX service.
    pub stall_us: f64,
    /// Remaining capacity.
    pub idle_us: f64,
}

impl Breakdown {
    /// Sum of the five attributed components (equals `total_us` exactly).
    pub fn components_sum_us(&self) -> f64 {
        self.host_us + self.wire_us + self.compute_us + self.stall_us + self.idle_us
    }
}

/// Total length of the union of `intervals` (ns endpoints), minus any
/// portion covered by `subtract` (also merged internally).
fn union_minus(mut intervals: Vec<(u64, u64)>, mut subtract: Vec<(u64, u64)>) -> u64 {
    let merge = |iv: &mut Vec<(u64, u64)>| {
        iv.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
        for &(a, b) in iv.iter() {
            if b <= a {
                continue;
            }
            match out.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => out.push((a, b)),
            }
        }
        *iv = out;
    };
    merge(&mut intervals);
    merge(&mut subtract);
    let mut len = 0u64;
    let mut si = 0usize;
    for (a, b) in intervals {
        let mut cur = a;
        // Walk subtract intervals overlapping [a, b).
        while si < subtract.len() && subtract[si].1 <= cur {
            si += 1;
        }
        let mut sj = si;
        while cur < b {
            match subtract.get(sj) {
                Some(&(sa, sb)) if sa < b => {
                    if sa > cur {
                        len += sa - cur;
                    }
                    cur = cur.max(sb);
                    sj += 1;
                }
                _ => {
                    len += b - cur;
                    cur = b;
                }
            }
        }
    }
    len
}

/// Which breakdown bucket a resource's busy time belongs to.
fn bucket(name: &str) -> Option<usize> {
    if name.ends_with(".host_tx") || name.ends_with(".host_rx") {
        Some(0) // host
    } else if name.ends_with(".nic_tx") {
        Some(1) // wire
    } else if name.ends_with(".cpu") {
        Some(2) // compute
    } else {
        None
    }
}

/// Attribute the recorded run's server-time. `label` names the row.
pub fn compute(rec: &Recorder, cap: &RunCapture, label: &str) -> Breakdown {
    let ns_total = cap.end.as_nanos() as f64 * cap.servers.iter().sum::<usize>() as f64;
    let mut busy_ns = [0.0f64; 3];
    // Per-resource interval sets for the stall subtraction.
    let mut busy_iv: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    let mut stall_iv: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    rec.with_events(|events| {
        for ev in events {
            match ev {
                ProbeEvent::ResourceAcquire {
                    rid,
                    start,
                    completion,
                    service,
                    ..
                } => {
                    if let Some(b) = cap.resource_names.get(rid.0).and_then(|n| bucket(n)) {
                        busy_ns[b] += service.as_nanos() as f64;
                    }
                    busy_iv
                        .entry(rid.0)
                        .or_default()
                        .push((start.as_nanos(), completion.as_nanos()));
                }
                ProbeEvent::Stall { rid, from, until } => {
                    stall_iv
                        .entry(rid.0)
                        .or_default()
                        .push((from.as_nanos(), until.as_nanos()));
                }
                _ => {}
            }
        }
    });
    let stall_ns: u64 = stall_iv
        .into_iter()
        .map(|(rid, iv)| union_minus(iv, busy_iv.remove(&rid).unwrap_or_default()))
        .sum();
    let us = |ns: f64| ns / 1e3;
    let (host_us, wire_us, compute_us) = (us(busy_ns[0]), us(busy_ns[1]), us(busy_ns[2]));
    let stall_us = us(stall_ns as f64);
    let idle_us = us(ns_total) - host_us - wire_us - compute_us - stall_us;
    // Store the total as the components re-summed in the same
    // left-associated order as `components_sum_us`: deriving idle by
    // subtraction alone can leave the re-sum an ulp off `us(ns_total)`,
    // and the exactness tests compare bit patterns, not tolerances.
    let total_us = host_us + wire_us + compute_us + stall_us + idle_us;
    Breakdown {
        label: label.to_string(),
        total_us,
        host_us,
        wire_us,
        compute_us,
        stall_us,
        idle_us,
    }
}

/// Mean of per-seed breakdowns, component by component. Each replicate's
/// accounting is exact for its own run, so the means still sum to the
/// mean total exactly (averaging is linear).
pub fn average(label: &str, reps: &[Breakdown]) -> Breakdown {
    assert!(!reps.is_empty(), "average needs at least one replicate");
    let n = reps.len() as f64;
    let mean = |f: fn(&Breakdown) -> f64| reps.iter().map(f).sum::<f64>() / n;
    Breakdown {
        label: label.to_string(),
        total_us: mean(|b| b.total_us),
        host_us: mean(|b| b.host_us),
        wire_us: mean(|b| b.wire_us),
        compute_us: mean(|b| b.compute_us),
        stall_us: mean(|b| b.stall_us),
        idle_us: mean(|b| b.idle_us),
    }
}

/// Render breakdowns as a table (emitted as `<figure>_breakdown.csv`).
pub fn to_table(title: &str, rows: &[Breakdown]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "series",
            "total_us",
            "host_us",
            "wire_us",
            "compute_us",
            "stall_us",
            "idle_us",
        ],
    );
    for b in rows {
        // Rounding each component to 0.1 µs independently can leave the
        // printed columns 0.1 off the printed total, so the rendered
        // total is the sum of the *rounded* components (within 0.25 µs
        // of the true total): the CSV stays exactly self-consistent.
        let r = |v: f64| (v * 10.0).round() / 10.0;
        let total = r(b.host_us) + r(b.wire_us) + r(b.compute_us) + r(b.stall_us) + r(b.idle_us);
        t.add_row(vec![
            b.label.clone(),
            format!("{total:.1}"),
            format!("{:.1}", b.host_us),
            format!("{:.1}", b.wire_us),
            format!("{:.1}", b.compute_us),
            format!("{:.1}", b.stall_us),
            format!("{:.1}", b.idle_us),
        ]);
    }
    t
}

/// File-name slug for a series label.
pub(crate) fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

/// The probe-factory argument of a [`ProbedRun`]: builds the probe once
/// the simulation topology exists (it receives the resource-name table,
/// as in [`run_guarantee_probed`][crate::runner::run_guarantee_probed]).
pub type ProbeFactory<'a> = dyn FnMut(&[String]) -> Option<Box<dyn Probe>> + 'a;

/// One probed run for [`export_run_traces`]: handed a replicate seed and
/// a [`ProbeFactory`], it executes the run and returns its
/// [`RunCapture`]. Boxed so figure modules with differently-shaped
/// drivers (guarantee pipelines, query mixes, LB clusters) all export
/// through the same code path.
pub type ProbedRun<'a> = Box<dyn Fn(u64, &mut ProbeFactory<'_>) -> RunCapture + 'a>;

/// Re-run each labelled `(label, base_seed, run)` with the probe bus
/// recording; under `dir`, write per series a Chrome trace JSON
/// (`<figure>_<series>.trace.json`, openable in Perfetto /
/// `chrome://tracing`) and a collapsed-stack flamegraph
/// (`<figure>_<series>.folded`, consumable by inferno's
/// `flamegraph.pl`-compatible tooling or speedscope), plus the combined
/// `<figure>_breakdown.csv` time attribution.
///
/// The trace JSON streams to disk *during* the run through a
/// [`StreamingTraceWriter`] (teed with the [`Recorder`] the breakdown
/// needs), so export memory stays bounded by the recorder's analysis
/// events, not the trace text.
/// With `HPSOCK_SEEDS=n > 1` each series re-runs once per replicate seed
/// (derived from its base seed, see [`crate::replicate`]): the Chrome
/// trace and flamegraph are written for the base-seed replicate only,
/// while the breakdown row becomes the across-seed [`average`] of the
/// per-seed attributions, with an `n_seeds` column appended.
pub fn export_run_traces(
    dir: &Path,
    figure: &str,
    title: &str,
    runs: Vec<(&str, u64, ProbedRun<'_>)>,
) {
    let n_seeds = replicate::seed_count();
    let mut rows = Vec::with_capacity(runs.len());
    for (label, base_seed, run) in &runs {
        let seeds = replicate::seed_batch(*base_seed, n_seeds);
        let mut reps = Vec::with_capacity(seeds.len());
        // Replicate 0 (the base seed) streams the Chrome trace to disk
        // and folds the span flamegraph; the extra replicates only feed
        // the averaged breakdown.
        let rec = Recorder::new();
        let path = dir.join(format!("{figure}_{}.trace.json", slug(label)));
        let mut writer = None;
        let mut mk = |names: &[String]| -> Option<Box<dyn Probe>> {
            // Tee analysis events to the in-memory recorder and the trace
            // JSON straight to disk; fall back to recorder-only if the
            // file cannot be created.
            Some(match StreamingTraceWriter::create(&path, names) {
                Ok(w) => {
                    let probe = w.probe();
                    writer = Some(w);
                    Box::new(Tee(rec.probe(), probe))
                }
                Err(e) => {
                    eprintln!("warning: could not create {}: {e}", path.display());
                    rec.probe()
                }
            })
        };
        let cap = run(seeds[0], &mut mk);
        if let Some(w) = writer {
            match w.finish() {
                Ok(_) => println!(
                    "  -> {} ({} probe events, streamed)",
                    path.display(),
                    rec.len()
                ),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        let stacks = rec.folded_spans();
        let folded = dir.join(format!("{figure}_{}.folded", slug(label)));
        match hpsock_sim::write_folded(&folded, &stacks) {
            Ok(()) => println!("  -> {} ({} stacks)", folded.display(), stacks.len()),
            Err(e) => eprintln!("warning: could not write {}: {e}", folded.display()),
        }
        reps.push(compute(&rec, &cap, label));
        for &seed in &seeds[1..] {
            let rec = Recorder::new();
            let mut mk = |_: &[String]| -> Option<Box<dyn Probe>> { Some(rec.probe()) };
            let cap = run(seed, &mut mk);
            reps.push(compute(&rec, &cap, label));
        }
        rows.push(average(label, &reps));
    }
    let mut t = to_table(title, &rows);
    if n_seeds > 1 {
        t.headers.push("n_seeds".into());
        for row in &mut t.rows {
            row.push(n_seeds.to_string());
        }
    }
    println!("{t}");
    let csv = dir.join(format!("{figure}_breakdown.csv"));
    if let Err(e) = t.write_csv(&csv) {
        eprintln!("warning: could not write {}: {e}", csv.display());
    } else {
        println!("  -> {}\n", csv.display());
    }
}

/// [`export_run_traces`] over guarantee runs (Figures 7/8): each series
/// replays its [`GuaranteeRun`] with the replicate seed substituted.
pub fn export_guarantee_traces(
    dir: &Path,
    figure: &str,
    title: &str,
    runs: &[(&str, GuaranteeRun)],
) {
    let probed: Vec<(&str, u64, ProbedRun<'_>)> = runs
        .iter()
        .map(|(label, run)| {
            let probed: ProbedRun<'_> = Box::new(move |seed: u64, mk: &mut ProbeFactory<'_>| {
                let run_k = GuaranteeRun {
                    seed,
                    ..run.clone()
                };
                run_guarantee_probed(&run_k, |names| mk(names)).1
            });
            (*label, run.seed, probed)
        })
        .collect();
    export_run_traces(dir, figure, title, probed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_guarantee_traced;
    use proptest::prelude::*;

    #[test]
    fn union_minus_merges_and_subtracts() {
        // [0,10) u [5,20) u [30,40) = 30ns; minus [8,35) leaves [0,8)+[35,40).
        let iv = vec![(0, 10), (5, 20), (30, 40)];
        assert_eq!(union_minus(iv.clone(), vec![]), 30);
        assert_eq!(union_minus(iv, vec![(8, 35)]), 8 + 5);
    }

    #[test]
    fn union_minus_ignores_empty_and_disjoint_subtracts() {
        assert_eq!(union_minus(vec![(10, 20)], vec![(0, 5), (25, 30)]), 10);
        assert_eq!(union_minus(vec![(10, 10)], vec![]), 0, "empty interval");
        assert_eq!(union_minus(vec![], vec![(0, 100)]), 0);
    }

    #[test]
    fn union_minus_full_cover() {
        assert_eq!(union_minus(vec![(5, 15), (20, 25)], vec![(0, 30)]), 0);
    }

    /// The acceptance check on a small Figure 7-style run: the five
    /// attributed components must sum to the total server-time within 1 %
    /// (by construction the error here is only f64 rounding), and a loaded
    /// TCP run must attribute nonzero time to host, wire and stall.
    #[test]
    fn components_sum_to_total_on_small_fig7_run() {
        use hpsock_net::TransportKind;
        use hpsock_vizserver::ComputeModel;
        let run = GuaranteeRun {
            kind: TransportKind::KTcp,
            block_bytes: 65_536,
            compute: ComputeModel::None,
            target_ups: 3.0,
            n_complete: 3,
            n_partial: 2,
            seed: crate::runner::FIG7_SEED,
        };
        let rec = Recorder::new();
        let (_res, cap) = run_guarantee_traced(&run, Some(rec.probe()));
        let b = compute(&rec, &cap, "TCP");
        assert!(b.total_us > 0.0, "run advanced virtual time");
        let err = (b.components_sum_us() - b.total_us).abs();
        assert!(
            err <= 0.01 * b.total_us,
            "components {} vs total {}: off by {err}",
            b.components_sum_us(),
            b.total_us
        );
        assert!(b.host_us > 0.0, "TCP spends host time on protocol work");
        assert!(b.wire_us > 0.0, "blocks crossed the wire");
        assert!(b.idle_us >= 0.0, "idle never negative: {b:?}");
    }

    #[test]
    fn average_is_componentwise_and_identity_for_one_rep() {
        let b = |total, host| Breakdown {
            label: "x".into(),
            total_us: total,
            host_us: host,
            wire_us: 1.0,
            compute_us: 2.0,
            stall_us: 3.0,
            idle_us: total - host - 6.0,
        };
        let one = average("TCP", &[b(100.0, 10.0)]);
        assert_eq!(one.label, "TCP");
        assert_eq!(one.total_us, 100.0);
        assert_eq!(one.host_us, 10.0, "single replicate is the identity");
        let two = average("TCP", &[b(100.0, 10.0), b(200.0, 30.0)]);
        assert_eq!(two.total_us, 150.0);
        assert_eq!(two.host_us, 20.0);
        assert!(
            (two.components_sum_us() - two.total_us).abs() < 1e-9,
            "averaging preserves the exact-sum property"
        );
    }

    #[test]
    fn bucket_classification() {
        assert_eq!(bucket("node3.host_tx"), Some(0));
        assert_eq!(bucket("node0.host_rx"), Some(0));
        assert_eq!(bucket("node12.nic_tx"), Some(1));
        assert_eq!(bucket("node1.cpu"), Some(2));
        assert_eq!(bucket("something_else"), None);
    }

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(slug("SocketVIA"), "socketvia");
        assert_eq!(slug("TCP (no delay)"), "tcp_no_delay");
        assert_eq!(slug("__x__"), "x");
    }

    proptest! {
        /// The exact-sum invariant is structural, not numeric luck: for
        /// arbitrary soups of busy intervals and stalls over a synthetic
        /// station table, the five components re-sum to the stored total
        /// bit-exactly (`==` on the bit patterns, no tolerance).
        #[test]
        fn components_sum_is_bit_exact_for_arbitrary_events(
            end_ns in 1u64..5_000_000,
            services in proptest::collection::vec(
                (0usize..6, 0u64..1_000_000, 1u64..300_000), 0..48),
            stalls in proptest::collection::vec(
                (0usize..6, 0u64..1_000_000, 1u64..300_000), 0..12),
        ) {
            use hpsock_sim::{Dur, ResourceId, SimTime};
            let names = [
                "node0.host_tx",
                "node0.host_rx",
                "node0.nic_tx",
                "node0.cpu",
                "node0.link",
                "misc",
            ];
            let rec = Recorder::new();
            let mut probe = rec.probe();
            for (rid, start, len) in services {
                let start = SimTime::ZERO + Dur::nanos(start);
                probe.record(ProbeEvent::ResourceAcquire {
                    rid: ResourceId(rid),
                    arrived: start,
                    start,
                    completion: start + Dur::nanos(len),
                    service: Dur::nanos(len),
                    busy_servers: 1,
                });
            }
            for (rid, from, len) in stalls {
                let from = SimTime::ZERO + Dur::nanos(from);
                probe.record(ProbeEvent::Stall {
                    rid: ResourceId(rid),
                    from,
                    until: from + Dur::nanos(len),
                });
            }
            let cap = RunCapture {
                end: SimTime::ZERO + Dur::nanos(end_ns),
                resource_names: names.iter().map(|s| s.to_string()).collect(),
                servers: vec![1; names.len()],
                digest: 0,
            };
            let b = compute(&rec, &cap, "synthetic");
            prop_assert_eq!(
                b.components_sum_us().to_bits(),
                b.total_us.to_bits(),
                "components {} vs total {}",
                b.components_sum_us(),
                b.total_us
            );
        }
    }
}
