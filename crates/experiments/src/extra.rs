//! Supplementary analyses the paper discusses but does not plot:
//!
//! * **Figure 1's fetch amplification** — a partial query must fetch every
//!   block it touches in full, so the wasted-data ratio grows with the
//!   distribution block size (paper §2).
//! * **The partition-count trade-off surface** — complete-update vs zoom
//!   response time as the partition count varies, the underlying structure
//!   Figure 9 samples at {none, 8, 64}.

use crate::fig9::mean_response_ms;
use crate::runner::EXTRA_SEED;
use crate::table::Table;
use hpsock_net::TransportKind;
use hpsock_vizserver::{BlockedImage, ComputeModel, Rect};

/// The paper's 16 MB image.
pub const IMAGE_BYTES: u64 = 16 * 1024 * 1024;

/// Figure 1 quantified: bytes fetched vs bytes needed for a small panning
/// query, per distribution block size.
pub fn amplification_table() -> Table {
    let mut t = Table::new(
        "Figure 1: fetch amplification of a 64x64-px partial query vs block size",
        &[
            "block_bytes",
            "blocks_touched",
            "bytes_fetched",
            "amplification",
        ],
    );
    // A 64x64 px window straddling a block corner (the dotted rectangle).
    let probe = Rect::new(96, 96, 160, 160);
    for partitions in [1u64, 4, 16, 64, 256, 1024] {
        let img = BlockedImage::paper_image(IMAGE_BYTES / partitions);
        let blocks = img.blocks_in_rect(probe);
        let fetched = blocks.len() as u64 * img.block_bytes();
        t.add_row(vec![
            img.block_bytes().to_string(),
            blocks.len().to_string(),
            fetched.to_string(),
            format!("{:.1}x", img.fetch_amplification(probe)),
        ]);
    }
    t
}

/// The trade-off surface behind Figure 9: per-query response time of the
/// two extreme query classes as the partition count sweeps.
pub fn partition_tradeoff_table(kind: TransportKind, n: u32) -> Table {
    let mut t = Table::new(
        format!(
            "Partition-count trade-off ({}, no computation): zoom vs complete response (ms)",
            kind.label()
        ),
        &["partitions", "zoom_ms", "complete_ms"],
    );
    for partitions in [1u64, 4, 8, 16, 64, 256] {
        let zoom = mean_response_ms(kind, ComputeModel::None, partitions, 0.0, n, EXTRA_SEED);
        let complete = mean_response_ms(kind, ComputeModel::None, partitions, 1.0, n, EXTRA_SEED);
        t.add_row(vec![
            partitions.to_string(),
            format!("{zoom:.1}"),
            format!("{complete:.1}"),
        ]);
    }
    t
}

/// Run the supplementary tables.
pub fn run(n: u32) -> Vec<Table> {
    vec![
        amplification_table(),
        partition_tradeoff_table(TransportKind::SocketVia, n),
        partition_tradeoff_table(TransportKind::KTcp, n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_grows_with_block_size() {
        let t = amplification_table();
        let amp = |row: &Vec<String>| row[3].trim_end_matches('x').parse::<f64>().unwrap();
        // Rows are ordered from coarse (1 partition) to fine (1024): the
        // amplification must fall monotonically.
        for w in t.rows.windows(2) {
            assert!(amp(&w[0]) >= amp(&w[1]), "{:?}", t.rows);
        }
        assert!(amp(&t.rows[0]) > 100.0, "whole-image fetch is pathological");
        assert!(
            amp(t.rows.last().unwrap()) < 10.0,
            "fine blocks waste little"
        );
    }

    #[test]
    fn partitioning_tradeoff_shapes() {
        // Zoom queries get dramatically cheaper with finer partitioning
        // (less wasted fetch), while complete updates first get cheaper
        // too — pipelining across the 4 stages and 3 repositories (paper
        // §3.1) outweighs per-message overheads — but with a shrinking
        // return that per-message costs eventually erase.
        let t = partition_tradeoff_table(TransportKind::SocketVia, 3);
        let get = |r: usize, c: usize| t.rows[r][c].parse::<f64>().unwrap();
        let last = t.rows.len() - 1;
        assert!(get(last, 1) < get(0, 1) / 30.0, "zoom gets much cheaper");
        assert!(
            get(2, 2) < get(0, 2) / 2.0,
            "pipelining speeds complete updates"
        );
        let gain_coarse = get(0, 2) / get(2, 2); // 1 -> 8 partitions
        let gain_fine = get(last - 1, 2) / get(last, 2); // 64 -> 256
        assert!(
            gain_fine < gain_coarse,
            "diminishing returns: {gain_coarse:.2} then {gain_fine:.2}"
        );
    }
}
