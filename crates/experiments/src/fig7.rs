//! Figure 7 — average partial-update latency under an updates-per-second
//! guarantee, for (a) no computation and (b) linear (18 ns/B) computation.
//!
//! For each target rate the distribution block size is planned against the
//! transport's measured curve (`hpsock_vizserver::guarantee`); then the
//! pipeline streams complete updates at the target rate while partial
//! probes measure latency under load. Three series, as in the paper:
//!
//! * **TCP** — TCP sockets with the block TCP's curve requires;
//! * **SocketVIA** — SocketVIA carrying the *same* (TCP-planned) blocks,
//!   i.e. an unmodified application (the direct improvement);
//! * **SocketVIA (with DR)** — SocketVIA with blocks re-planned against
//!   its own curve (the indirect improvement).

use crate::runner::{isolated_partial_us, run_guarantee, GuaranteeRun};
use crate::sweep::parallel_map;
use crate::table::{fmt_opt, Table};
use hpsock_net::TransportKind;
use hpsock_vizserver::{block_size_for_update_rate, ComputeModel};
use socketvia::PerfCurve;

/// The paper's 16 MB image.
pub const IMAGE_BYTES: u64 = 16 * 1024 * 1024;

/// Target rates of panel (a).
pub fn rates_no_compute() -> Vec<f64> {
    vec![4.0, 3.75, 3.5, 3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
}

/// Target rates of panel (b).
pub fn rates_linear_compute() -> Vec<f64> {
    vec![3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
}

/// One sweep point: the three series' measurements at a target rate.
///
/// Latencies are the paper's "latency for this message chunk": the
/// end-to-end pipeline latency of a one-block partial update with the
/// block size the rate guarantee dictates. Sustainability of the rate
/// itself is verified with a separate loaded run.
#[derive(Debug, Clone)]
pub struct Point {
    /// Target updates per second.
    pub ups: f64,
    /// TCP partial latency, µs (None = planner dropout).
    pub tcp_us: Option<f64>,
    /// SocketVIA partial latency at TCP's block, µs.
    pub sv_us: f64,
    /// SocketVIA partial latency at its own planned block, µs.
    pub sv_dr_us: f64,
    /// Did TCP sustain the target rate in the loaded run?
    pub tcp_sustained: Option<bool>,
    /// Did SocketVIA (with DR) sustain the target rate?
    pub sv_dr_sustained: bool,
    /// Blocks used: (tcp, socketvia_dr).
    pub blocks: (Option<u64>, u64),
}

/// Sweep scale: how many updates/probes each point streams.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Complete updates per point.
    pub n_complete: u32,
    /// Partial probes per point.
    pub n_partial: u32,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            n_complete: 6,
            n_partial: 4,
        }
    }
}

/// Run one panel.
pub fn sweep(compute: ComputeModel, rates: &[f64], scale: Scale) -> Vec<Point> {
    let tcp_curve = PerfCurve::from_kind(TransportKind::KTcp);
    let sv_curve = PerfCurve::from_kind(TransportKind::SocketVia);
    // An unmodified sockets application keeps the chunking it was written
    // with: when TCP cannot plan a block for the target rate at all, the
    // no-DR SocketVIA series reuses TCP's block at TCP's best feasible
    // rate.
    let tcp_fallback = (0..)
        .map(|i| 3.25 - 0.25 * i as f64)
        .find_map(|r| block_size_for_update_rate(&tcp_curve, IMAGE_BYTES, r))
        .expect("TCP can sustain some rate");
    let jobs: Vec<(f64, Option<u64>, u64, u64)> = rates
        .iter()
        .map(|&ups| {
            let tcp_block = block_size_for_update_rate(&tcp_curve, IMAGE_BYTES, ups);
            let sv_block = block_size_for_update_rate(&sv_curve, IMAGE_BYTES, ups)
                .expect("SocketVIA sustains all paper rates");
            (ups, tcp_block, sv_block, tcp_fallback)
        })
        .collect();
    parallel_map(jobs, move |(ups, tcp_block, sv_block, fallback)| {
        let sustain = |kind, block| {
            run_guarantee(&GuaranteeRun {
                kind,
                block_bytes: block,
                compute,
                target_ups: ups,
                n_complete: scale.n_complete,
                n_partial: scale.n_partial,
                seed: 0xF167,
            })
            .sustained
        };
        let probe = |kind, block| isolated_partial_us(kind, block, compute, 4, 0xF167);
        let tcp_us = tcp_block.map(|b| probe(TransportKind::KTcp, b));
        let sv_us = probe(TransportKind::SocketVia, tcp_block.unwrap_or(fallback));
        let sv_dr_us = probe(TransportKind::SocketVia, sv_block);
        let tcp_sustained = tcp_block.map(|b| sustain(TransportKind::KTcp, b));
        let sv_dr_sustained = sustain(TransportKind::SocketVia, sv_block);
        Point {
            ups,
            tcp_us,
            sv_us,
            sv_dr_us,
            tcp_sustained,
            sv_dr_sustained,
            blocks: (tcp_block, sv_block),
        }
    })
}

/// Render a panel as the paper's series (partial-update latency in µs).
pub fn to_table(title: &str, points: &[Point]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "updates_per_sec",
            "TCP",
            "SocketVIA",
            "SocketVIA(DR)",
            "tcp_block",
            "dr_block",
            "tcp_sustained",
        ],
    );
    for p in points {
        t.add_row(vec![
            format!("{:.2}", p.ups),
            fmt_opt(p.tcp_us, 1),
            format!("{:.1}", p.sv_us),
            format!("{:.1}", p.sv_dr_us),
            p.blocks
                .0
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            p.blocks.1.to_string(),
            p.tcp_sustained
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Run both panels at the given scale.
pub fn run(scale: Scale) -> Vec<Table> {
    let a = sweep(ComputeModel::None, &rates_no_compute(), scale);
    let b = sweep(ComputeModel::paper_linear(), &rates_linear_compute(), scale);
    vec![
        to_table(
            "Figure 7(a): avg partial-update latency (us) with updates/sec guarantee, no computation",
            &a,
        ),
        to_table(
            "Figure 7(b): avg partial-update latency (us) with updates/sec guarantee, linear computation",
            &b,
        ),
    ]
}

/// Probe-bus export (behind `HPSOCK_TRACE`): re-run the 3 updates/sec
/// no-computation point once per series with a recorder attached and write
/// `fig7_<series>.trace.json` Chrome traces plus `fig7_breakdown.csv`
/// under `dir`.
pub fn export_traces(dir: &std::path::Path, scale: Scale) {
    const UPS: f64 = 3.0;
    let tcp_block =
        block_size_for_update_rate(&PerfCurve::from_kind(TransportKind::KTcp), IMAGE_BYTES, UPS)
            .expect("TCP sustains 3 ups");
    let sv_block = block_size_for_update_rate(
        &PerfCurve::from_kind(TransportKind::SocketVia),
        IMAGE_BYTES,
        UPS,
    )
    .expect("SocketVIA sustains all paper rates");
    let mk = |kind, block_bytes| GuaranteeRun {
        kind,
        block_bytes,
        compute: ComputeModel::None,
        target_ups: UPS,
        n_complete: scale.n_complete,
        n_partial: scale.n_partial,
        seed: 0xF167,
    };
    crate::breakdown::export_guarantee_traces(
        dir,
        "fig7",
        "Figure 7 time breakdown at 3 updates/sec, no computation (us of server-time)",
        &[
            ("TCP", mk(TransportKind::KTcp, tcp_block)),
            ("SocketVIA", mk(TransportKind::SocketVia, tcp_block)),
            (
                "SocketVIA (with DR)",
                mk(TransportKind::SocketVia, sv_block),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_a_midrange_point() {
        let pts = sweep(
            ComputeModel::None,
            &[3.0],
            Scale {
                n_complete: 4,
                n_partial: 3,
            },
        );
        let p = &pts[0];
        assert_eq!(p.tcp_sustained, Some(true), "TCP sustains 3 ups");
        let t = p.tcp_us.unwrap();
        let (s, d) = (p.sv_us, p.sv_dr_us);
        assert!(s < t, "direct improvement: {s} < {t}");
        assert!(d < s, "DR improves further: {d} < {s}");
        assert!(t / d > 3.0, "combined improvement is large: {}", t / d);
    }

    #[test]
    fn tcp_drops_out_at_four_ups() {
        let pts = sweep(
            ComputeModel::None,
            &[4.0],
            Scale {
                n_complete: 3,
                n_partial: 2,
            },
        );
        assert!(pts[0].tcp_us.is_none(), "no TCP block for 4 ups");
        assert!(pts[0].sv_dr_sustained, "SocketVIA DR sustains 4 ups");
    }
}
