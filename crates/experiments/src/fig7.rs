//! Figure 7 — average partial-update latency under an updates-per-second
//! guarantee, for (a) no computation and (b) linear (18 ns/B) computation.
//!
//! For each target rate the distribution block size is planned against the
//! transport's measured curve (`hpsock_vizserver::guarantee`); then the
//! pipeline streams complete updates at the target rate while partial
//! probes measure latency under load. Three series, as in the paper:
//!
//! * **TCP** — TCP sockets with the block TCP's curve requires;
//! * **SocketVIA** — SocketVIA carrying the *same* (TCP-planned) blocks,
//!   i.e. an unmodified application (the direct improvement);
//! * **SocketVIA (with DR)** — SocketVIA with blocks re-planned against
//!   its own curve (the indirect improvement).

use crate::replicate::{self, Series};
use crate::runner::{isolated_partial_us, run_guarantee, GuaranteeRun, FIG7_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::Table;
use hpsock_net::TransportKind;
use hpsock_vizserver::{block_size_for_update_rate, ComputeModel};
use socketvia::PerfCurve;

/// The paper's 16 MB image.
pub const IMAGE_BYTES: u64 = 16 * 1024 * 1024;

/// Target rates of panel (a).
pub fn rates_no_compute() -> Vec<f64> {
    vec![4.0, 3.75, 3.5, 3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
}

/// Target rates of panel (b).
pub fn rates_linear_compute() -> Vec<f64> {
    vec![3.25, 3.0, 2.75, 2.5, 2.25, 2.0]
}

/// One sweep point: the three series' measurements at a target rate.
///
/// Latencies are the paper's "latency for this message chunk": the
/// end-to-end pipeline latency of a one-block partial update with the
/// block size the rate guarantee dictates. Sustainability of the rate
/// itself is verified with a separate loaded run.
#[derive(Debug, Clone)]
pub struct Point {
    /// Target updates per second.
    pub ups: f64,
    /// TCP partial latency, µs (None = planner dropout).
    pub tcp_us: Option<f64>,
    /// SocketVIA partial latency at TCP's block, µs.
    pub sv_us: f64,
    /// SocketVIA partial latency at its own planned block, µs.
    pub sv_dr_us: f64,
    /// Did TCP sustain the target rate in the loaded run?
    pub tcp_sustained: Option<bool>,
    /// Did SocketVIA (with DR) sustain the target rate?
    pub sv_dr_sustained: bool,
    /// Blocks used: (tcp, socketvia_dr).
    pub blocks: (Option<u64>, u64),
}

/// Sweep scale: how many updates/probes each point streams.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Complete updates per point.
    pub n_complete: u32,
    /// Partial probes per point.
    pub n_partial: u32,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            n_complete: 6,
            n_partial: 4,
        }
    }
}

/// Run one panel with the single base seed (the historical figure).
pub fn sweep(compute: ComputeModel, rates: &[f64], scale: Scale) -> Vec<Point> {
    sweep_seeded(compute, rates, scale, &[FIG7_SEED])
        .into_iter()
        .map(|mut reps| reps.remove(0))
        .collect()
}

/// Run one panel, one replicate per seed in `seeds`: returns per-rate
/// batches of [`Point`]s in seed order (see [`crate::replicate`]).
pub fn sweep_seeded(
    compute: ComputeModel,
    rates: &[f64],
    scale: Scale,
    seeds: &[u64],
) -> Vec<Vec<Point>> {
    let tcp_curve = PerfCurve::from_kind(TransportKind::KTcp);
    let sv_curve = PerfCurve::from_kind(TransportKind::SocketVia);
    // An unmodified sockets application keeps the chunking it was written
    // with: when TCP cannot plan a block for the target rate at all, the
    // no-DR SocketVIA series reuses TCP's block at TCP's best feasible
    // rate.
    let tcp_fallback = (0..)
        .map(|i| 3.25 - 0.25 * i as f64)
        .find_map(|r| block_size_for_update_rate(&tcp_curve, IMAGE_BYTES, r))
        .expect("TCP can sustain some rate");
    let jobs: Vec<(f64, Option<u64>, u64, u64)> = rates
        .iter()
        .map(|&ups| {
            let tcp_block = block_size_for_update_rate(&tcp_curve, IMAGE_BYTES, ups);
            let sv_block = block_size_for_update_rate(&sv_curve, IMAGE_BYTES, ups)
                .expect("SocketVIA sustains all paper rates");
            (ups, tcp_block, sv_block, tcp_fallback)
        })
        .collect();
    parallel_map_seeded(
        jobs,
        seeds,
        move |&(ups, tcp_block, sv_block, fallback), seed| {
            let sustain = |kind, block| {
                run_guarantee(&GuaranteeRun {
                    kind,
                    block_bytes: block,
                    compute,
                    target_ups: ups,
                    n_complete: scale.n_complete,
                    n_partial: scale.n_partial,
                    seed,
                })
                .sustained
            };
            let probe = |kind, block| isolated_partial_us(kind, block, compute, 4, seed);
            let tcp_us = tcp_block.map(|b| probe(TransportKind::KTcp, b));
            let sv_us = probe(TransportKind::SocketVia, tcp_block.unwrap_or(fallback));
            let sv_dr_us = probe(TransportKind::SocketVia, sv_block);
            let tcp_sustained = tcp_block.map(|b| sustain(TransportKind::KTcp, b));
            let sv_dr_sustained = sustain(TransportKind::SocketVia, sv_block);
            Point {
                ups,
                tcp_us,
                sv_us,
                sv_dr_us,
                tcp_sustained,
                sv_dr_sustained,
                blocks: (tcp_block, sv_block),
            }
        },
    )
}

/// Render a panel as the paper's series (partial-update latency in µs).
/// Single-seed batches reproduce the historical columns exactly;
/// replicated batches add per-series `_ci95_lo`/`_ci95_hi` columns (the
/// bare column becomes the across-seed mean) plus a trailing `n_seeds`.
/// `HPSOCK_TAILS=1` additionally appends `_p50`/`_p99`/`_p999` tail
/// columns after each series (see [`replicate::tails_enabled`]).
pub fn to_table(title: &str, points: &[Vec<Point>]) -> Table {
    let n_seeds = points.first().map_or(1, Vec::len);
    let replicated = n_seeds > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["updates_per_sec".to_string()];
    for name in ["TCP", "SocketVIA", "SocketVIA(DR)"] {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    headers.extend(["tcp_block", "dr_block", "tcp_sustained"].map(String::from));
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(title, headers);
    for reps in points {
        let p0 = &reps[0];
        let mut row = vec![format!("{:.2}", p0.ups)];
        let cells = |row: &mut Vec<String>, s: Series| {
            replicate::value_cells(row, &s, 1, replicated);
            replicate::tail_cells(row, &s, 1, tails);
        };
        cells(&mut row, Series::collect(reps.iter().map(|p| p.tcp_us)));
        cells(
            &mut row,
            Series::collect(reps.iter().map(|p| Some(p.sv_us))),
        );
        cells(
            &mut row,
            Series::collect(reps.iter().map(|p| Some(p.sv_dr_us))),
        );
        row.push(
            p0.blocks
                .0
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        row.push(p0.blocks.1.to_string());
        row.push(if replicated {
            let known: Vec<bool> = reps.iter().filter_map(|p| p.tcp_sustained).collect();
            if known.is_empty() {
                "-".into()
            } else {
                format!("{}/{}", known.iter().filter(|&&s| s).count(), known.len())
            }
        } else {
            p0.tcp_sustained
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into())
        });
        if replicated {
            row.push(n_seeds.to_string());
        }
        t.add_row(row);
    }
    t
}

/// Run both panels at the given scale, with the `HPSOCK_SEEDS` replicate
/// batch derived from [`FIG7_SEED`].
pub fn run(scale: Scale) -> Vec<Table> {
    run_seeded(
        scale,
        &replicate::seed_batch(FIG7_SEED, replicate::seed_count()),
    )
}

/// [`run`] with an explicit seed batch.
pub fn run_seeded(scale: Scale, seeds: &[u64]) -> Vec<Table> {
    let a = sweep_seeded(ComputeModel::None, &rates_no_compute(), scale, seeds);
    let b = sweep_seeded(
        ComputeModel::paper_linear(),
        &rates_linear_compute(),
        scale,
        seeds,
    );
    vec![
        to_table(
            "Figure 7(a): avg partial-update latency (us) with updates/sec guarantee, no computation",
            &a,
        ),
        to_table(
            "Figure 7(b): avg partial-update latency (us) with updates/sec guarantee, linear computation",
            &b,
        ),
    ]
}

/// Probe-bus export (behind `HPSOCK_TRACE`): re-run the 3 updates/sec
/// no-computation point once per series with a recorder attached and write
/// `fig7_<series>.trace.json` Chrome traces plus `fig7_breakdown.csv`
/// under `dir`.
pub fn export_traces(dir: &std::path::Path, scale: Scale) {
    const UPS: f64 = 3.0;
    let tcp_block =
        block_size_for_update_rate(&PerfCurve::from_kind(TransportKind::KTcp), IMAGE_BYTES, UPS)
            .expect("TCP sustains 3 ups");
    let sv_block = block_size_for_update_rate(
        &PerfCurve::from_kind(TransportKind::SocketVia),
        IMAGE_BYTES,
        UPS,
    )
    .expect("SocketVIA sustains all paper rates");
    let mk = |kind, block_bytes| GuaranteeRun {
        kind,
        block_bytes,
        compute: ComputeModel::None,
        target_ups: UPS,
        n_complete: scale.n_complete,
        n_partial: scale.n_partial,
        seed: FIG7_SEED,
    };
    crate::breakdown::export_guarantee_traces(
        dir,
        "fig7",
        "Figure 7 time breakdown at 3 updates/sec, no computation (us of server-time)",
        &[
            ("TCP", mk(TransportKind::KTcp, tcp_block)),
            ("SocketVIA", mk(TransportKind::SocketVia, tcp_block)),
            (
                "SocketVIA (with DR)",
                mk(TransportKind::SocketVia, sv_block),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_a_midrange_point() {
        let pts = sweep(
            ComputeModel::None,
            &[3.0],
            Scale {
                n_complete: 4,
                n_partial: 3,
            },
        );
        let p = &pts[0];
        assert_eq!(p.tcp_sustained, Some(true), "TCP sustains 3 ups");
        let t = p.tcp_us.unwrap();
        let (s, d) = (p.sv_us, p.sv_dr_us);
        assert!(s < t, "direct improvement: {s} < {t}");
        assert!(d < s, "DR improves further: {d} < {s}");
        assert!(t / d > 3.0, "combined improvement is large: {}", t / d);
    }

    #[test]
    fn replicated_table_adds_ci_columns_and_single_seed_keeps_legacy_ones() {
        let scale = Scale {
            n_complete: 3,
            n_partial: 2,
        };
        let seeds = replicate::seed_batch(FIG7_SEED, 3);
        let reps = sweep_seeded(ComputeModel::None, &[3.0, 4.0], scale, &seeds);
        assert_eq!(reps.len(), 2, "one batch per rate");
        assert!(reps.iter().all(|r| r.len() == 3), "three replicates each");
        let t = to_table("t", &reps);
        assert_eq!(
            t.headers,
            vec![
                "updates_per_sec",
                "TCP",
                "TCP_ci95_lo",
                "TCP_ci95_hi",
                "SocketVIA",
                "SocketVIA_ci95_lo",
                "SocketVIA_ci95_hi",
                "SocketVIA(DR)",
                "SocketVIA(DR)_ci95_lo",
                "SocketVIA(DR)_ci95_hi",
                "tcp_block",
                "dr_block",
                "tcp_sustained",
                "n_seeds",
            ]
        );
        let four_ups = &t.rows[1];
        assert_eq!(&four_ups[1..4], ["-", "-", "-"], "TCP dropout stays a dash");
        assert_eq!(four_ups[13], "3");
        // Single-seed table: the legacy columns, bit-identical formatting.
        let single = to_table(
            "t",
            &sweep_seeded(ComputeModel::None, &[3.0], scale, &seeds[..1]),
        );
        assert_eq!(
            single.headers,
            vec![
                "updates_per_sec",
                "TCP",
                "SocketVIA",
                "SocketVIA(DR)",
                "tcp_block",
                "dr_block",
                "tcp_sustained",
            ]
        );
        assert_eq!(single.rows[0][6], "true");
    }

    #[test]
    fn tail_columns_are_opt_in_and_compose_with_ci95() {
        let scale = Scale {
            n_complete: 3,
            n_partial: 2,
        };
        let seeds = replicate::seed_batch(FIG7_SEED, 3);
        let reps = sweep_seeded(ComputeModel::None, &[3.0], scale, &seeds);
        // Tails off (scoped, not the ambient env) is byte-identical to the
        // default rendering — the flag must never leak into base tables.
        let base = to_table("t", &reps);
        let off = replicate::with_tails(false, || to_table("t", &reps));
        assert_eq!(
            base.to_csv(),
            off.to_csv(),
            "tails-off table is the base table"
        );
        // Tails on: each series gains p50/p99/p999 right after its ci95
        // block, and the trailing columns stay in place.
        let on = replicate::with_tails(true, || to_table("t", &reps));
        assert_eq!(
            on.headers[1..9],
            [
                "TCP",
                "TCP_ci95_lo",
                "TCP_ci95_hi",
                "TCP_p50",
                "TCP_p99",
                "TCP_p999",
                "SocketVIA",
                "SocketVIA_ci95_lo",
            ]
        );
        assert_eq!(on.headers.last().map(String::as_str), Some("n_seeds"));
        assert_eq!(on.rows[0].len(), on.headers.len());
        let p50: f64 = on.rows[0][4].parse().expect("TCP_p50 is numeric");
        let p999: f64 = on.rows[0][6].parse().expect("TCP_p999 is numeric");
        assert!(p50 > 0.0 && p50 <= p999, "quantiles ordered: {p50} {p999}");
    }

    #[test]
    fn tcp_drops_out_at_four_ups() {
        let pts = sweep(
            ComputeModel::None,
            &[4.0],
            Scale {
                n_complete: 3,
                n_partial: 2,
            },
        );
        assert!(pts[0].tcp_us.is_none(), "no TCP block for 4 ups");
        assert!(pts[0].sv_dr_sustained, "SocketVIA DR sustains 4 ups");
    }
}
