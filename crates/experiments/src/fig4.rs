//! Figure 4 — micro-benchmarks: (a) ping-pong latency, (b) streamed
//! bandwidth, for VIA / SocketVIA / TCP. Also regenerates the Figure 2
//! crossover table (U1/U2, L1/L2/L3) as a by-product.

use crate::breakdown::slug;
use crate::table::Table;
use hpsock_net::TransportKind;
use hpsock_sim::{Recorder, StreamingTraceWriter, Tee};
use socketvia::curves::{crossover, PerfCurve};
use socketvia::{bandwidth_series, latency_series, streaming_mbps_probed, Provider};
use std::path::Path;

/// Message sizes of Figure 4(a).
pub fn latency_sizes() -> Vec<u64> {
    (2..=12).map(|p| 1u64 << p).collect() // 4 B .. 4 KB
}

/// Message sizes of Figure 4(b).
pub fn bandwidth_sizes() -> Vec<u64> {
    (3..=16).map(|p| 1u64 << p).collect() // 8 B .. 64 KB
}

/// Regenerate Figure 4(a): one row per message size, one latency column
/// per transport.
pub fn latency_table(iters: u32) -> Table {
    let sizes = latency_sizes();
    let mut t = Table::new(
        "Figure 4(a): one-way latency (us) vs message size",
        &["msg_bytes", "VIA", "SocketVIA", "TCP"],
    );
    let series: Vec<Vec<f64>> = TransportKind::PAPER_SET
        .iter()
        .map(|&k| {
            latency_series(&Provider::new(k), &sizes, iters)
                .into_iter()
                .map(|p| p.oneway_us)
                .collect()
        })
        .collect();
    for (i, &s) in sizes.iter().enumerate() {
        t.add_row(vec![
            s.to_string(),
            format!("{:.2}", series[0][i]),
            format!("{:.2}", series[1][i]),
            format!("{:.2}", series[2][i]),
        ]);
    }
    t
}

/// Regenerate Figure 4(b): bandwidth in Mbps per message size.
pub fn bandwidth_table(total_bytes: u64) -> Table {
    let sizes = bandwidth_sizes();
    let mut t = Table::new(
        "Figure 4(b): bandwidth (Mbps) vs message size",
        &["msg_bytes", "VIA", "SocketVIA", "TCP"],
    );
    let series: Vec<Vec<f64>> = TransportKind::PAPER_SET
        .iter()
        .map(|&k| {
            bandwidth_series(&Provider::new(k), &sizes, total_bytes)
                .into_iter()
                .map(|p| p.mbps)
                .collect()
        })
        .collect();
    for (i, &s) in sizes.iter().enumerate() {
        t.add_row(vec![
            s.to_string(),
            format!("{:.1}", series[0][i]),
            format!("{:.1}", series[1][i]),
            format!("{:.1}", series[2][i]),
        ]);
    }
    t
}

/// Regenerate the Figure 2 conceptual crossover for a set of required
/// bandwidths, from the *measured* curves.
pub fn crossover_table() -> Table {
    let tcp = PerfCurve::measure(&Provider::new(TransportKind::KTcp));
    let sv = PerfCurve::measure(&Provider::new(TransportKind::SocketVia));
    let mut t = Table::new(
        "Figure 2: message size for required bandwidth (U1=TCP, U2=SocketVIA) and latencies",
        &[
            "reqd_Mbps",
            "U1_bytes",
            "U2_bytes",
            "L1_us",
            "L2_us",
            "L3_us",
        ],
    );
    for mbps in [100.0, 200.0, 300.0, 400.0, 500.0] {
        match crossover(&tcp, &sv, mbps) {
            Some(x) => t.add_row(vec![
                format!("{mbps:.0}"),
                x.u1.to_string(),
                x.u2.to_string(),
                format!("{:.1}", x.l1_us),
                format!("{:.1}", x.l2_us),
                format!("{:.1}", x.l3_us),
            ]),
            None => t.add_row(vec![
                format!("{mbps:.0}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// Run everything Figure 4 needs and return the tables.
pub fn run(iters: u32, total_bytes: u64) -> Vec<Table> {
    vec![
        latency_table(iters),
        bandwidth_table(total_bytes),
        crossover_table(),
    ]
}

/// `HPSOCK_TRACE` export: re-run the peak (64 KB) streaming benchmark per
/// transport with the probe bus recording. Writes one Chrome trace per
/// series (`fig4_<series>.trace.json`) and surfaces the net engine's
/// per-connection bandwidth gauges (`net.conn<N>.mbps`) as
/// `fig4_bandwidth_gauges.csv`: the gauge's final value and its
/// time-weighted mean over the run, next to the benchmark's own
/// bytes/time measurement they should bracket.
pub fn export_traces(dir: &Path, total_bytes: u64) {
    const MSG_BYTES: u64 = 65_536;
    let count = (total_bytes / MSG_BYTES).clamp(32, 4_000) as u32;
    let mut t = Table::new(
        "Figure 4 per-connection bandwidth gauges at 64 KB messages",
        &[
            "series",
            "gauge",
            "final_mbps",
            "mean_mbps",
            "measured_mbps",
        ],
    );
    for &kind in TransportKind::PAPER_SET.iter() {
        let rec = Recorder::new();
        let path = dir.join(format!("fig4_{}.trace.json", slug(kind.label())));
        let mut writer = None;
        let (mbps, end) = streaming_mbps_probed(&Provider::new(kind), MSG_BYTES, count, |names| {
            // Tee analysis events to the recorder and the trace JSON
            // straight to disk; recorder-only if the file can't open.
            Some(match StreamingTraceWriter::create(&path, names) {
                Ok(w) => {
                    let probe = w.probe();
                    writer = Some(w);
                    Box::new(Tee(rec.probe(), probe))
                }
                Err(e) => {
                    eprintln!("warning: could not create {}: {e}", path.display());
                    rec.probe()
                }
            })
        });
        if let Some(w) = writer {
            match w.finish() {
                Ok(_) => println!(
                    "  -> {} ({} probe events, streamed)",
                    path.display(),
                    rec.len()
                ),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        rec.with_metrics(|m| {
            let mut names: Vec<&str> = m
                .gauge_names()
                .filter(|n| n.starts_with("net.conn") && n.ends_with(".mbps"))
                .collect();
            names.sort_unstable();
            for name in names {
                t.add_row(vec![
                    kind.label().to_string(),
                    name.to_string(),
                    format!("{:.1}", m.gauge_current(name)),
                    format!("{:.1}", m.gauge_mean(name, end)),
                    format!("{mbps:.1}"),
                ]);
            }
        });
    }
    println!("{t}");
    let csv = dir.join("fig4_bandwidth_gauges.csv");
    if let Err(e) = t.write_csv(&csv) {
        eprintln!("warning: could not write {}: {e}", csv.display());
    } else {
        println!("  -> {}\n", csv.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_table_shape() {
        let t = latency_table(4);
        assert_eq!(t.rows.len(), latency_sizes().len());
        // SocketVIA small-message row near 9.5us; TCP ~5x.
        let first = &t.rows[0];
        let sv: f64 = first[2].parse().unwrap();
        let tcp: f64 = first[3].parse().unwrap();
        assert!((sv - 9.5).abs() < 0.5, "{sv}");
        assert!((tcp / sv - 5.0).abs() < 0.5, "{tcp} / {sv}");
    }

    #[test]
    fn bandwidth_table_peaks() {
        let t = bandwidth_table(1 << 21);
        let last = t.rows.last().unwrap();
        let via: f64 = last[1].parse().unwrap();
        let sv: f64 = last[2].parse().unwrap();
        let tcp: f64 = last[3].parse().unwrap();
        assert!((via - 795.0).abs() < 40.0);
        assert!((sv - 763.0).abs() < 40.0);
        assert!((tcp - 510.0).abs() < 40.0);
    }

    #[test]
    fn crossover_rows_show_u2_below_u1() {
        let t = crossover_table();
        let row = &t.rows[3]; // 400 Mbps
        let u1: u64 = row[1].parse().unwrap();
        let u2: u64 = row[2].parse().unwrap();
        assert!(u2 * 4 <= u1, "U2={u2} U1={u1}");
        let l1: f64 = row[3].parse().unwrap();
        let l3: f64 = row[5].parse().unwrap();
        assert!(l3 < l1);
    }
}
