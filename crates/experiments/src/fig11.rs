//! Figure 11 — execution time under demand-driven scheduling on a
//! heterogeneous cluster: nodes slow down per-block with probability `p`
//! (x-axis) at factors 2/4/8, for SocketVIA and TCP at their
//! perfect-pipelining block sizes.

use crate::breakdown::{self, ProbeFactory, ProbedRun};
use crate::replicate::{self, Series};
use crate::runner::{RunCapture, FIG11_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::Table;
use hpsock_net::TransportKind;
use hpsock_sim::Probe;
use hpsock_vizserver::{dd_execution_time, dd_execution_time_probed, LbSetup};
use std::path::Path;

/// Probabilities on the x-axis (percent / 100).
pub fn probabilities() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// Heterogeneity factors plotted.
pub const FACTORS: [f64; 3] = [2.0, 4.0, 8.0];

/// Workload processed per run (the same byte volume for both transports,
/// split into each transport's block size).
pub const WORKLOAD_BYTES: u64 = 2 * 1024 * 1024;

/// Execution time (µs) for one point.
pub fn exec_us(kind: TransportKind, prob: f64, factor: f64, seed: u64) -> f64 {
    let setup = LbSetup::paper(kind);
    let blocks = (WORKLOAD_BYTES / setup.block_bytes) as u32;
    dd_execution_time(&setup, prob, factor, blocks, seed).as_micros_f64()
}

/// [`exec_us`] with the probe bus attached once the LB cluster exists
/// (the factory receives the resource-name table), additionally
/// returning the run's [`RunCapture`] for the breakdown/export layer.
/// Probes are observational only, so the measured execution time is
/// identical to the unprobed run (pinned by the determinism tests).
pub fn exec_probed(
    kind: TransportKind,
    prob: f64,
    factor: f64,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (f64, RunCapture) {
    let setup = LbSetup::paper(kind);
    let blocks = (WORKLOAD_BYTES / setup.block_bytes) as u32;
    let (dur, cap) = dd_execution_time_probed(&setup, prob, factor, blocks, seed, make_probe);
    (dur.as_micros_f64(), cap)
}

/// `HPSOCK_TRACE` export: replay the p=0.5, factor-4 demand-driven
/// cluster (mid-sweep on both axes) over TCP and SocketVIA with the
/// probe bus recording; see [`breakdown::export_run_traces`] for the
/// files written.
pub fn export_traces(dir: &Path) {
    let run = |kind: TransportKind| -> ProbedRun<'static> {
        Box::new(move |seed: u64, mk: &mut ProbeFactory<'_>| {
            exec_probed(kind, 0.5, 4.0, seed, |names| mk(names)).1
        })
    };
    breakdown::export_run_traces(
        dir,
        "fig11",
        "Figure 11 time breakdown at p=0.5, heterogeneity factor 4 (us of server-time)",
        vec![
            ("TCP", FIG11_SEED, run(TransportKind::KTcp)),
            ("SocketVIA", FIG11_SEED, run(TransportKind::SocketVia)),
        ],
    );
}

/// Run the sweep with the `HPSOCK_SEEDS` replicate batch derived from
/// [`FIG11_SEED`].
pub fn run() -> Vec<Table> {
    run_seeded(&replicate::seed_batch(FIG11_SEED, replicate::seed_count()))
}

/// [`run`] with an explicit seed batch (see [`crate::replicate`]):
/// replicated batches add per-column `_ci95_lo`/`_ci95_hi` plus a
/// trailing `n_seeds`; `HPSOCK_TAILS=1` appends `_p50`/`_p99`/`_p999`
/// tail columns after each series.
pub fn run_seeded(seeds: &[u64]) -> Vec<Table> {
    const COLS: [&str; 6] = [
        "SocketVIA(2)",
        "SocketVIA(4)",
        "SocketVIA(8)",
        "TCP(2)",
        "TCP(4)",
        "TCP(8)",
    ];
    let probs = probabilities();
    let mut jobs = Vec::new();
    for &p in &probs {
        for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
            for f in FACTORS {
                jobs.push((kind, p, f));
            }
        }
    }
    let results = parallel_map_seeded(jobs, seeds, |&(kind, p, f), seed| exec_us(kind, p, f, seed));
    let replicated = seeds.len() > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["prob_%".to_string()];
    for name in COLS {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(
        "Figure 11: execution time (us) vs probability of being slow (demand-driven)",
        headers,
    );
    for (i, &p) in probs.iter().enumerate() {
        let base = i * COLS.len();
        let mut row = vec![format!("{:.0}", p * 100.0)];
        for j in 0..COLS.len() {
            let s = Series::collect(results[base + j].iter().map(|&v| Some(v)));
            replicate::value_cells(&mut row, &s, 0, replicated);
            replicate::tail_cells(&mut row, &s, 0, tails);
        }
        if replicated {
            row.push(seeds.len().to_string());
        }
        t.add_row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_grows_with_probability_at_high_factor() {
        let lo = exec_us(TransportKind::SocketVia, 0.1, 8.0, 1);
        let hi = exec_us(TransportKind::SocketVia, 0.9, 8.0, 1);
        assert!(hi > 1.5 * lo, "p=0.9 {hi:.0}us vs p=0.1 {lo:.0}us");
    }

    #[test]
    fn tcp_stays_close_to_socketvia_under_dd() {
        // The paper's headline for this figure: demand-driven scheduling +
        // pipelining make the substrates comparable.
        for p in [0.3, 0.7] {
            let sv = exec_us(TransportKind::SocketVia, p, 4.0, 2);
            let tcp = exec_us(TransportKind::KTcp, p, 4.0, 2);
            let ratio = tcp / sv;
            assert!(
                (0.6..1.7).contains(&ratio),
                "p={p}: TCP {tcp:.0}us vs SocketVIA {sv:.0}us"
            );
        }
    }
}
