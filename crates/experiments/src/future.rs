//! Beyond the paper: the conclusion's stated future work — "the push/pull
//! data transfer model using RDMA operations in the emerging networks" —
//! quantified on the same harness. An InfiniBand-class RDMA transport
//! (`TransportKind::Rdma`) replays the paper's key experiments next to
//! SocketVIA and TCP.

use crate::runner::{isolated_partial_us, run_saturation_ups};
use crate::table::{fmt_opt, Table};
use hpsock_net::TransportKind;
use hpsock_sim::SimTime;
use hpsock_vizserver::{block_size_for_update_rate, rr_reaction_time, ComputeModel, LbSetup};
use socketvia::{microbench, PerfCurve, Provider};

const TRANSPORTS: [TransportKind; 3] = [
    TransportKind::KTcp,
    TransportKind::SocketVia,
    TransportKind::Rdma,
];

/// Micro-benchmark comparison including the RDMA transport.
pub fn microbench_table() -> Table {
    let mut t = Table::new(
        "Future work: RDMA-class transport vs the paper's substrates (micro-benchmarks)",
        &["transport", "latency_4B_us", "peak_Mbps", "bw_at_2KB_Mbps"],
    );
    for kind in TRANSPORTS {
        let p = Provider::new(kind);
        let lat = microbench::oneway_us(&p, 4, 8);
        let peak = microbench::streaming_mbps(&p, 65_536, 96);
        let bw2k = microbench::streaming_mbps(&p, 2_048, 256);
        t.add_row(vec![
            kind.label().to_string(),
            format!("{lat:.2}"),
            format!("{peak:.0}"),
            format!("{bw2k:.0}"),
        ]);
    }
    t
}

/// The Figure 7/8 story replayed with RDMA: what rate guarantees become
/// feasible, and at what partial-update latency.
pub fn guarantee_table() -> Table {
    let mut t = Table::new(
        "Future work: guarantees with RDMA (16 MB image, no computation)",
        &[
            "transport",
            "max_updates_per_sec",
            "block_for_4ups",
            "partial_us_at_4ups",
        ],
    );
    for kind in TRANSPORTS {
        let curve = PerfCurve::from_kind(kind);
        let max_ups = curve.peak_bandwidth_mbps() * 1e6 / (16.0 * 1024.0 * 1024.0 * 8.0);
        let block = block_size_for_update_rate(&curve, 16 * 1024 * 1024, 4.0);
        let partial = block.map(|b| isolated_partial_us(kind, b, ComputeModel::None, 3, 3));
        t.add_row(vec![
            kind.label().to_string(),
            format!("{max_ups:.1}"),
            block.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            fmt_opt(partial, 1),
        ]);
    }
    t
}

/// Figure 10's reaction time with RDMA's perfect-pipelining block (256 B):
/// mistakes become almost free.
pub fn reaction_table() -> Table {
    let mut t = Table::new(
        "Future work: load-balancer reaction time with RDMA (factor 4)",
        &["transport", "block", "reaction_us"],
    );
    for kind in TRANSPORTS {
        let setup = LbSetup::paper(kind);
        let emit_ns = (setup.ns_per_byte * setup.block_bytes as f64) as u64;
        let slow_at = SimTime::from_nanos(emit_ns * 100);
        let r = rr_reaction_time(&setup, 4.0, slow_at, 300, 5).map(|d| d.as_micros_f64());
        t.add_row(vec![
            kind.label().to_string(),
            setup.block_bytes.to_string(),
            fmt_opt(r, 1),
        ]);
    }
    t
}

/// Saturation throughput with compute — does RDMA move the compute-bound
/// ceiling? (It cannot: the paper's observation that low-overhead
/// substrates expose the application bottleneck extends to RDMA.)
pub fn compute_ceiling_table() -> Table {
    let mut t = Table::new(
        "Future work: saturation updates/sec with 18 ns/B compute (ceiling is the app)",
        &["transport", "updates_per_sec"],
    );
    for kind in TRANSPORTS {
        let ups = run_saturation_ups(kind, 65_536, ComputeModel::paper_linear(), 3, 5);
        t.add_row(vec![kind.label().to_string(), format!("{ups:.2}")]);
    }
    t
}

/// Run all future-work tables.
pub fn run() -> Vec<Table> {
    vec![
        microbench_table(),
        guarantee_table(),
        reaction_table(),
        compute_ceiling_table(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_dominates_socketvia_microbench() {
        let rdma = Provider::new(TransportKind::Rdma);
        let sv = Provider::new(TransportKind::SocketVia);
        let rl = microbench::oneway_us(&rdma, 4, 8);
        let sl = microbench::oneway_us(&sv, 4, 8);
        assert!(rl < sl / 1.8, "RDMA latency {rl} vs SocketVIA {sl}");
        let rb = microbench::streaming_mbps(&rdma, 65_536, 96);
        let sb = microbench::streaming_mbps(&sv, 65_536, 96);
        assert!(rb > 4.0 * sb, "RDMA bw {rb} vs SocketVIA {sb}");
    }

    #[test]
    fn rdma_makes_4ups_trivial() {
        let curve = PerfCurve::from_kind(TransportKind::Rdma);
        let block = block_size_for_update_rate(&curve, 16 * 1024 * 1024, 4.0).unwrap();
        assert!(block <= 1_024, "tiny blocks suffice: {block}");
    }

    #[test]
    fn compute_ceiling_is_transport_independent() {
        let sv = run_saturation_ups(
            TransportKind::SocketVia,
            65_536,
            ComputeModel::paper_linear(),
            3,
            5,
        );
        let rdma = run_saturation_ups(
            TransportKind::Rdma,
            65_536,
            ComputeModel::paper_linear(),
            3,
            5,
        );
        assert!(
            (rdma - sv).abs() / sv < 0.15,
            "both pinned at the app ceiling: {sv} vs {rdma}"
        );
    }
}
