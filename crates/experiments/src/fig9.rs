//! Figure 9 — average response time of a mixed query stream (zoom queries
//! touching 4 chunks vs complete updates touching everything), as the
//! fraction of complete updates varies, for dataset partitionings of
//! none / 8 / 64 chunks, over TCP and SocketVIA, with and without
//! computation.

use crate::breakdown::{self, ProbeFactory, ProbedRun};
use crate::replicate::{self, Series};
use crate::runner::{RunCapture, FIG9_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::Table;
use hpsock_net::{Cluster, TransportKind};
use hpsock_sim::{Probe, Sim};
use hpsock_vizserver::{BlockedImage, ComputeModel, PipelineCfg, Plan, QueryDriver, VizPipeline};
use socketvia::Provider;
use std::path::Path;

/// The mixed-stream interleaving now lives next to the other query
/// constructors; re-exported so `fig9::query_mix` keeps resolving.
pub use hpsock_vizserver::query_mix;

/// The paper's 16 MB image.
pub const IMAGE_BYTES: u64 = 16 * 1024 * 1024;

/// Partition counts plotted in the paper ("No Partitions", 8, 64).
pub const PARTITIONS: [u64; 3] = [1, 8, 64];

/// Complete-update fractions (x-axis).
pub fn fractions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Mean response time (ms) of a closed-loop mixed stream.
pub fn mean_response_ms(
    kind: TransportKind,
    compute: ComputeModel,
    partitions: u64,
    fraction: f64,
    n: u32,
    seed: u64,
) -> f64 {
    mean_response_probed(kind, compute, partitions, fraction, n, seed, |_| None).0
}

/// [`mean_response_ms`] with the probe bus attached once the pipeline
/// exists (the factory receives the resource-name table), additionally
/// returning the run's [`RunCapture`] for the breakdown/export layer.
/// Probes are observational only, so the measured response time is
/// identical to the unprobed run (pinned by the determinism tests).
pub fn mean_response_probed(
    kind: TransportKind,
    compute: ComputeModel,
    partitions: u64,
    fraction: f64,
    n: u32,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (f64, RunCapture) {
    let img = BlockedImage::paper_image(IMAGE_BYTES / partitions);
    let queries = query_mix(&img, fraction, n);
    let mut sim = Sim::new(seed);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(kind), compute);
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::ClosedLoop(queries));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().expect("targets") = pipe.repo_pids();
    crate::sharding::apply_pipeline_plan(&mut sim, &cluster, driver_pid, 3);
    if let Some(p) = make_probe(&sim.resource_names()) {
        sim.attach_probe(p);
    }
    let end = sim.run();
    let cap = RunCapture::of(&sim, end);
    let d: &QueryDriver = sim.process(driver_pid).expect("driver persists");
    assert_eq!(d.results.len(), n as usize, "closed loop drained");
    (
        d.mean_latency_all_us().expect("results present") / 1_000.0,
        cap,
    )
}

/// `HPSOCK_TRACE` export: replay the half-complete/half-zoom mix at 64
/// partitions without computation (the panel point where the transports
/// diverge hardest) over TCP and SocketVIA with the probe bus recording;
/// see [`breakdown::export_run_traces`] for the files written.
pub fn export_traces(dir: &Path, n: u32) {
    let run = |kind: TransportKind| -> ProbedRun<'static> {
        Box::new(move |seed: u64, mk: &mut ProbeFactory<'_>| {
            mean_response_probed(kind, ComputeModel::None, 64, 0.5, n, seed, |names| {
                mk(names)
            })
            .1
        })
    };
    breakdown::export_run_traces(
        dir,
        "fig9",
        "Figure 9 time breakdown at fraction 0.5, 64 partitions, no computation (us of server-time)",
        vec![
            ("TCP", FIG9_SEED, run(TransportKind::KTcp)),
            ("SocketVIA", FIG9_SEED, run(TransportKind::SocketVia)),
        ],
    );
}

/// Run one panel with the single base seed: rows = fractions, columns =
/// partitionings × transports.
pub fn panel(compute: ComputeModel, n: u32) -> Table {
    panel_seeded(compute, n, &[FIG9_SEED])
}

/// [`panel`], one replicate per seed in `seeds` (see
/// [`crate::replicate`]): replicated batches add per-column
/// `_ci95_lo`/`_ci95_hi` plus a trailing `n_seeds`; `HPSOCK_TAILS=1`
/// appends `_p50`/`_p99`/`_p999` tail columns after each series.
pub fn panel_seeded(compute: ComputeModel, n: u32, seeds: &[u64]) -> Table {
    const COLS: [&str; 6] = [
        "NoPart(SV)",
        "8Part(SV)",
        "64Part(SV)",
        "NoPart(TCP)",
        "8Part(TCP)",
        "64Part(TCP)",
    ];
    let fr = fractions();
    let mut jobs = Vec::new();
    for &f in &fr {
        for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
            for parts in PARTITIONS {
                jobs.push((kind, parts, f));
            }
        }
    }
    let results = parallel_map_seeded(jobs, seeds, move |&(kind, parts, f), seed| {
        mean_response_ms(kind, compute, parts, f, n, seed)
    });
    let replicated = seeds.len() > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["fraction".to_string()];
    for name in COLS {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(
        format!(
            "Figure 9: avg response time (ms) vs fraction of complete-update queries, {}",
            compute.label()
        ),
        headers,
    );
    for (i, &f) in fr.iter().enumerate() {
        let base = i * COLS.len();
        let mut row = vec![format!("{f:.1}")];
        for j in 0..COLS.len() {
            let s = Series::collect(results[base + j].iter().map(|&v| Some(v)));
            replicate::value_cells(&mut row, &s, 1, replicated);
            replicate::tail_cells(&mut row, &s, 1, tails);
        }
        if replicated {
            row.push(seeds.len().to_string());
        }
        t.add_row(row);
    }
    t
}

/// Run both panels with `n` queries per point, with the `HPSOCK_SEEDS`
/// replicate batch derived from [`FIG9_SEED`].
pub fn run(n: u32) -> Vec<Table> {
    let seeds = replicate::seed_batch(FIG9_SEED, replicate::seed_count());
    vec![
        panel_seeded(ComputeModel::None, n, &seeds),
        panel_seeded(ComputeModel::paper_linear(), n, &seeds),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_proportional() {
        let img = BlockedImage::paper_image(IMAGE_BYTES / 64);
        let qs = query_mix(&img, 0.3, 10);
        let completes = qs
            .iter()
            .filter(|q| q.kind == hpsock_vizserver::QueryKind::Complete)
            .count();
        assert_eq!(completes, 3);
        let again = query_mix(&img, 0.3, 10);
        let k: Vec<_> = qs.iter().map(|q| q.kind).collect();
        let k2: Vec<_> = again.iter().map(|q| q.kind).collect();
        assert_eq!(k, k2);
    }

    #[test]
    fn response_grows_faster_for_tcp_with_partitioning() {
        // The paper's observation: with 64 partitions, TCP's response time
        // rises much faster in the complete fraction than SocketVIA's.
        let n = 6;
        let sv0 = mean_response_ms(TransportKind::SocketVia, ComputeModel::None, 64, 0.0, n, 1);
        let sv1 = mean_response_ms(TransportKind::SocketVia, ComputeModel::None, 64, 1.0, n, 1);
        let tcp0 = mean_response_ms(TransportKind::KTcp, ComputeModel::None, 64, 0.0, n, 1);
        let tcp1 = mean_response_ms(TransportKind::KTcp, ComputeModel::None, 64, 1.0, n, 1);
        let sv_slope = sv1 - sv0;
        let tcp_slope = tcp1 - tcp0;
        assert!(
            tcp_slope > 1.5 * sv_slope,
            "TCP slope {tcp_slope:.1}ms vs SocketVIA slope {sv_slope:.1}ms"
        );
    }

    #[test]
    fn unpartitioned_response_is_flat_in_fraction() {
        // With no partitioning every query fetches everything, so the
        // response time barely varies with the mix.
        let n = 5;
        let lo = mean_response_ms(TransportKind::SocketVia, ComputeModel::None, 1, 0.0, n, 2);
        let hi = mean_response_ms(TransportKind::SocketVia, ComputeModel::None, 1, 1.0, n, 2);
        let rel = (hi - lo).abs() / lo;
        assert!(rel < 0.10, "flat curve expected: {lo:.1} vs {hi:.1}");
    }
}
