//! Fault injection (beyond the paper): availability and guarantee
//! retention per transport under link loss, link flap and node-crash
//! faults, exercising the `net::fault` layer end-to-end through
//! DataCutter's recoverable streams.
//!
//! Three tables:
//!
//! 1. **Availability** — fraction of the Figure 6 load-balancing workload
//!    processed at least once, per transport, for each fault point.
//! 2. **Recovery counters** — what the runtime absorbed (stream errors,
//!    retries, recovered streams, failovers) under combined loss + crash.
//! 3. **Guarantee retention** — whether the Figure 7 update-rate
//!    guarantee still holds under each fault point, and at what
//!    partial-update latency.
//!
//! Composes with `HPSOCK_SEEDS` replication and `HPSOCK_TAILS` tail
//! columns like the paper figures; the injected plans are scoped via
//! `fault::with_plan`, so a run never touches the process environment.

use crate::replicate::{self, Series};
use crate::runner::{run_guarantee, GuaranteeRun, FIG_FAULTS_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::{fmt_opt, Table};
use hpsock_net::fault;
use hpsock_net::TransportKind;
use hpsock_vizserver::{faulted_lb_run, ComputeModel, FaultedLbOutcome, LbSetup};

/// Transports compared (the paper's three stacks).
pub const KINDS: [(&str, TransportKind); 3] = [
    ("TCP", TransportKind::KTcp),
    ("SocketVIA", TransportKind::SocketVia),
    ("VIA", TransportKind::Via),
];

/// Bytes distributed through the load balancer per availability run.
pub fn workload_bytes(quick: bool) -> u64 {
    if quick {
        2 * 1024 * 1024
    } else {
        8 * 1024 * 1024
    }
}

/// The injected fault points: `(label, HPSOCK_FAULTS spec)`. The crash
/// point kills worker node 1 mid-run (the workload outlasts the crash
/// time at every transport's block size).
pub fn fault_points(quick: bool) -> Vec<(String, String)> {
    let crash_at = if quick { "15ms" } else { "50ms" };
    let mut pts: Vec<(String, String)> = vec![
        ("none".into(), String::new()),
        (
            "drop 0.1%".into(),
            "drop=0.001,detect=100us,backoff=100us".into(),
        ),
        (
            "drop 1%".into(),
            "drop=0.01,detect=100us,backoff=100us".into(),
        ),
        (
            "flap 2ms/200us".into(),
            "flap=2ms:200us,detect=100us,backoff=100us".into(),
        ),
        (
            format!("crash w1@{crash_at}"),
            format!("crash=1@{crash_at},detect=200us,backoff=100us"),
        ),
    ];
    if !quick {
        pts.insert(
            3,
            (
                "drop 5%".into(),
                "drop=0.05,detect=100us,backoff=100us".into(),
            ),
        );
    }
    pts
}

/// One availability measurement: the load-balancing workload under `spec`.
pub fn availability_run(
    kind: TransportKind,
    spec: &str,
    quick: bool,
    seed: u64,
) -> FaultedLbOutcome {
    fault::with_spec(spec, || {
        let setup = LbSetup::paper(kind);
        let blocks = (workload_bytes(quick) / setup.block_bytes) as u32;
        faulted_lb_run(&setup, blocks, seed)
    })
}

fn availability_table(quick: bool, seeds: &[u64]) -> Table {
    let points = fault_points(quick);
    let mut jobs = Vec::new();
    for (_, spec) in &points {
        for (_, kind) in KINDS {
            jobs.push((spec.clone(), kind));
        }
    }
    let results = parallel_map_seeded(jobs, seeds, |(spec, kind), seed| {
        availability_run(*kind, spec, quick, seed).availability()
    });
    let replicated = seeds.len() > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["fault".to_string()];
    for (name, _) in KINDS {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(
        "Fault injection: availability (fraction of blocks processed) per transport",
        headers,
    );
    for (i, (label, _)) in points.iter().enumerate() {
        let base = i * KINDS.len();
        let mut row = vec![label.clone()];
        for j in 0..KINDS.len() {
            let s = Series::collect(results[base + j].iter().map(|&v| Some(v)));
            replicate::value_cells(&mut row, &s, 4, replicated);
            replicate::tail_cells(&mut row, &s, 4, tails);
        }
        if replicated {
            row.push(seeds.len().to_string());
        }
        t.add_row(row);
    }
    t
}

fn recovery_table(quick: bool, seed: u64) -> Table {
    let crash_at = if quick { "15ms" } else { "50ms" };
    let spec = format!("drop=0.01,crash=1@{crash_at},detect=100us,backoff=100us");
    let mut t = Table::from_headers(
        "Fault injection: recovery counters under drop 1% + worker crash",
        vec![
            "transport".into(),
            "errors".into(),
            "retries".into(),
            "recovered".into(),
            "failovers".into(),
            "buffers_failed".into(),
            "stale".into(),
            "availability".into(),
            "makespan_ms".into(),
        ],
    );
    for (name, kind) in KINDS {
        let o = availability_run(kind, &spec, quick, seed);
        t.add_row(vec![
            name.to_string(),
            o.errors.to_string(),
            o.retries.to_string(),
            o.recovered.to_string(),
            o.failovers.to_string(),
            o.failed.to_string(),
            o.stale.to_string(),
            format!("{:.4}", o.availability()),
            format!("{:.2}", o.makespan_us / 1000.0),
        ]);
    }
    t
}

fn guarantee_table(quick: bool, seed: u64) -> Table {
    let points = fault_points(quick);
    let n_complete = if quick { 3 } else { 5 };
    let mut headers = vec!["fault".to_string()];
    for (name, _) in KINDS {
        headers.push(format!("{name}_sustained"));
        headers.push(format!("{name}_partial_us"));
    }
    let mut t = Table::from_headers(
        "Fault injection: update-rate guarantee retention (2 updates/s, 64KB blocks)",
        headers,
    );
    let jobs: Vec<(String, String)> = points;
    let results = parallel_map_seeded(jobs.clone(), &[seed], |(_, spec), seed| {
        KINDS.map(|(_, kind)| {
            fault::with_spec(spec, || {
                run_guarantee(&GuaranteeRun {
                    kind,
                    block_bytes: 65_536,
                    compute: ComputeModel::None,
                    target_ups: 2.0,
                    n_complete,
                    n_partial: 2,
                    seed,
                })
            })
        })
    });
    for ((label, _), reps) in jobs.iter().zip(results) {
        let mut row = vec![label.clone()];
        for r in &reps[0] {
            row.push(if r.sustained { "1" } else { "0" }.to_string());
            row.push(fmt_opt(r.partial_us, 0));
        }
        t.add_row(row);
    }
    t
}

/// Run the experiment with the `HPSOCK_SEEDS` replicate batch derived
/// from [`FIG_FAULTS_SEED`].
pub fn run(quick: bool) -> Vec<Table> {
    run_seeded(
        quick,
        &replicate::seed_batch(FIG_FAULTS_SEED, replicate::seed_count()),
    )
}

/// [`run`] with an explicit seed batch (see [`crate::replicate`]).
pub fn run_seeded(quick: bool, seeds: &[u64]) -> Vec<Table> {
    vec![
        availability_table(quick, seeds),
        recovery_table(quick, seeds[0]),
        guarantee_table(quick, seeds[0]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::FaultPlan;

    #[test]
    fn every_fault_point_spec_parses() {
        for quick in [true, false] {
            for (label, spec) in fault_points(quick) {
                FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| panic!("point {label:?} has a bad spec: {e}"));
            }
        }
    }

    #[test]
    fn availability_is_full_without_faults() {
        let o = availability_run(TransportKind::SocketVia, "", true, FIG_FAULTS_SEED);
        assert_eq!(o.availability(), 1.0);
        assert_eq!(o.errors, 0);
    }

    #[test]
    fn crash_point_still_covers_the_workload_via_failover() {
        let (_, spec) = fault_points(true).pop().expect("crash point last");
        let o = availability_run(TransportKind::SocketVia, &spec, true, FIG_FAULTS_SEED);
        assert_eq!(o.failovers, 1, "worker crash failed over");
        assert_eq!(o.availability(), 1.0, "survivors cover every block");
    }
}
