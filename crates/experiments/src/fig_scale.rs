//! Beyond the paper — `fig_scale`: validation and payoff of the
//! flow-level fluid network model (`HPSOCK_NETMODEL=flow`).
//!
//! Two parts:
//!
//! 1. **Agreement** ([`agreement_table`]): the headline series of
//!    Figure 4 (micro-benchmark latency and bandwidth), Figure 7 (the
//!    3 updates/sec partial-latency point) and Figure 9 (the mixed-stream
//!    midpoint) are re-run under the packet engine and the fluid engine
//!    and compared side by side. The fluid model is calibrated so the
//!    *unloaded* micro-benchmarks agree within [`MICRO_TOL`] (2%); the
//!    application figures involve pipelined queueing the fluid model
//!    idealizes (no per-frame credit stalls), so they carry the looser
//!    [`APP_TOL`] (15%). [`assert_agreement`] enforces both — the CI
//!    flow-smoke job and the `fig_scale` binary gate on it.
//!
//! 2. **Scale** ([`scale_table`]): a cluster-size sweep over hierarchical
//!    rack topologies (8 → 512 nodes, thousands of open-loop clients
//!    streaming across oversubscribed core uplinks) that only the fluid
//!    model can afford: the packet engine's event count grows with
//!    segments × size while the fluid engine's grows with flows. Packet
//!    columns are reported for the sizes where the packet run is cheap
//!    (≤ 32 nodes) and dashed out beyond.

use crate::fig7;
use crate::fig9;
use crate::table::Table;
use hpsock_net::{
    configured_oversub, with_netmodel, Cluster, ConnId, Delivery, NetModel, NodeId, TransportKind,
};
use hpsock_sim::{Ctx, Dur, Message, Process, Sim};
use hpsock_vizserver::ComputeModel;
use socketvia::{bandwidth_series, latency_series, Provider};

/// Relative tolerance for the unloaded micro-benchmark series (Figure 4).
pub const MICRO_TOL: f64 = 0.02;
/// Relative tolerance for the application figures (Figures 7 and 9),
/// where the fluid model idealizes per-frame flow-control stalls.
pub const APP_TOL: f64 = 0.15;

/// Cluster sizes of the scale sweep (node counts).
pub const SCALE_NODES: [usize; 4] = [8, 32, 128, 512];
/// Largest node count for which the packet-model comparison columns are
/// still cheap enough to include.
pub const PACKET_CEILING: usize = 32;

/// One agreement row: a figure's series value under both models.
#[derive(Debug, Clone)]
pub struct Agreement {
    /// Which figure/series/point this row pins.
    pub what: String,
    /// Value under the packet engine.
    pub packet: f64,
    /// Value under the fluid engine.
    pub flow: f64,
    /// Documented relative tolerance for this row.
    pub tol: f64,
}

impl Agreement {
    /// Symmetric relative error between the two models.
    pub fn rel_err(&self) -> f64 {
        (self.packet - self.flow).abs() / self.packet.abs().max(self.flow.abs()).max(1e-12)
    }
}

/// Run the headline series of fig4/fig7/fig9 under both network models
/// and collect the per-point comparisons. `quick` shrinks the per-point
/// iteration counts (CI smoke scale).
pub fn agreement_rows(quick: bool) -> Vec<Agreement> {
    let both = |f: &dyn Fn() -> Vec<(String, f64, f64)>| -> Vec<Agreement> {
        let packet = with_netmodel(NetModel::Packet, f);
        let flow = with_netmodel(NetModel::Flow, f);
        packet
            .into_iter()
            .zip(flow)
            .map(|((what, p, tol), (_, fl, _))| Agreement {
                what,
                packet: p,
                flow: fl,
                tol,
            })
            .collect()
    };

    let mut rows = Vec::new();

    // Figure 4(a): ping-pong one-way latency at 4 B and 4 KB.
    let lat_iters = if quick { 3 } else { 8 };
    rows.extend(both(&|| {
        let mut out = Vec::new();
        for &kind in TransportKind::PAPER_SET.iter() {
            let pts = latency_series(&Provider::new(kind), &[4, 4096], lat_iters);
            for p in pts {
                out.push((
                    format!("fig4a latency_us {} @{}B", kind.label(), p.msg_size),
                    p.oneway_us,
                    MICRO_TOL,
                ));
            }
        }
        out
    }));

    // Figure 4(b): streamed bandwidth at 4 KB and 64 KB.
    let total = if quick { 1u64 << 19 } else { 1u64 << 21 };
    rows.extend(both(&|| {
        let mut out = Vec::new();
        for &kind in TransportKind::PAPER_SET.iter() {
            let pts = bandwidth_series(&Provider::new(kind), &[4096, 65_536], total);
            for p in pts {
                out.push((
                    format!("fig4b mbps {} @{}B", kind.label(), p.msg_size),
                    p.mbps,
                    MICRO_TOL,
                ));
            }
        }
        out
    }));

    // Figure 7: the 3 updates/sec no-computation point, all three series.
    let scale = if quick {
        fig7::Scale {
            n_complete: 3,
            n_partial: 2,
        }
    } else {
        fig7::Scale::default()
    };
    rows.extend(both(&|| {
        let p = fig7::sweep(ComputeModel::None, &[3.0], scale).remove(0);
        vec![
            (
                "fig7 partial_us TCP @3ups".to_string(),
                p.tcp_us.expect("TCP sustains 3 ups"),
                APP_TOL,
            ),
            (
                "fig7 partial_us SocketVIA @3ups".to_string(),
                p.sv_us,
                APP_TOL,
            ),
            (
                "fig7 partial_us SocketVIA(DR) @3ups".to_string(),
                p.sv_dr_us,
                APP_TOL,
            ),
        ]
    }));

    // Figure 9: the half-complete mix at 64 partitions, no computation.
    let n = if quick { 4 } else { 8 };
    rows.extend(both(&|| {
        [TransportKind::SocketVia, TransportKind::KTcp]
            .iter()
            .map(|&kind| {
                (
                    format!("fig9 response_ms {} @0.5/64part", kind.label()),
                    fig9::mean_response_ms(
                        kind,
                        ComputeModel::None,
                        64,
                        0.5,
                        n,
                        crate::runner::FIG9_SEED,
                    ),
                    APP_TOL,
                )
            })
            .collect()
    }));

    rows
}

/// Render agreement rows as a table.
pub fn agreement_table(rows: &[Agreement]) -> Table {
    let mut t = Table::new(
        "fig_scale: flow-vs-packet model agreement on fig4/fig7/fig9 headline series",
        &["series", "packet", "flow", "rel_err", "tolerance"],
    );
    for r in rows {
        t.add_row(vec![
            r.what.clone(),
            format!("{:.2}", r.packet),
            format!("{:.2}", r.flow),
            format!("{:.4}", r.rel_err()),
            format!("{:.2}", r.tol),
        ]);
    }
    t
}

/// Panic unless every agreement row is within its documented tolerance —
/// the assertion the `fig_scale` binary and CI flow-smoke job gate on.
pub fn assert_agreement(rows: &[Agreement]) {
    for r in rows {
        assert!(
            r.rel_err() <= r.tol,
            "flow model disagrees with packet model beyond tolerance on {}: \
             packet {:.3} vs flow {:.3} (rel_err {:.4} > {:.2})",
            r.what,
            r.packet,
            r.flow,
            r.rel_err(),
            r.tol
        );
    }
}

/// Message size of the scale-sweep clients (16 KB application blocks).
const CLIENT_BYTES: u64 = 16_384;
/// Open-loop send interval per client.
const CLIENT_INTERVAL: Dur = Dur::nanos(1_000_000);

/// An open-loop client: sends a [`CLIENT_BYTES`] message every
/// [`CLIENT_INTERVAL`] regardless of completions, `count` times. Start
/// times are staggered by connection id so the cluster doesn't tick in
/// lockstep.
struct OpenLoopClient {
    net: hpsock_net::Network,
    conn: ConnId,
    remaining: u32,
}
impl Process for OpenLoopClient {
    fn name(&self) -> String {
        format!("scale-client-{}", self.conn.0)
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let stagger = CLIENT_INTERVAL.as_nanos() * (self.conn.0 as u64 % 64) / 64;
        ctx.send_self_in(Dur::nanos(stagger), Message::new(()));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.downcast_ref::<Delivery>().is_some() {
            return; // open loop: deliveries don't pace the sender
        }
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.net
            .send(ctx, self.conn, CLIENT_BYTES, Message::new(()));
        if self.remaining > 0 {
            ctx.send_self_in(CLIENT_INTERVAL, Message::new(()));
        }
    }
}

/// Consumes every delivery immediately.
struct Sink {
    net: hpsock_net::Network,
}
impl Process for Sink {
    fn name(&self) -> String {
        "scale-sink".to_string()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let d = msg.downcast::<Delivery>().expect("sink expects deliveries");
        self.net.consumed(ctx, d.conn, d.msg_id);
    }
}

/// One scale-sweep measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Total nodes in the cluster.
    pub nodes: usize,
    /// Racks (nodes/per_rack).
    pub racks: usize,
    /// Open-loop clients (= connections = flows × msgs).
    pub clients: usize,
    /// Messages sent in total.
    pub msgs: u64,
    /// Virtual end time, ms.
    pub end_ms: f64,
    /// Kernel events dispatched.
    pub events: u64,
    /// Wall-clock for the run, ms.
    pub wall_ms: f64,
}

/// Run one cluster size under the given model: `nodes/2` sender nodes
/// each hosting `clients_per_node` open-loop clients streaming TCP
/// blocks to the receiver half across the rack fabric
/// ([`Cluster::build_racks_hier`] with the `HPSOCK_OVERSUB` core
/// oversubscription).
pub fn run_scale_point(
    model: NetModel,
    nodes: usize,
    clients_per_node: usize,
    msgs: u32,
) -> ScalePoint {
    let per_rack = nodes.min(16);
    let racks = nodes / per_rack;
    let senders = nodes / 2;
    with_netmodel(model, || {
        let start = std::time::Instant::now();
        let mut sim = Sim::new(0x5CA1E);
        let cluster = Cluster::build_racks_hier(&mut sim, racks, per_rack, configured_oversub());
        let net = cluster.network();
        let mut conn = 0usize;
        for node in 0..senders {
            for _ in 0..clients_per_node {
                let tx = sim.add_process(Box::new(OpenLoopClient {
                    net: net.clone(),
                    conn: ConnId(conn),
                    remaining: msgs,
                }));
                let rx = sim.add_process(Box::new(Sink { net: net.clone() }));
                net.connect(
                    cluster.endpoint(NodeId(node), tx),
                    cluster.endpoint(NodeId(senders + node), rx),
                    TransportKind::KTcp,
                );
                conn += 1;
            }
        }
        let end = sim.run();
        ScalePoint {
            nodes,
            racks,
            clients: conn,
            msgs: conn as u64 * msgs as u64,
            end_ms: end.as_nanos() as f64 / 1e6,
            events: sim.events_dispatched(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    })
}

/// The cluster-size sweep: fluid model at every size in [`SCALE_NODES`],
/// packet comparison columns up to [`PACKET_CEILING`] nodes.
pub fn scale_table(quick: bool) -> Table {
    let (clients_per_node, msgs) = if quick { (4, 4) } else { (8, 20) };
    let mut t = Table::new(
        "fig_scale: cluster-size sweep, open-loop TCP clients over oversubscribed racks",
        &[
            "nodes",
            "racks",
            "clients",
            "msgs",
            "flow_events",
            "flow_wall_ms",
            "flow_end_ms",
            "packet_events",
            "packet_wall_ms",
        ],
    );
    for &nodes in &SCALE_NODES {
        let f = run_scale_point(NetModel::Flow, nodes, clients_per_node, msgs);
        let p = (nodes <= PACKET_CEILING)
            .then(|| run_scale_point(NetModel::Packet, nodes, clients_per_node, msgs));
        let (pe, pw) = match &p {
            Some(p) => (p.events.to_string(), format!("{:.1}", p.wall_ms)),
            None => ("-".into(), "-".into()),
        };
        t.add_row(vec![
            f.nodes.to_string(),
            f.racks.to_string(),
            f.clients.to_string(),
            f.msgs.to_string(),
            f.events.to_string(),
            format!("{:.1}", f.wall_ms),
            format!("{:.1}", f.end_ms),
            pe,
            pw,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_holds_at_quick_scale() {
        let rows = agreement_rows(true);
        assert!(rows.len() >= 15, "fig4a + fig4b + fig7 + fig9 rows");
        assert_agreement(&rows);
    }

    #[test]
    fn scale_point_runs_512_nodes_under_the_fluid_model() {
        let p = run_scale_point(NetModel::Flow, 512, 2, 2);
        assert_eq!(p.racks, 32);
        assert_eq!(p.clients, 512);
        assert_eq!(p.msgs, 1024);
        assert!(p.events > 0 && p.end_ms > 0.0);
    }

    #[test]
    fn fluid_events_scale_with_flows_not_segments() {
        // Same workload, both models, small cluster: the fluid engine
        // spends far fewer events per message.
        let f = run_scale_point(NetModel::Flow, 8, 2, 3);
        let p = run_scale_point(NetModel::Packet, 8, 2, 3);
        assert_eq!(f.msgs, p.msgs);
        assert!(
            p.events > 3 * f.events,
            "packet {} vs flow {} events",
            p.events,
            f.events
        );
    }
}
