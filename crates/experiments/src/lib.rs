//! # hpsock-experiments — per-figure experiment harnesses
//!
//! One module per paper figure. Each module exposes the sweep as a library
//! function returning [`table::Table`]s, and a binary (`fig4` … `fig11`,
//! plus `all`) prints the tables and writes CSVs under `results/`.
//!
//! | module | regenerates |
//! |--------|-------------|
//! | [`fig4`]  | Figure 4(a) latency, 4(b) bandwidth, Figure 2 crossover |
//! | [`fig7`]  | Figure 7(a)/(b): partial-update latency under an updates/sec guarantee |
//! | [`fig8`]  | Figure 8(a)/(b): updates/sec under a latency guarantee |
//! | [`fig9`]  | Figure 9(a)/(b): response time of mixed query streams |
//! | [`fig10`] | Figure 10: round-robin load-balancer reaction time |
//! | [`fig11`] | Figure 11: demand-driven execution under random slowdowns |
//! | [`future`] | beyond the paper: the conclusion's RDMA future work, quantified |
//! | [`fig_faults`] | beyond the paper: availability and guarantee retention under injected faults |
//! | [`fig_scale`] | beyond the paper: fluid-model agreement with the packet engine + cluster-size sweep |

pub mod bigtopo;
pub mod breakdown;
pub mod extra;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_faults;
pub mod fig_scale;
pub mod future;
pub mod replicate;
pub mod runner;
pub mod sharding;
pub mod sweep;
pub mod table;

use std::path::Path;
use table::Table;

/// Print each table and write it as CSV under `dir` (slug from the title).
pub fn emit(tables: &[Table], dir: impl AsRef<Path>) {
    for t in tables {
        println!("{t}");
        let slug: String = t
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = dir
            .as_ref()
            .join(format!("{}.csv", &slug[..slug.len().min(60)]));
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  -> {}\n", path.display());
        }
    }
}

/// Parse an `HPSOCK_QUICK` value: strictly `1` (on) or `0` (off),
/// anything else is an error naming the variable — the old behaviour
/// silently treated garbage like `HPSOCK_QUICK=yes` as "off", which
/// masked misconfiguration (the `HPSOCK_THREADS`/`HPSOCK_TAILS`
/// convention).
pub fn parse_quick_flag(raw: &str) -> Result<bool, String> {
    match raw.trim() {
        "1" => Ok(true),
        "0" => Ok(false),
        _ => Err(format!(
            "HPSOCK_QUICK must be 0 or 1, got {raw:?} (1 shrinks the sweeps for smoke runs)"
        )),
    }
}

/// True when `--quick` was passed or `HPSOCK_QUICK=1` is set (reduced
/// sweep scale for smoke runs; see README "Environment variables").
/// Invalid `HPSOCK_QUICK` values abort with a message naming the
/// variable.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || match std::env::var("HPSOCK_QUICK") {
            Ok(v) => parse_quick_flag(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => false,
        }
}

/// Results directory: `$HPSOCK_RESULTS` or `results/`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("HPSOCK_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| "results".into())
}

/// Trace directory: `Some($HPSOCK_TRACE)` when set, enabling probe-bus
/// instrumentation — Chrome trace JSON, collapsed-stack `.folded`
/// flamegraphs and `*_breakdown.csv` time attribution written under the
/// given directory. A missing directory is created (recursively); an
/// unusable path aborts up-front with a message naming the variable and
/// the path, instead of surfacing a raw io::Error mid-export.
pub fn trace_dir() -> Option<std::path::PathBuf> {
    let dir: std::path::PathBuf = std::env::var_os("HPSOCK_TRACE")?.into();
    if let Err(e) = ensure_trace_dir(&dir) {
        panic!("{e}");
    }
    Some(dir)
}

/// Create `dir` (and any missing parents) for trace output; errors are
/// rendered in terms of the `HPSOCK_TRACE` setting that chose the path.
pub fn ensure_trace_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| {
        format!(
            "HPSOCK_TRACE={}: cannot create the trace directory: {e}",
            dir.display()
        )
    })
}

/// Announce and run one figure's probe-bus export when `HPSOCK_TRACE` is
/// set — the single dispatch every figure binary (and `all`) goes
/// through, so the announce line and the directory handling can't drift
/// apart per binary.
pub fn export_under_trace(figure: &str, export: impl FnOnce(&Path)) {
    if let Some(dir) = trace_dir() {
        eprintln!("probe-bus export (HPSOCK_TRACE) for {figure} ...");
        export(&dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_quick_flag_is_strict() {
        assert_eq!(parse_quick_flag("1"), Ok(true));
        assert_eq!(parse_quick_flag("0"), Ok(false));
        assert_eq!(parse_quick_flag(" 1 "), Ok(true), "whitespace tolerated");
        for bad in ["yes", "true", "2", "", "on", "01"] {
            let err = parse_quick_flag(bad).expect_err(bad);
            assert!(err.contains("HPSOCK_QUICK"), "names the variable: {err}");
            assert!(err.contains(&format!("{bad:?}")), "echoes the value: {err}");
        }
    }

    #[test]
    fn ensure_trace_dir_creates_missing_directories() {
        let base = std::env::temp_dir().join(format!("hpsock_trace_test_{}", std::process::id()));
        let nested = base.join("deep/nested/trace_dir");
        assert!(!nested.exists());
        ensure_trace_dir(&nested).expect("creates the full path");
        assert!(nested.is_dir());
        ensure_trace_dir(&nested).expect("idempotent on an existing dir");
        std::fs::remove_dir_all(&base).expect("cleanup");
    }

    #[test]
    fn ensure_trace_dir_error_names_the_variable_and_path() {
        let base = std::env::temp_dir().join(format!("hpsock_trace_file_{}", std::process::id()));
        std::fs::write(&base, b"not a directory").expect("fixture file");
        let bad = base.join("child");
        let err = ensure_trace_dir(&bad).expect_err("a file can't be a parent dir");
        assert!(err.contains("HPSOCK_TRACE"), "names the variable: {err}");
        assert!(
            err.contains(&bad.display().to_string()),
            "names the path: {err}"
        );
        std::fs::remove_file(&base).expect("cleanup");
    }
}
