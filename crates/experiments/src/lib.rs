//! # hpsock-experiments — per-figure experiment harnesses
//!
//! One module per paper figure. Each module exposes the sweep as a library
//! function returning [`table::Table`]s, and a binary (`fig4` … `fig11`,
//! plus `all`) prints the tables and writes CSVs under `results/`.
//!
//! | module | regenerates |
//! |--------|-------------|
//! | [`fig4`]  | Figure 4(a) latency, 4(b) bandwidth, Figure 2 crossover |
//! | [`fig7`]  | Figure 7(a)/(b): partial-update latency under an updates/sec guarantee |
//! | [`fig8`]  | Figure 8(a)/(b): updates/sec under a latency guarantee |
//! | [`fig9`]  | Figure 9(a)/(b): response time of mixed query streams |
//! | [`fig10`] | Figure 10: round-robin load-balancer reaction time |
//! | [`fig11`] | Figure 11: demand-driven execution under random slowdowns |
//! | [`future`] | beyond the paper: the conclusion's RDMA future work, quantified |

pub mod breakdown;
pub mod extra;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod future;
pub mod replicate;
pub mod runner;
pub mod sweep;
pub mod table;

use std::path::Path;
use table::Table;

/// Print each table and write it as CSV under `dir` (slug from the title).
pub fn emit(tables: &[Table], dir: impl AsRef<Path>) {
    for t in tables {
        println!("{t}");
        let slug: String = t
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = dir
            .as_ref()
            .join(format!("{}.csv", &slug[..slug.len().min(60)]));
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  -> {}\n", path.display());
        }
    }
}

/// True when `--quick` was passed or `HPSOCK_QUICK=1` is set (reduced
/// sweep scale for smoke runs; see README "Environment variables").
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var_os("HPSOCK_QUICK").is_some_and(|v| v == "1")
}

/// Results directory: `$HPSOCK_RESULTS` or `results/`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("HPSOCK_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| "results".into())
}

/// Trace directory: `Some($HPSOCK_TRACE)` when set, enabling probe-bus
/// instrumentation — Chrome trace JSON plus `*_breakdown.csv` time
/// attribution written under the given directory.
pub fn trace_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("HPSOCK_TRACE").map(Into::into)
}
