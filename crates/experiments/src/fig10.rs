//! Figure 10 — load-balancer reaction time to heterogeneity under
//! round-robin scheduling, vs the factor of heterogeneity, for TCP (16 KB
//! blocks) and SocketVIA (2 KB blocks) at their perfect-pipelining points.

use crate::breakdown::{self, ProbeFactory, ProbedRun};
use crate::replicate::{self, Series};
use crate::runner::{RunCapture, FIG10_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::{fmt_opt, Table};
use hpsock_net::TransportKind;
use hpsock_sim::{Dur, Probe, SimTime};
use hpsock_vizserver::{rr_reaction_time_probed, LbSetup};
use std::path::Path;

/// Heterogeneity factors on the x-axis.
pub fn factors() -> Vec<f64> {
    vec![2.0, 4.0, 6.0, 8.0, 10.0]
}

/// Reaction time (µs) for one transport at one factor.
pub fn reaction_us(kind: TransportKind, factor: f64, seed: u64) -> Option<f64> {
    reaction_probed(kind, factor, seed, |_| None).0
}

/// [`reaction_us`] with the probe bus attached once the LB cluster
/// exists (the factory receives the resource-name table), additionally
/// returning the run's [`RunCapture`] for the breakdown/export layer.
/// Probes are observational only, so the measured reaction time is
/// identical to the unprobed run (pinned by the determinism tests).
pub fn reaction_probed(
    kind: TransportKind,
    factor: f64,
    seed: u64,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (Option<f64>, RunCapture) {
    let setup = LbSetup::paper(kind);
    // One node turns slow a third of the way through a workload long
    // enough to observe the balancer's mistake.
    let emit_ns = (setup.ns_per_byte * setup.block_bytes as f64) as u64;
    let blocks = 3 * 100u32; // ~100 emissions before and after the switch
    let slow_at = SimTime::ZERO + Dur::nanos(emit_ns * 100);
    let (reaction, cap) =
        rr_reaction_time_probed(&setup, factor, slow_at, blocks, seed, make_probe);
    (reaction.map(|d| d.as_micros_f64()), cap)
}

/// `HPSOCK_TRACE` export: replay the factor-4 heterogeneous cluster
/// (mid-sweep, where both transports still react) over TCP and SocketVIA
/// with the probe bus recording; see [`breakdown::export_run_traces`]
/// for the files written.
pub fn export_traces(dir: &Path) {
    let run = |kind: TransportKind| -> ProbedRun<'static> {
        Box::new(move |seed: u64, mk: &mut ProbeFactory<'_>| {
            reaction_probed(kind, 4.0, seed, |names| mk(names)).1
        })
    };
    breakdown::export_run_traces(
        dir,
        "fig10",
        "Figure 10 time breakdown at heterogeneity factor 4 (us of server-time)",
        vec![
            ("TCP", FIG10_SEED, run(TransportKind::KTcp)),
            ("SocketVIA", FIG10_SEED, run(TransportKind::SocketVia)),
        ],
    );
}

/// One factor's per-seed measurements. `None` entries are runs where the
/// balancer never reacted (the workload drained before, or without, a
/// post-slowdown block reaching the slow worker).
#[derive(Debug, Clone)]
pub struct Row {
    /// Heterogeneity factor.
    pub factor: f64,
    /// SocketVIA reaction time per seed, µs.
    pub sv: Vec<Option<f64>>,
    /// TCP reaction time per seed, µs.
    pub tcp: Vec<Option<f64>>,
}

/// Run the sweep, one replicate per seed in `seeds`.
pub fn sweep_seeded(seeds: &[u64]) -> Vec<Row> {
    let reps = parallel_map_seeded(factors(), seeds, |&f, seed| {
        (
            reaction_us(TransportKind::SocketVia, f, seed),
            reaction_us(TransportKind::KTcp, f, seed),
        )
    });
    factors()
        .into_iter()
        .zip(reps)
        .map(|(factor, per_seed)| Row {
            factor,
            sv: per_seed.iter().map(|&(sv, _)| sv).collect(),
            tcp: per_seed.iter().map(|&(_, tcp)| tcp).collect(),
        })
        .collect()
}

/// Render the sweep. A no-reaction measurement is an **explicit `-`
/// (NA) cell** — the row is never skipped and `NaN` never printed
/// (pinned by the `no_reaction_*` tests); the ratio column goes NA
/// whenever either side has no mean. Replicated batches add
/// `_ci95_lo`/`_ci95_hi` columns and a trailing `n_seeds`;
/// `HPSOCK_TAILS=1` appends `_p50`/`_p99`/`_p999` after each series.
pub fn to_table(rows: &[Row]) -> Table {
    let n_seeds = rows.first().map_or(1, |r| r.sv.len());
    let replicated = n_seeds > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["factor".to_string()];
    for name in ["SocketVIA", "TCP"] {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    headers.push("TCP/SocketVIA".into());
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(
        "Figure 10: load-balancer reaction time (us) vs factor of heterogeneity (round-robin)",
        headers,
    );
    for r in rows {
        let sv = Series::collect(r.sv.iter().copied());
        let tcp = Series::collect(r.tcp.iter().copied());
        let ratio = match (sv.mean(), tcp.mean()) {
            (Some(s), Some(t)) if s > 0.0 => Some(t / s),
            _ => None,
        };
        let mut row = vec![format!("{:.0}", r.factor)];
        replicate::value_cells(&mut row, &sv, 1, replicated);
        replicate::tail_cells(&mut row, &sv, 1, tails);
        replicate::value_cells(&mut row, &tcp, 1, replicated);
        replicate::tail_cells(&mut row, &tcp, 1, tails);
        row.push(fmt_opt(ratio, 1));
        if replicated {
            row.push(n_seeds.to_string());
        }
        t.add_row(row);
    }
    t
}

/// Run the sweep with the `HPSOCK_SEEDS` replicate batch derived from
/// [`FIG10_SEED`].
pub fn run() -> Vec<Table> {
    let seeds = replicate::seed_batch(FIG10_SEED, replicate::seed_count());
    vec![to_table(&sweep_seeded(&seeds))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_vizserver::rr_reaction_time;

    #[test]
    fn no_reaction_run_yields_none_not_a_panic() {
        // The workload drains long before the slowdown fires, so the
        // balancer never sends a post-slowdown block: Option stays None.
        let setup = LbSetup::paper(TransportKind::SocketVia);
        let far_future = SimTime::ZERO + Dur::from_secs_f64(3600.0);
        let r = rr_reaction_time(&setup, 4.0, far_future, 20, 1);
        assert_eq!(r, None, "balancer had nothing to react to");
    }

    #[test]
    fn no_reaction_emits_explicit_na_cell_never_nan() {
        // Single-seed: a None measurement must become a "-" cell in an
        // intact row, not a skipped row or a NaN.
        let rows = vec![
            Row {
                factor: 4.0,
                sv: vec![None],
                tcp: vec![Some(120.0)],
            },
            Row {
                factor: 8.0,
                sv: vec![Some(10.0)],
                tcp: vec![Some(90.0)],
            },
        ];
        let t = to_table(&rows);
        assert_eq!(t.rows.len(), 2, "no-reaction row is not skipped");
        assert_eq!(t.rows[0][1], "-", "SocketVIA NA cell is explicit");
        assert_eq!(t.rows[0][3], "-", "ratio goes NA with it");
        assert_eq!(t.rows[1][3], "9.0");
        assert!(!t.to_csv().contains("NaN"), "no NaN leaks: {}", t.to_csv());

        // Replicated: a batch where every seed failed to react stays NA,
        // and a partial batch aggregates only the reacting seeds.
        let t = to_table(&[Row {
            factor: 4.0,
            sv: vec![None, None, None],
            tcp: vec![Some(100.0), None, Some(140.0)],
        }]);
        assert_eq!(t.rows[0][1..4], ["-", "-", "-"], "all-NA batch stays NA");
        assert_eq!(t.rows[0][4], "120.0", "TCP mean over reacting seeds");
        assert!(!t.to_csv().contains("NaN"), "no NaN leaks: {}", t.to_csv());
    }

    #[test]
    fn tcp_reaction_is_much_slower_and_grows_with_factor() {
        let sv4 = reaction_us(TransportKind::SocketVia, 4.0, 1).unwrap();
        let tcp4 = reaction_us(TransportKind::KTcp, 4.0, 1).unwrap();
        assert!(
            tcp4 / sv4 > 4.0,
            "block-size ratio shows: TCP {tcp4:.0}us vs SocketVIA {sv4:.0}us"
        );
        let tcp8 = reaction_us(TransportKind::KTcp, 8.0, 1).unwrap();
        assert!(tcp8 > tcp4, "reaction grows with factor: {tcp4} -> {tcp8}");
    }
}
