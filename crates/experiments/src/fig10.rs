//! Figure 10 — load-balancer reaction time to heterogeneity under
//! round-robin scheduling, vs the factor of heterogeneity, for TCP (16 KB
//! blocks) and SocketVIA (2 KB blocks) at their perfect-pipelining points.

use crate::sweep::parallel_map;
use crate::table::{fmt_opt, Table};
use hpsock_net::TransportKind;
use hpsock_sim::{Dur, SimTime};
use hpsock_vizserver::{rr_reaction_time, LbSetup};

/// Heterogeneity factors on the x-axis.
pub fn factors() -> Vec<f64> {
    vec![2.0, 4.0, 6.0, 8.0, 10.0]
}

/// Reaction time (µs) for one transport at one factor.
pub fn reaction_us(kind: TransportKind, factor: f64, seed: u64) -> Option<f64> {
    let setup = LbSetup::paper(kind);
    // One node turns slow a third of the way through a workload long
    // enough to observe the balancer's mistake.
    let emit_ns = (setup.ns_per_byte * setup.block_bytes as f64) as u64;
    let blocks = 3 * 100u32; // ~100 emissions before and after the switch
    let slow_at = SimTime::ZERO + Dur::nanos(emit_ns * 100);
    rr_reaction_time(&setup, factor, slow_at, blocks, seed).map(|d| d.as_micros_f64())
}

/// Run the sweep.
pub fn run() -> Vec<Table> {
    let jobs: Vec<f64> = factors();
    let rows = parallel_map(jobs, |f| {
        (
            f,
            reaction_us(TransportKind::SocketVia, f, 0x10),
            reaction_us(TransportKind::KTcp, f, 0x10),
        )
    });
    let mut t = Table::new(
        "Figure 10: load-balancer reaction time (us) vs factor of heterogeneity (round-robin)",
        &["factor", "SocketVIA", "TCP", "TCP/SocketVIA"],
    );
    for (f, sv, tcp) in rows {
        let ratio = match (sv, tcp) {
            (Some(s), Some(t)) if s > 0.0 => Some(t / s),
            _ => None,
        };
        t.add_row(vec![
            format!("{f:.0}"),
            fmt_opt(sv, 1),
            fmt_opt(tcp, 1),
            fmt_opt(ratio, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_reaction_is_much_slower_and_grows_with_factor() {
        let sv4 = reaction_us(TransportKind::SocketVia, 4.0, 1).unwrap();
        let tcp4 = reaction_us(TransportKind::KTcp, 4.0, 1).unwrap();
        assert!(
            tcp4 / sv4 > 4.0,
            "block-size ratio shows: TCP {tcp4:.0}us vs SocketVIA {sv4:.0}us"
        );
        let tcp8 = reaction_us(TransportKind::KTcp, 8.0, 1).unwrap();
        assert!(tcp8 > tcp4, "reaction grows with factor: {tcp4} -> {tcp8}");
    }
}
