//! Shared experiment runner for the guarantee experiments (Figures 7/8):
//! a Figure 5 pipeline under an open-loop stream of complete updates with
//! interleaved partial-update probes.

use hpsock_net::{Cluster, TransportKind};
use hpsock_sim::{Dur, Probe, Sim, SimTime};
use hpsock_vizserver::{
    complete_update, partial_update, BlockedImage, ComputeModel, PipelineCfg, Plan, QueryDesc,
    QueryDriver, QueryKind, VizPipeline,
};
use socketvia::Provider;

/// What a probed run exposes about the simulation it ran — defined next
/// to the drivers in `hpsock_vizserver` (every `*_probed` driver returns
/// one), re-exported here for the breakdown/export layer.
pub use hpsock_vizserver::RunCapture;

/// Base RNG seeds of the figure experiments, hoisted here so no driver
/// re-hardcodes a magic number. Values are the historical per-figure
/// seeds, so single-seed output is unchanged. Replicate batches
/// (`HPSOCK_SEEDS`, see [`crate::replicate`]) derive their per-replicate
/// streams from these; replicate 0 is the base itself.
pub const FIG7_SEED: u64 = 0xF167;
/// Figure 8's trace/breakdown-export seed.
pub const FIG8_SEED: u64 = 0xF168;
/// Figure 8's saturation-sweep seed (distinct from [`FIG8_SEED`] for
/// historical reasons; kept so the sweep CSV stays bit-identical).
pub const FIG8_SWEEP_SEED: u64 = 8;
/// Figure 9's query-mix seed.
pub const FIG9_SEED: u64 = 0xF19;
/// Figure 10's load-balancer reaction seed.
pub const FIG10_SEED: u64 = 0x10;
/// Figure 11's demand-driven heterogeneity seed.
pub const FIG11_SEED: u64 = 0x11;
/// Seed of the supplementary (`extra`) partition-tradeoff tables.
pub const EXTRA_SEED: u64 = 0xE;
/// Seed of the fault-injection availability experiment (`fig_faults`).
pub const FIG_FAULTS_SEED: u64 = 0xFA17;

/// Configuration of one guarantee-experiment run.
#[derive(Debug, Clone)]
pub struct GuaranteeRun {
    /// Transport carrying every pipeline stream.
    pub kind: TransportKind,
    /// Distribution block size (the planner's output).
    pub block_bytes: u64,
    /// Per-stage computation model.
    pub compute: ComputeModel,
    /// Open-loop complete-update rate (updates per second).
    pub target_ups: f64,
    /// Number of complete updates to stream.
    pub n_complete: u32,
    /// Number of interleaved partial-update probes.
    pub n_partial: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Measured outcome of a guarantee run.
#[derive(Debug, Clone, Copy)]
pub struct GuaranteeResult {
    /// Mean partial-update latency under load, µs.
    pub partial_us: Option<f64>,
    /// Mean complete-update latency, µs.
    pub complete_us: Option<f64>,
    /// Achieved complete-update rate, updates/s.
    pub achieved_ups: Option<f64>,
    /// Whether the target rate was sustained (≥95 % achieved and nothing
    /// left outstanding).
    pub sustained: bool,
}

/// Complete-update period indices into which the partial-update probes
/// fall. Probes start a quarter of the way through the run (never period
/// 0, so the pipeline is warm) and cycle over the remaining periods, so
/// every probe lands mid-period *inside* the run regardless of
/// `n_partial`. Requires `n_complete >= 2`.
pub fn probe_indices(n_complete: u32, n_partial: u32) -> Vec<u32> {
    debug_assert!(n_complete >= 2, "a guarantee run streams >= 2 updates");
    let first_probe = 1.max(n_complete / 4);
    let span = n_complete.saturating_sub(first_probe).max(1);
    (0..n_partial).map(|p| first_probe + p % span).collect()
}

/// Run the pipeline under the configured load and measure.
pub fn run_guarantee(run: &GuaranteeRun) -> GuaranteeResult {
    run_guarantee_traced(run, None).0
}

/// [`run_guarantee`] with an optional probe attached before the run.
/// Probes are observational only, so the measured result is identical to
/// the unprobed run (pinned by the determinism tests).
pub fn run_guarantee_traced(
    run: &GuaranteeRun,
    probe: Option<Box<dyn Probe>>,
) -> (GuaranteeResult, RunCapture) {
    run_guarantee_probed(run, |_| probe)
}

/// [`run_guarantee_traced`] where the probe is built *after* the cluster
/// topology exists: the factory receives the resource names (indexed by
/// `ResourceId`), which streaming trace sinks need up-front for their
/// track tables. Resources are all registered before the first event
/// fires, so attaching at this point observes the entire run.
pub fn run_guarantee_probed(
    run: &GuaranteeRun,
    make_probe: impl FnOnce(&[String]) -> Option<Box<dyn Probe>>,
) -> (GuaranteeResult, RunCapture) {
    let img = BlockedImage::paper_image(run.block_bytes);
    let period = Dur::from_secs_f64(1.0 / run.target_ups);
    let mut items: Vec<(SimTime, QueryDesc)> = (0..run.n_complete)
        .map(|i| (SimTime::ZERO + period.mul(i as u64), complete_update(&img)))
        .collect();
    // Probes land mid-period, spread across the middle of the run.
    for idx in probe_indices(run.n_complete, run.n_partial) {
        items.push((
            SimTime::ZERO + period.mul(u64::from(idx)) + period.div(2),
            partial_update(&img, 1),
        ));
    }
    let mut sim = Sim::new(run.seed);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(run.kind), run.compute);
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::OpenLoop(items));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().expect("targets") = pipe.repo_pids();
    crate::sharding::apply_pipeline_plan(&mut sim, &cluster, driver_pid, 3);
    if let Some(p) = make_probe(&sim.resource_names()) {
        sim.attach_probe(p);
    }
    let end = sim.run();
    let cap = RunCapture::of(&sim, end);
    let d: &QueryDriver = sim.process(driver_pid).expect("driver persists");
    let achieved = d.achieved_rate(QueryKind::Complete);
    let sustained = achieved.is_some_and(|r| r >= 0.95 * run.target_ups) && d.outstanding() == 0;
    (
        GuaranteeResult {
            partial_us: d.mean_latency_us(QueryKind::Partial),
            complete_us: d.mean_latency_us(QueryKind::Complete),
            achieved_ups: achieved,
            sustained,
        },
        cap,
    )
}

/// Saturation throughput: submit `n` complete updates back-to-back and
/// measure the completion rate (Figure 8's y-axis).
pub fn run_saturation_ups(
    kind: TransportKind,
    block_bytes: u64,
    compute: ComputeModel,
    n: u32,
    seed: u64,
) -> f64 {
    let img = BlockedImage::paper_image(block_bytes);
    let items: Vec<(SimTime, QueryDesc)> = (0..n)
        .map(|i| (SimTime::ZERO + Dur::micros(i as u64), complete_update(&img)))
        .collect();
    let mut sim = Sim::new(seed);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(kind), compute);
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::OpenLoop(items));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().expect("targets") = pipe.repo_pids();
    crate::sharding::apply_pipeline_plan(&mut sim, &cluster, driver_pid, 3);
    sim.run();
    let d: &QueryDriver = sim.process(driver_pid).expect("driver persists");
    assert_eq!(d.outstanding(), 0, "saturation run drained");
    let first_submit = d
        .results
        .iter()
        .map(|r| r.submitted)
        .min()
        .expect("results");
    let last_completion = d
        .results
        .iter()
        .map(|r| r.completed)
        .max()
        .expect("results");
    let span = last_completion.since(first_submit).as_secs_f64();
    if span <= 0.0 {
        0.0
    } else {
        d.results.len() as f64 / span
    }
}

/// Isolated partial-update latency: the paper's "latency for this message
/// chunk" — the end-to-end pipeline latency of a one-block query on an
/// otherwise idle system, averaged over `n` closed-loop queries.
pub fn isolated_partial_us(
    kind: TransportKind,
    block_bytes: u64,
    compute: ComputeModel,
    n: u32,
    seed: u64,
) -> f64 {
    let img = BlockedImage::paper_image(block_bytes);
    let queries: Vec<QueryDesc> = (0..n).map(|_| partial_update(&img, 1)).collect();
    let mut sim = Sim::new(seed);
    let cluster = Cluster::build(&mut sim, VizPipeline::nodes_needed(3));
    let cfg = PipelineCfg::paper(Provider::new(kind), compute);
    let (driver_pid, targets) = QueryDriver::install(&mut sim, Plan::ClosedLoop(queries));
    let pipe = VizPipeline::build(&mut sim, &cluster, &cfg, driver_pid);
    *targets.lock().expect("targets") = pipe.repo_pids();
    crate::sharding::apply_pipeline_plan(&mut sim, &cluster, driver_pid, 3);
    sim.run();
    let d: &QueryDriver = sim.process(driver_pid).expect("driver persists");
    d.mean_latency_us(QueryKind::Partial)
        .expect("partial queries completed")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the old scheduling computed
    /// `first_probe + p % (n_complete - 1)` — `%` binds tighter than `+`,
    /// so with enough probes the index walked past the final complete
    /// update and probes fired after the load was gone (measuring an idle
    /// pipeline). Every probe must land inside `[first_probe,
    /// n_complete - 1]`.
    #[test]
    fn probe_indices_stay_inside_the_run() {
        for n_complete in 2..20u32 {
            let first_probe = 1.max(n_complete / 4);
            for n_partial in 1..40u32 {
                for idx in probe_indices(n_complete, n_partial) {
                    assert!(
                        idx >= first_probe && idx < n_complete,
                        "probe index {idx} outside [{first_probe}, {}) \
                         for n_complete={n_complete} n_partial={n_partial}",
                        n_complete
                    );
                }
            }
        }
    }

    #[test]
    fn probe_indices_cycle_over_the_tail() {
        // 8 completes, first probe at 2, span 6: probes cycle 2..8.
        assert_eq!(
            probe_indices(8, 8),
            vec![2, 3, 4, 5, 6, 7, 2, 3],
            "probes spread across the middle then wrap"
        );
    }

    #[test]
    fn feasible_rate_is_sustained() {
        let r = run_guarantee(&GuaranteeRun {
            kind: TransportKind::SocketVia,
            block_bytes: 65_536,
            compute: ComputeModel::None,
            target_ups: 2.0,
            n_complete: 5,
            n_partial: 3,
            seed: 1,
        });
        assert!(r.sustained, "{r:?}");
        assert!(r.partial_us.is_some());
        assert!(r.complete_us.unwrap() > 0.0);
    }

    #[test]
    fn infeasible_rate_is_flagged() {
        // 16 MB x 5/s = 640 Mbps > TCP's 510 Mbps peak: cannot sustain.
        let r = run_guarantee(&GuaranteeRun {
            kind: TransportKind::KTcp,
            block_bytes: 65_536,
            compute: ComputeModel::None,
            target_ups: 5.0,
            n_complete: 5,
            n_partial: 2,
            seed: 1,
        });
        assert!(!r.sustained, "{r:?}");
    }

    #[test]
    fn saturation_rate_orders_transports() {
        let sv = run_saturation_ups(TransportKind::SocketVia, 65_536, ComputeModel::None, 4, 2);
        let tcp = run_saturation_ups(TransportKind::KTcp, 65_536, ComputeModel::None, 4, 2);
        assert!(
            sv > tcp,
            "SocketVIA saturation {sv:.2} ups vs TCP {tcp:.2} ups"
        );
        assert!(tcp > 2.0 && tcp < 4.2, "TCP in the paper's ballpark: {tcp}");
    }
}
