//! Parallel parameter sweeps.
//!
//! Each sweep point runs an *independent* deterministic simulation, so
//! points parallelize perfectly across OS threads: a shared work queue
//! feeds a scoped worker pool and results land in input order.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Number of sweep workers: the `HPSOCK_THREADS` environment variable if
/// set to a positive integer, otherwise the machine's available
/// parallelism. Worker count never affects results, only wall time.
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("HPSOCK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Map `f` over `items` on a thread pool, preserving input order.
/// Determinism is unaffected: each item's simulation is self-contained.
///
/// Thread count comes from [`worker_count`] (override with
/// `HPSOCK_THREADS=n`).
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Indexed work queue drained by the pool. Each result goes straight
    // into its input-order slot; the per-slot mutex is uncontended (every
    // index is handed to exactly one worker) and exists only to make the
    // shared write safe.
    let jobs: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let jobs = &jobs;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                let Some((idx, item)) = jobs.lock().expect("job queue lock").pop() else {
                    return;
                };
                let out = f(item);
                *slots[idx].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every sweep point completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn thread_override_is_honored_and_result_identical() {
        // `HPSOCK_THREADS=1` must take the sequential path and produce the
        // same output. Setting the variable races only against concurrent
        // *reads* in sibling tests, which can change their worker count but
        // never their results.
        std::env::set_var("HPSOCK_THREADS", "1");
        let out = parallel_map((0..50).collect::<Vec<u64>>(), |x| x + 3);
        std::env::remove_var("HPSOCK_THREADS");
        assert_eq!(out, (3..53).collect::<Vec<u64>>());
    }
}
