//! Parallel parameter sweeps.
//!
//! Each sweep point runs an *independent* deterministic simulation, so
//! points parallelize perfectly across OS threads: a crossbeam channel
//! feeds a worker pool and results return in input order.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Map `f` over `items` on a thread pool, preserving input order.
/// Determinism is unaffected: each item's simulation is self-contained.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let (job_tx, job_rx) = channel::unbounded::<(usize, I)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, O)>();
    for pair in items.into_iter().enumerate() {
        job_tx.send(pair).expect("queue jobs");
    }
    drop(job_tx);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((idx, item)) = job_rx.recv() {
                    let out = f(item);
                    if res_tx.send((idx, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (idx, out) in res_rx.iter() {
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every sweep point completed"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }
}
