//! Parallel parameter sweeps.
//!
//! Each sweep point runs an *independent* deterministic simulation, so
//! points parallelize perfectly across OS threads: a shared work queue
//! feeds a scoped worker pool and results land in input order.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Parse an `HPSOCK_THREADS` value: a positive integer, anything else is
/// an error. The old behaviour silently fell back to available
/// parallelism on `0`, negative or garbage input, which masked
/// misconfiguration (e.g. `HPSOCK_THREADS=O8`); now the run fails with a
/// message naming the variable.
fn parse_worker_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("HPSOCK_THREADS must be >= 1, got 0 (unset it to use all cores)".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "HPSOCK_THREADS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Number of sweep workers: the `HPSOCK_THREADS` environment variable if
/// set (invalid values are rejected loudly), otherwise the machine's
/// available parallelism divided by the `HPSOCK_SHARDS` shard count —
/// every sweep point spawns that many kernel worker threads of its own,
/// so the product, not the sweep width, is what should match the core
/// count. An explicit `HPSOCK_THREADS` is taken literally. Worker count
/// never affects results, only wall time.
fn worker_count() -> usize {
    match std::env::var("HPSOCK_THREADS") {
        Ok(v) => parse_worker_count(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => {
            let cores = std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4);
            (cores / hpsock_sim::shard::configured_shards()).max(1)
        }
    }
}

/// Map `f` over `items` on a thread pool, preserving input order.
/// Determinism is unaffected: each item's simulation is self-contained.
///
/// Thread count comes from [`worker_count`] (override with
/// `HPSOCK_THREADS=n`).
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    parallel_map_workers(items, worker_count(), f)
}

/// [`parallel_map`] with an explicit worker count, bypassing
/// `HPSOCK_THREADS` — the hook the worker-count-independence tests use
/// without racing on the process environment.
pub fn parallel_map_workers<I, O, F>(items: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Indexed work queue drained by the pool. Each result goes straight
    // into its input-order slot; the per-slot mutex is uncontended (every
    // index is handed to exactly one worker) and exists only to make the
    // shared write safe.
    let jobs: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Scoped overrides (`with_shard_count`, `with_telemetry_dir`,
    // `fault::with_plan`, `with_netmodel`) are thread-local; re-install
    // the submitting thread's overrides in every pool worker so sweep
    // points run under the same shard count, telemetry setting, fault
    // plan and network model as the caller.
    let shards = hpsock_sim::shard::shard_override();
    let telemetry = hpsock_sim::telemetry::telemetry_override();
    let faults = hpsock_net::fault::fault_override();
    let netmodel = hpsock_net::netmodel::netmodel_override();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let jobs = &jobs;
            let slots = &slots;
            let f = &f;
            let telemetry = telemetry.clone();
            let faults = faults.clone();
            s.spawn(move || {
                let drain = || loop {
                    let Some((idx, item)) = jobs.lock().expect("job queue lock").pop() else {
                        return;
                    };
                    let out = f(item);
                    *slots[idx].lock().expect("slot lock") = Some(out);
                };
                let modeled = || match netmodel {
                    Some(m) => hpsock_net::netmodel::with_netmodel(m, drain),
                    None => drain(),
                };
                let sharded = || match shards {
                    Some(k) => hpsock_sim::shard::with_shard_count(k, modeled),
                    None => modeled(),
                };
                let faulted = || match faults {
                    Some(p) => hpsock_net::fault::with_plan(p, sharded),
                    None => sharded(),
                };
                match telemetry {
                    Some(dir) => hpsock_sim::telemetry::with_telemetry_dir(dir.as_deref(), faulted),
                    None => faulted(),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every sweep point completed")
        })
        .collect()
}

/// Schedule `points × seeds` replicate jobs through the pool: every item
/// runs once per seed in `seeds`, and the outputs come back grouped per
/// item, in seed order. The flattened job list feeds [`parallel_map`]
/// directly, so replicates of different points interleave freely across
/// workers while each output still lands in its `(point, seed)` slot —
/// aggregates are therefore identical under any worker count.
pub fn parallel_map_seeded<I, O, F>(items: Vec<I>, seeds: &[u64], f: F) -> Vec<Vec<O>>
where
    I: Clone + Send + Sync,
    O: Send,
    F: Fn(&I, u64) -> O + Sync,
{
    assert!(!seeds.is_empty(), "a seed batch has at least one replicate");
    let n_seeds = seeds.len();
    let jobs: Vec<(I, u64)> = items
        .into_iter()
        .flat_map(|item| seeds.iter().map(move |&s| (item.clone(), s)))
        .collect();
    let flat = parallel_map(jobs, |(item, seed)| f(&item, seed));
    let mut out = Vec::with_capacity(flat.len() / n_seeds);
    let mut it = flat.into_iter();
    while let Some(first) = it.next() {
        let mut reps = Vec::with_capacity(n_seeds);
        reps.push(first);
        for _ in 1..n_seeds {
            reps.push(it.next().expect("seeds divide the job count"));
        }
        out.push(reps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn parse_worker_count_rejects_invalid_values() {
        assert_eq!(parse_worker_count("1"), Ok(1));
        assert_eq!(parse_worker_count(" 16 "), Ok(16));
        let err = parse_worker_count("0").unwrap_err();
        assert!(err.contains("HPSOCK_THREADS"), "names the variable: {err}");
        assert!(parse_worker_count("-4").is_err(), "negative rejected");
        assert!(parse_worker_count("eight").is_err(), "garbage rejected");
        assert!(parse_worker_count("").is_err(), "empty rejected");
        assert!(parse_worker_count("3.5").is_err(), "fractional rejected");
    }

    #[test]
    fn seeded_map_groups_by_item_in_seed_order() {
        let out = parallel_map_seeded(vec![10u64, 20], &[1, 2, 3], |&x, s| x + s);
        assert_eq!(out, vec![vec![11, 12, 13], vec![21, 22, 23]]);
        let single = parallel_map_seeded(vec![5u64], &[7], |&x, s| x * s);
        assert_eq!(single, vec![vec![35]]);
        let empty = parallel_map_seeded(Vec::<u64>::new(), &[1, 2], |&x, _| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn seeded_map_is_worker_count_independent() {
        // The replicate grid goes through parallel_map's indexed slots, so
        // grouping never depends on scheduling; pin it against the
        // explicit-worker path for 1 vs 8 workers.
        let items: Vec<u64> = (0..13).collect();
        let seeds = crate::replicate::seed_batch(0xF167, 3);
        let jobs = |w: usize| {
            let flat: Vec<(u64, u64)> = items
                .iter()
                .flat_map(|&i| seeds.iter().map(move |&s| (i, s)))
                .collect();
            parallel_map_workers(flat, w, |(i, s)| i.wrapping_mul(s))
        };
        assert_eq!(jobs(1), jobs(8));
    }

    /// A scoped telemetry override on the submitting thread must be
    /// visible inside every pool worker, like the shard-count override.
    #[test]
    fn telemetry_override_propagates_to_pool_workers() {
        let dir = std::path::PathBuf::from("tel-sweep-scope");
        let seen = hpsock_sim::telemetry::with_telemetry_dir(Some(&dir), || {
            parallel_map_workers((0..8).collect::<Vec<u32>>(), 4, |_| {
                hpsock_sim::telemetry::configured_telemetry()
            })
        });
        assert!(
            seen.iter().all(|d| d.as_deref() == Some(dir.as_path())),
            "pool workers saw {seen:?}"
        );
    }

    /// A scoped fault-plan override on the submitting thread must be
    /// visible inside every pool worker, like the shard-count and
    /// telemetry overrides — otherwise a faulted sweep would silently run
    /// its points fault-free.
    #[test]
    fn fault_override_propagates_to_pool_workers() {
        let plan = std::sync::Arc::new(
            hpsock_net::FaultPlan::parse("drop=0.5").expect("valid fault spec"),
        );
        let seen = hpsock_net::fault::with_plan(Some(plan), || {
            parallel_map_workers((0..8).collect::<Vec<u32>>(), 4, |_| {
                hpsock_net::fault::configured_plan().is_some()
            })
        });
        assert!(seen.iter().all(|&b| b), "pool workers saw {seen:?}");
    }

    /// A scoped network-model override on the submitting thread must be
    /// visible inside every pool worker — otherwise a flow-model sweep
    /// would silently build packet-model clusters on the pool.
    #[test]
    fn netmodel_override_propagates_to_pool_workers() {
        let seen = hpsock_net::with_netmodel(hpsock_net::NetModel::Flow, || {
            parallel_map_workers((0..8).collect::<Vec<u32>>(), 4, |_| {
                hpsock_net::configured_netmodel()
            })
        });
        assert!(
            seen.iter().all(|&m| m == hpsock_net::NetModel::Flow),
            "pool workers saw {seen:?}"
        );
    }

    #[test]
    fn thread_override_is_honored_and_result_identical() {
        // `HPSOCK_THREADS=1` must take the sequential path and produce the
        // same output. Setting the variable races only against concurrent
        // *reads* in sibling tests, which can change their worker count but
        // never their results.
        std::env::set_var("HPSOCK_THREADS", "1");
        let out = parallel_map((0..50).collect::<Vec<u64>>(), |x| x + 3);
        std::env::remove_var("HPSOCK_THREADS");
        assert_eq!(out, (3..53).collect::<Vec<u64>>());
    }
}
