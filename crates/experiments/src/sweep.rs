//! Parallel parameter sweeps.
//!
//! Each sweep point runs an *independent* deterministic simulation, so
//! points parallelize perfectly across OS threads: a shared work queue
//! feeds a scoped worker pool and results return in input order.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Map `f` over `items` on a thread pool, preserving input order.
/// Determinism is unaffected: each item's simulation is self-contained.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Indexed work queue drained by the pool; each worker writes results
    // into its own slot list, merged (still in input order) at the end.
    let jobs: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let results: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let jobs = &jobs;
            let results = &results;
            let f = &f;
            s.spawn(move || loop {
                let Some((idx, item)) = jobs.lock().expect("job queue lock").pop() else {
                    return;
                };
                let out = f(item);
                results.lock().expect("result lock").push((idx, out));
            });
        }
    });
    for (idx, out) in results.into_inner().expect("result lock") {
        slots[idx] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep point completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }
}
