//! Figure 8 — achievable full updates per second under a partial-update
//! latency guarantee, for (a) no computation and (b) linear computation.
//!
//! For each latency bound the planner picks the *largest* block whose
//! one-block transfer honours the bound; the pipeline is then saturated
//! with back-to-back complete updates and the completion rate measured.
//! TCP "drops out" once the bound falls below its latency intercept
//! (~47.5 µs + block transfer): at the paper's 100 µs point TCP barely
//! fits a block and its rate collapses.

use crate::replicate::{self, Series};
use crate::runner::{run_saturation_ups, GuaranteeRun, FIG8_SEED, FIG8_SWEEP_SEED};
use crate::sweep::parallel_map_seeded;
use crate::table::Table;
use hpsock_net::TransportKind;
use hpsock_vizserver::{block_size_for_partial_latency, ComputeModel};
use socketvia::PerfCurve;

/// The paper's 16 MB image.
pub const IMAGE_BYTES: u64 = 16 * 1024 * 1024;

/// Latency bounds of both panels (µs).
pub fn latency_bounds() -> Vec<f64> {
    vec![
        1000.0, 900.0, 800.0, 700.0, 600.0, 500.0, 400.0, 300.0, 200.0, 100.0,
    ]
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Latency bound, µs.
    pub limit_us: f64,
    /// TCP updates/s (None = no feasible block).
    pub tcp_ups: Option<f64>,
    /// SocketVIA at TCP's block size.
    pub sv_ups: Option<f64>,
    /// SocketVIA at its own (larger) planned block.
    pub sv_dr_ups: f64,
    /// Blocks used: (tcp, socketvia_dr).
    pub blocks: (Option<u64>, u64),
}

/// Run one panel with the single base seed: `n` updates per saturation
/// measurement.
pub fn sweep(compute: ComputeModel, bounds: &[f64], n: u32) -> Vec<Point> {
    sweep_seeded(compute, bounds, n, &[FIG8_SWEEP_SEED])
        .into_iter()
        .map(|mut reps| reps.remove(0))
        .collect()
}

/// Run one panel, one replicate per seed in `seeds` (see
/// [`crate::replicate`]).
pub fn sweep_seeded(
    compute: ComputeModel,
    bounds: &[f64],
    n: u32,
    seeds: &[u64],
) -> Vec<Vec<Point>> {
    let tcp_curve = PerfCurve::from_kind(TransportKind::KTcp);
    let sv_curve = PerfCurve::from_kind(TransportKind::SocketVia);
    let jobs: Vec<(f64, Option<u64>, u64)> = bounds
        .iter()
        .map(|&limit| {
            (
                limit,
                block_size_for_partial_latency(&tcp_curve, IMAGE_BYTES, limit),
                block_size_for_partial_latency(&sv_curve, IMAGE_BYTES, limit)
                    .expect("SocketVIA fits a block at every paper bound"),
            )
        })
        .collect();
    parallel_map_seeded(jobs, seeds, move |&(limit, tcp_block, sv_block), seed| {
        let tcp_ups =
            tcp_block.map(|b| run_saturation_ups(TransportKind::KTcp, b, compute, n, seed));
        let sv_ups =
            tcp_block.map(|b| run_saturation_ups(TransportKind::SocketVia, b, compute, n, seed));
        let sv_dr_ups = run_saturation_ups(TransportKind::SocketVia, sv_block, compute, n, seed);
        Point {
            limit_us: limit,
            tcp_ups,
            sv_ups,
            sv_dr_ups,
            blocks: (tcp_block, sv_block),
        }
    })
}

/// Render a panel as the paper's series. Replicated batches add
/// per-series `_ci95_lo`/`_ci95_hi` columns (the bare column is the
/// across-seed mean) and a trailing `n_seeds`; single-seed batches keep
/// the historical columns bit-for-bit. `HPSOCK_TAILS=1` appends
/// `_p50`/`_p99`/`_p999` tail columns after each series.
pub fn to_table(title: &str, points: &[Vec<Point>]) -> Table {
    let n_seeds = points.first().map_or(1, Vec::len);
    let replicated = n_seeds > 1;
    let tails = replicate::tails_enabled();
    let mut headers = vec!["latency_us".to_string()];
    for name in ["TCP", "SocketVIA", "SocketVIA(DR)"] {
        replicate::value_headers(&mut headers, name, replicated);
        replicate::tail_headers(&mut headers, name, tails);
    }
    headers.extend(["tcp_block", "dr_block"].map(String::from));
    if replicated {
        headers.push("n_seeds".into());
    }
    let mut t = Table::from_headers(title, headers);
    for reps in points {
        let p0 = &reps[0];
        let mut row = vec![format!("{:.0}", p0.limit_us)];
        let cells = |row: &mut Vec<String>, s: Series| {
            replicate::value_cells(row, &s, 2, replicated);
            replicate::tail_cells(row, &s, 2, tails);
        };
        cells(&mut row, Series::collect(reps.iter().map(|p| p.tcp_ups)));
        cells(&mut row, Series::collect(reps.iter().map(|p| p.sv_ups)));
        cells(
            &mut row,
            Series::collect(reps.iter().map(|p| Some(p.sv_dr_ups))),
        );
        row.push(
            p0.blocks
                .0
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        row.push(p0.blocks.1.to_string());
        if replicated {
            row.push(n_seeds.to_string());
        }
        t.add_row(row);
    }
    t
}

/// Run both panels, `n` updates per point, with the `HPSOCK_SEEDS`
/// replicate batch derived from [`FIG8_SWEEP_SEED`].
pub fn run(n: u32) -> Vec<Table> {
    run_seeded(
        n,
        &replicate::seed_batch(FIG8_SWEEP_SEED, replicate::seed_count()),
    )
}

/// [`run`] with an explicit seed batch.
pub fn run_seeded(n: u32, seeds: &[u64]) -> Vec<Table> {
    let bounds = latency_bounds();
    let a = sweep_seeded(ComputeModel::None, &bounds, n, seeds);
    let b = sweep_seeded(ComputeModel::paper_linear(), &bounds, n, seeds);
    vec![
        to_table(
            "Figure 8(a): updates/sec with latency guarantee, no computation",
            &a,
        ),
        to_table(
            "Figure 8(b): updates/sec with latency guarantee, linear computation",
            &b,
        ),
    ]
}

/// Probe-bus export (behind `HPSOCK_TRACE`): trace a loaded 2 updates/sec
/// run per series at the 500 µs bound's planned blocks and write
/// `fig8_<series>.trace.json` Chrome traces plus `fig8_breakdown.csv`
/// under `dir`. `n_complete` scales the run length (quick mode uses 3).
pub fn export_traces(dir: &std::path::Path, n_complete: u32) {
    const LIMIT_US: f64 = 500.0;
    let tcp_block = block_size_for_partial_latency(
        &PerfCurve::from_kind(TransportKind::KTcp),
        IMAGE_BYTES,
        LIMIT_US,
    )
    .expect("TCP fits a block at 500us");
    let sv_block = block_size_for_partial_latency(
        &PerfCurve::from_kind(TransportKind::SocketVia),
        IMAGE_BYTES,
        LIMIT_US,
    )
    .expect("SocketVIA fits a block at every paper bound");
    let mk = |kind, block_bytes| GuaranteeRun {
        kind,
        block_bytes,
        compute: ComputeModel::None,
        target_ups: 2.0,
        n_complete: n_complete.max(3),
        n_partial: 2,
        seed: FIG8_SEED,
    };
    crate::breakdown::export_guarantee_traces(
        dir,
        "fig8",
        "Figure 8 time breakdown at the 500 us bound, 2 updates/sec load (us of server-time)",
        &[
            ("TCP", mk(TransportKind::KTcp, tcp_block)),
            ("SocketVIA", mk(TransportKind::SocketVia, tcp_block)),
            (
                "SocketVIA (with DR)",
                mk(TransportKind::SocketVia, sv_block),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_dominates_and_tcp_degrades_at_tight_bounds() {
        let pts = sweep(ComputeModel::None, &[1000.0, 100.0], 4);
        let loose = &pts[0];
        let tight = &pts[1];
        // At a loose bound everyone works; DR at least matches.
        assert!(loose.sv_dr_ups >= loose.tcp_ups.unwrap() * 1.2);
        // At 100us TCP fits only a tiny block and collapses, while
        // SocketVIA DR stays near its peak.
        let tcp_tight = tight.tcp_ups.unwrap_or(0.0);
        assert!(
            tight.sv_dr_ups > 4.0 * tcp_tight.max(0.05),
            "DR {} vs TCP {} at 100us",
            tight.sv_dr_ups,
            tcp_tight
        );
        assert!(
            tight.sv_dr_ups > 0.75 * loose.sv_dr_ups,
            "DR stays near peak: {} vs {}",
            tight.sv_dr_ups,
            loose.sv_dr_ups
        );
    }

    #[test]
    fn compute_compresses_the_gap() {
        // With 18ns/B compute the processing dominates and TCP ~ SocketVIA
        // at loose bounds (paper: "TCP and SocketVIA perform very
        // closely").
        let pts = sweep(ComputeModel::paper_linear(), &[1000.0], 4);
        let p = &pts[0];
        let (tcp, sv) = (p.tcp_ups.unwrap(), p.sv_ups.unwrap());
        assert!(
            sv / tcp < 2.0,
            "compute narrows the ratio: sv {sv} tcp {tcp}"
        );
    }
}
