//! The big rack topology: a cluster large enough that the sharded
//! kernel's conservative windows hold real work.
//!
//! [`RACKS`] racks of [`PER_RACK`] nodes (128 total). The senders live in
//! the first half of the racks, the receivers in the second half, and
//! connection `i` streams [`BYTES`]-byte messages from node `i` to node
//! `64 + i` over SocketVIA. All streams are unidirectional, so the
//! cross-shard lookahead under a rack partition
//! ([`Cluster::rack_shard_plan`]) is the ~600 ns data path one way and
//! the 9.5 µs credit/ack path the other — wide enough windows, with 64
//! concurrent flow-controlled streams inside them, that 2–4 shards
//! amortize the round protocol and beat the sequential kernel on
//! multi-core hosts. The `engine/sharded_big_{1,2,4}` criterion benches
//! and the CI shard-smoke speedup gate both drive [`run_big`].

use hpsock_net::{Cluster, ConnId, Delivery, NodeId, TransportKind};
use hpsock_sim::{Ctx, Message, Process, Sim, SimTime};

/// Racks in the big topology.
pub const RACKS: usize = 8;
/// Nodes per rack.
pub const PER_RACK: usize = 16;
/// Concurrent sender→receiver streams (one per sender node).
pub const CONNS: usize = RACKS * PER_RACK / 2;
/// Message size per send; flow control paces the stream.
pub const BYTES: u64 = 16_384;

/// Submits `count` messages up front; flow control paces the stream.
struct Burst {
    net: hpsock_net::Network,
    conn: ConnId,
    count: u32,
}
impl Process for Burst {
    fn name(&self) -> String {
        format!("bigtopo-burst-{}", self.conn.0)
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.count {
            self.net.send(ctx, self.conn, BYTES, Message::new(()));
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
}

/// Consumes every delivery immediately, returning credits.
struct Drain {
    net: hpsock_net::Network,
}
impl Process for Drain {
    fn name(&self) -> String {
        "bigtopo-drain".to_string()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let d = msg
            .downcast::<Delivery>()
            .expect("drain expects deliveries");
        self.net.consumed(ctx, d.conn, d.msg_id);
    }
}

/// Run the big topology with `msgs_per_conn` messages on each of the
/// [`CONNS`] streams, under a whole-rack shard partition when
/// `shards > 1`. Returns `(end time, trace digest, events dispatched)` —
/// all three are shard-count invariant, which the determinism suite and
/// the CI smoke gate both pin.
pub fn run_big(shards: usize, msgs_per_conn: u32) -> (SimTime, u64, u64) {
    let mut sim = Sim::new(0xB16);
    let cluster = Cluster::build_racks(&mut sim, RACKS, PER_RACK);
    let net = cluster.network();
    for i in 0..CONNS {
        let tx = sim.add_process(Box::new(Burst {
            net: net.clone(),
            conn: ConnId(i),
            count: msgs_per_conn,
        }));
        let rx = sim.add_process(Box::new(Drain { net: net.clone() }));
        net.connect(
            cluster.endpoint(NodeId(i), tx),
            cluster.endpoint(NodeId(CONNS + i), rx),
            TransportKind::SocketVia,
        );
    }
    if shards > 1 {
        sim.set_shard_plan(cluster.rack_shard_plan(shards, PER_RACK));
    }
    let end = sim.run();
    (end, sim.trace_digest(), sim.events_dispatched())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The big-topology run is shard-count invariant — the property the
    /// criterion benches assert before timing and CI gates on speed.
    /// Scaled down here (few messages) to stay test-suite friendly.
    #[test]
    fn big_topology_is_shard_invariant() {
        let seq = run_big(1, 3);
        assert!(seq.2 > 0, "the run dispatches events");
        assert_eq!(run_big(2, 3), seq, "2 shards replay sequential");
        assert_eq!(run_big(4, 3), seq, "4 shards replay sequential");
    }
}
