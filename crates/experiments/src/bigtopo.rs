//! The big rack topology: a cluster large enough that the sharded
//! kernel's conservative windows hold real work.
//!
//! [`RACKS`] racks of [`PER_RACK`] nodes (128 total). The senders live in
//! the first half of the racks, the receivers in the second half, and
//! connection `i` streams [`BYTES`]-byte messages from node `i` to node
//! `64 + i` over SocketVIA. All streams are unidirectional, so the
//! cross-shard lookahead under a rack partition
//! ([`Cluster::rack_shard_plan`]) is the ~600 ns data path one way and
//! the 9.5 µs credit/ack path the other — wide enough windows, with 64
//! concurrent flow-controlled streams inside them, that 2–4 shards
//! amortize the round protocol and beat the sequential kernel on
//! multi-core hosts. The `engine/sharded_big_{1,2,4}` criterion benches
//! and the CI shard-smoke speedup gate both drive [`run_big`].
//!
//! [`run_big_custom`] parameterizes the same topology by transport and
//! message size. The flow-vs-packet speed gate uses TCP at
//! [`GATE_BYTES`]: a 32 KiB TCP message segments into 23 wire frames
//! (~120 stage events per message under the packet engine) while the
//! fluid model spends a handful of events per flow regardless of size —
//! the workload where the fast path must show its ≥10× event reduction.

use hpsock_net::{Cluster, ConnId, Delivery, NodeId, TransportKind};
use hpsock_sim::{Ctx, Message, Process, Sim, SimTime};

/// Racks in the big topology.
pub const RACKS: usize = 8;
/// Nodes per rack.
pub const PER_RACK: usize = 16;
/// Concurrent sender→receiver streams (one per sender node).
pub const CONNS: usize = RACKS * PER_RACK / 2;
/// Message size per send; flow control paces the stream.
pub const BYTES: u64 = 16_384;
/// Message size of the flow-vs-packet gate workload (23 TCP frames).
pub const GATE_BYTES: u64 = 32_768;

/// Submits `count` messages up front; flow control paces the stream.
struct Burst {
    net: hpsock_net::Network,
    conn: ConnId,
    bytes: u64,
    count: u32,
}
impl Process for Burst {
    fn name(&self) -> String {
        format!("bigtopo-burst-{}", self.conn.0)
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.count {
            self.net.send(ctx, self.conn, self.bytes, Message::new(()));
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
}

/// Consumes every delivery immediately, returning credits.
struct Drain {
    net: hpsock_net::Network,
}
impl Process for Drain {
    fn name(&self) -> String {
        "bigtopo-drain".to_string()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let d = msg
            .downcast::<Delivery>()
            .expect("drain expects deliveries");
        self.net.consumed(ctx, d.conn, d.msg_id);
    }
}

/// Run the big topology with `msgs_per_conn` messages on each of the
/// [`CONNS`] streams, under a whole-rack shard partition when
/// `shards > 1`. Returns `(end time, trace digest, events dispatched)` —
/// all three are shard-count invariant, which the determinism suite and
/// the CI smoke gate both pin.
pub fn run_big(shards: usize, msgs_per_conn: u32) -> (SimTime, u64, u64) {
    run_big_custom(shards, msgs_per_conn, TransportKind::SocketVia, BYTES)
}

/// [`run_big`] parameterized by transport and message size (the topology,
/// stream layout and seed stay fixed). The network model comes from
/// `HPSOCK_NETMODEL` / `with_netmodel`, as everywhere.
pub fn run_big_custom(
    shards: usize,
    msgs_per_conn: u32,
    kind: TransportKind,
    bytes: u64,
) -> (SimTime, u64, u64) {
    let mut sim = Sim::new(0xB16);
    let cluster = Cluster::build_racks(&mut sim, RACKS, PER_RACK);
    let net = cluster.network();
    for i in 0..CONNS {
        let tx = sim.add_process(Box::new(Burst {
            net: net.clone(),
            conn: ConnId(i),
            bytes,
            count: msgs_per_conn,
        }));
        let rx = sim.add_process(Box::new(Drain { net: net.clone() }));
        net.connect(
            cluster.endpoint(NodeId(i), tx),
            cluster.endpoint(NodeId(CONNS + i), rx),
            kind,
        );
    }
    if shards > 1 {
        sim.set_shard_plan(cluster.rack_shard_plan(shards, PER_RACK));
    }
    let end = sim.run();
    (end, sim.trace_digest(), sim.events_dispatched())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpsock_net::{with_netmodel, NetModel};

    /// The big-topology run is shard-count invariant — the property the
    /// criterion benches assert before timing and CI gates on speed.
    /// Scaled down here (few messages) to stay test-suite friendly.
    #[test]
    fn big_topology_is_shard_invariant() {
        let seq = run_big(1, 3);
        assert!(seq.2 > 0, "the run dispatches events");
        assert_eq!(run_big(2, 3), seq, "2 shards replay sequential");
        assert_eq!(run_big(4, 3), seq, "4 shards replay sequential");
    }

    /// The fluid fast path dispatches ≥10× fewer events than the packet
    /// engine on the gate workload (TCP at [`GATE_BYTES`]), and both
    /// models agree on delivered work (same virtual end-time order of
    /// magnitude, same stream count). This is the in-tree twin of the CI
    /// `flow-smoke` event-ratio gate.
    #[test]
    fn flow_model_cuts_gate_workload_events_10x() {
        let gate = |model| {
            with_netmodel(model, || {
                run_big_custom(1, 5, TransportKind::KTcp, GATE_BYTES)
            })
        };
        let (end_p, _, ev_packet) = gate(NetModel::Packet);
        let (end_f, _, ev_flow) = gate(NetModel::Flow);
        assert!(
            ev_packet >= 10 * ev_flow,
            "packet {ev_packet} events vs flow {ev_flow}: ratio {:.1}x < 10x",
            ev_packet as f64 / ev_flow as f64
        );
        // Same workload, comparable virtual completion time (the fluid
        // model idealizes flow control, so allow a loose band).
        let (a, b) = (end_p.as_nanos() as f64, end_f.as_nanos() as f64);
        let rel = (a - b).abs() / a.max(b);
        assert!(
            rel < 0.25,
            "virtual end times diverge: packet {a} ns vs flow {b} ns"
        );
    }
}
