//! Regenerate Figure 8: updates/sec under partial-update latency guarantees.

fn main() {
    let n = if hpsock_experiments::quick_mode() {
        3
    } else {
        5
    };
    let tables = hpsock_experiments::fig8::run(n);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig8", |dir| {
        hpsock_experiments::fig8::export_traces(dir, n);
    });
}
