//! Regenerate every table and figure of the paper in one run.

use hpsock_experiments as x;

fn main() {
    let quick = x::quick_mode();
    let dir = x::results_dir();
    eprintln!("[1/9] Figure 4 + Figure 2 ...");
    let (iters, total) = if quick { (4, 1 << 20) } else { (16, 1 << 22) };
    x::emit(&x::fig4::run(iters, total), &dir);
    x::export_under_trace("fig4", |tdir| x::fig4::export_traces(tdir, total));
    eprintln!("[2/9] Figure 7 ...");
    let scale = if quick {
        x::fig7::Scale {
            n_complete: 3,
            n_partial: 2,
        }
    } else {
        x::fig7::Scale::default()
    };
    x::emit(&x::fig7::run(scale), &dir);
    x::export_under_trace("fig7", |tdir| x::fig7::export_traces(tdir, scale));
    eprintln!("[3/9] Figure 8 ...");
    let n8 = if quick { 3 } else { 5 };
    x::emit(&x::fig8::run(n8), &dir);
    x::export_under_trace("fig8", |tdir| x::fig8::export_traces(tdir, n8));
    eprintln!("[4/9] Figure 9 ...");
    let n9 = if quick { 5 } else { 10 };
    x::emit(&x::fig9::run(n9), &dir);
    x::export_under_trace("fig9", |tdir| x::fig9::export_traces(tdir, n9));
    eprintln!("[5/9] Figure 10 ...");
    x::emit(&x::fig10::run(), &dir);
    x::export_under_trace("fig10", x::fig10::export_traces);
    eprintln!("[6/9] Figure 11 ...");
    x::emit(&x::fig11::run(), &dir);
    x::export_under_trace("fig11", x::fig11::export_traces);
    eprintln!("[7/9] Future work: RDMA ...");
    x::emit(&x::future::run(), &dir);
    eprintln!("[8/9] Supplementary: Figure 1 amplification, partition trade-off ...");
    x::emit(&x::extra::run(if quick { 3 } else { 6 }), &dir);
    eprintln!("[9/9] Fault injection: availability and guarantee retention ...");
    x::emit(&x::fig_faults::run(quick), &dir);
    eprintln!("done: CSVs under {}", dir.display());
}
