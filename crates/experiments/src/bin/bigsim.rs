//! Run the big rack topology once and print a one-line summary.
//!
//! Shard count comes from `HPSOCK_SHARDS` (clamped to the rack count);
//! `--quick` / `HPSOCK_QUICK=1` shrinks the message count for smoke runs.
//! With `HPSOCK_TELEMETRY=<dir>` the kernel writes `run_report.json`
//! (and, sharded, `shard_rounds.csv` + `shard_lanes.json`) there — the CI
//! shard-smoke job compares the printed digests across shard counts and
//! gates on the reports' events/sec ratio.

use hpsock_experiments::bigtopo;
use hpsock_sim::shard::{clamp_shards, configured_shards};

fn main() {
    let msgs: u32 = if hpsock_experiments::quick_mode() {
        30
    } else {
        100
    };
    let shards = clamp_shards(configured_shards(), bigtopo::RACKS, "the big rack topology");
    let (end, digest, events) = bigtopo::run_big(shards, msgs);
    println!(
        "bigsim shards={shards} msgs_per_conn={msgs} events={events} \
         digest={digest:016x} end_us={:.1}",
        end.as_nanos() as f64 / 1e3
    );
}
