//! Run the big rack topology once and print a one-line summary.
//!
//! Shard count comes from `HPSOCK_SHARDS` (clamped to the rack count);
//! `--quick` / `HPSOCK_QUICK=1` shrinks the message count for smoke runs.
//! `--transport=tcp` switches the streams to kernel TCP at the 32 KiB
//! gate message size (`--transport=socketvia` is the default workload);
//! `HPSOCK_NETMODEL=flow` runs the same topology through the fluid
//! engine. With `HPSOCK_TELEMETRY=<dir>` the kernel writes
//! `run_report.json` (and, sharded, `shard_rounds.csv` +
//! `shard_lanes.json`) there — the CI shard-smoke job compares the
//! printed digests across shard counts and gates on the reports'
//! events/sec ratio, and the flow-smoke job compares `events=` between
//! `HPSOCK_NETMODEL=packet` and `flow` on the TCP workload.

use hpsock_experiments::bigtopo;
use hpsock_net::{configured_netmodel, TransportKind};
use hpsock_sim::shard::{clamp_shards, configured_shards};

fn main() {
    let mut transport = TransportKind::SocketVia;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--transport=tcp" => transport = TransportKind::KTcp,
            "--transport=socketvia" => transport = TransportKind::SocketVia,
            "--quick" => {} // read by quick_mode()
            other => {
                eprintln!("bigsim: unknown argument {other:?}");
                eprintln!("usage: bigsim [--quick] [--transport=tcp|socketvia]");
                std::process::exit(2);
            }
        }
    }
    let bytes = match transport {
        TransportKind::SocketVia => bigtopo::BYTES,
        _ => bigtopo::GATE_BYTES,
    };
    let msgs: u32 = if hpsock_experiments::quick_mode() {
        30
    } else {
        100
    };
    let shards = clamp_shards(configured_shards(), bigtopo::RACKS, "the big rack topology");
    let (end, digest, events) = bigtopo::run_big_custom(shards, msgs, transport, bytes);
    println!(
        "bigsim model={} transport={} shards={shards} msgs_per_conn={msgs} \
         events={events} digest={digest:016x} end_us={:.1}",
        configured_netmodel().label(),
        transport.label(),
        end.as_nanos() as f64 / 1e3
    );
}
