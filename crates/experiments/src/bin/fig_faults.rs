//! Regenerate the fault-injection tables: availability, recovery
//! counters and guarantee retention per transport (`--quick` shrinks the
//! workload; `HPSOCK_FAULTS` is not consulted — the experiment scopes its
//! own plans).

fn main() {
    let quick = hpsock_experiments::quick_mode();
    let tables = hpsock_experiments::fig_faults::run(quick);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
}
