//! Quantify the paper's stated future work: sockets over RDMA.

fn main() {
    let tables = hpsock_experiments::future::run();
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
}
