//! Regenerate Figure 9: response time of mixed query streams.

fn main() {
    let n = if hpsock_experiments::quick_mode() {
        5
    } else {
        10
    };
    let tables = hpsock_experiments::fig9::run(n);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig9", |dir| {
        hpsock_experiments::fig9::export_traces(dir, n);
    });
}
