//! Regenerate Figure 10: round-robin load-balancer reaction time.

fn main() {
    let tables = hpsock_experiments::fig10::run();
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig10", hpsock_experiments::fig10::export_traces);
}
