//! Regenerate Figure 4 (micro-benchmarks) and the Figure 2 crossover.

fn main() {
    let quick = hpsock_experiments::quick_mode();
    let (iters, total) = if quick { (4, 1 << 20) } else { (16, 1 << 22) };
    let tables = hpsock_experiments::fig4::run(iters, total);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig4", |dir| {
        hpsock_experiments::fig4::export_traces(dir, total);
    });
}
