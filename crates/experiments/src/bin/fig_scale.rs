//! Regenerate the fig_scale validation: flow-vs-packet agreement on the
//! fig4/fig7/fig9 headline series (asserted within the documented
//! tolerances), then the hierarchical cluster-size sweep only the fluid
//! model can afford. `--quick` / `HPSOCK_QUICK=1` shrinks iteration
//! counts; `HPSOCK_OVERSUB` sets the core oversubscription of the swept
//! topologies.

use hpsock_experiments::{emit, fig_scale, quick_mode, results_dir};

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    eprintln!("fig_scale: flow-vs-packet agreement (quick={quick}) ...");
    let rows = fig_scale::agreement_rows(quick);
    let agreement = fig_scale::agreement_table(&rows);
    eprintln!("fig_scale: cluster-size sweep ...");
    let scale = fig_scale::scale_table(quick);
    emit(&[agreement, scale], &dir);
    fig_scale::assert_agreement(&rows);
    println!("fig_scale: all series within tolerance");
}
