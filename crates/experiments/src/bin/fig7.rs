//! Regenerate Figure 7: partial-update latency under updates/sec guarantees.

use hpsock_experiments::fig7::{export_traces, run, Scale};

fn main() {
    let scale = if hpsock_experiments::quick_mode() {
        Scale {
            n_complete: 3,
            n_partial: 2,
        }
    } else {
        Scale::default()
    };
    let tables = run(scale);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig7", |dir| export_traces(dir, scale));
}
