//! Supplementary analyses: Figure 1's fetch amplification and the
//! partition-count trade-off surface behind Figure 9.

fn main() {
    let n = if hpsock_experiments::quick_mode() {
        3
    } else {
        6
    };
    let tables = hpsock_experiments::extra::run(n);
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
}
