//! Regenerate Figure 11: demand-driven execution on heterogeneous nodes.

fn main() {
    let tables = hpsock_experiments::fig11::run();
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
}
