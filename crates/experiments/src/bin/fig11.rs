//! Regenerate Figure 11: demand-driven execution on heterogeneous nodes.

fn main() {
    let tables = hpsock_experiments::fig11::run();
    hpsock_experiments::emit(&tables, hpsock_experiments::results_dir());
    hpsock_experiments::export_under_trace("fig11", hpsock_experiments::fig11::export_traces);
}
