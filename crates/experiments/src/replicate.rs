//! Multi-seed replication: derive independent per-replicate seeds from a
//! figure's base seed and aggregate per-point measurements into
//! mean / 95 % confidence-interval columns.
//!
//! Every sweep point runs a *batch* of `HPSOCK_SEEDS` replicates (default
//! 1). Replicate 0 uses the base seed itself, so single-seed output is
//! bit-identical to the historical figures; later replicates follow a
//! splitmix64 stream seeded at the base. Seeds depend only on the point's
//! base seed and the replicate index — never on worker count or
//! scheduling — so a batch's aggregate is reproducible under any
//! `HPSOCK_THREADS` (pinned by `tests/replication.rs`).

use hpsock_sim::Tally;

/// One splitmix64 step (Steele et al., "Fast splittable pseudorandom
/// number generators"): increment by the golden-ratio constant, then mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The replicate seeds for one figure: `[base, splitmix64¹(base),
/// splitmix64²(base), …]`. Keeping the base seed as replicate 0 makes
/// `HPSOCK_SEEDS=1` reproduce the single-seed figures exactly.
pub fn seed_batch(base: u64, n: usize) -> Vec<u64> {
    assert!(n >= 1, "a seed batch has at least one replicate");
    let mut state = base;
    (0..n)
        .map(|k| if k == 0 { base } else { splitmix64(&mut state) })
        .collect()
}

/// Parse an `HPSOCK_SEEDS` value: a positive integer, anything else is an
/// error (mirrors `HPSOCK_THREADS` — misconfiguration must not silently
/// fall back to a default).
pub fn parse_seed_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "HPSOCK_SEEDS must be >= 1, got 0 (unset it for the single-seed default)".to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "HPSOCK_SEEDS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Replicates per sweep point: `HPSOCK_SEEDS` if set (rejecting invalid
/// values loudly), otherwise 1.
pub fn seed_count() -> usize {
    match std::env::var("HPSOCK_SEEDS") {
        Ok(v) => parse_seed_count(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => 1,
    }
}

/// Aggregate of one value column across a point's seed batch. `None`
/// observations (transport dropouts) are skipped; a column where no seed
/// produced a value renders as the dash marker, like the single-seed
/// tables.
#[derive(Debug, Clone)]
pub struct Series {
    tally: Tally,
}

impl Series {
    /// Collect the per-seed observations of one point.
    pub fn collect(vals: impl IntoIterator<Item = Option<f64>>) -> Series {
        let mut tally = Tally::new();
        for v in vals.into_iter().flatten() {
            tally.add(v);
        }
        Series { tally }
    }

    /// Across-seed mean, `None` when every seed dropped out.
    pub fn mean(&self) -> Option<f64> {
        (self.tally.count() > 0).then(|| self.tally.mean())
    }

    /// 95 % confidence interval of the mean (Student-t for small batches;
    /// see [`Tally::ci95`]), `None` when every seed dropped out.
    pub fn ci95_bounds(&self) -> Option<(f64, f64)> {
        (self.tally.count() > 0).then(|| self.tally.ci95_bounds())
    }

    /// Number of seeds that produced a value.
    pub fn n(&self) -> u64 {
        self.tally.count()
    }
}

/// Append the header(s) of one value column: just `name` for single-seed
/// tables (bit-identical to the historical output), or
/// `name`,`name_ci95_lo`,`name_ci95_hi` when replicated — the bare column
/// then carries the across-seed mean.
pub fn value_headers(out: &mut Vec<String>, name: &str, replicated: bool) {
    out.push(name.to_string());
    if replicated {
        out.push(format!("{name}_ci95_lo"));
        out.push(format!("{name}_ci95_hi"));
    }
}

/// Append the cell(s) of one value column, matching [`value_headers`].
pub fn value_cells(out: &mut Vec<String>, s: &Series, decimals: usize, replicated: bool) {
    out.push(crate::table::fmt_opt(s.mean(), decimals));
    if replicated {
        let (lo, hi) = match s.ci95_bounds() {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };
        out.push(crate::table::fmt_opt(lo, decimals));
        out.push(crate::table::fmt_opt(hi, decimals));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_batch_starts_at_base_and_is_deterministic() {
        assert_eq!(seed_batch(0xF167, 1), vec![0xF167]);
        let b = seed_batch(0xF167, 4);
        assert_eq!(b[0], 0xF167, "replicate 0 reproduces the single-seed run");
        assert_eq!(b, seed_batch(0xF167, 4), "same base, same batch");
        assert_eq!(
            &b[..2],
            &seed_batch(0xF167, 2)[..],
            "a longer batch extends a shorter one"
        );
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "replicate seeds are distinct: {b:?}");
        assert_ne!(seed_batch(0xF168, 4)[1], b[1], "bases diverge");
    }

    #[test]
    fn parse_seed_count_accepts_positive_integers_only() {
        assert_eq!(parse_seed_count("1"), Ok(1));
        assert_eq!(parse_seed_count(" 12 "), Ok(12));
        assert!(parse_seed_count("0").is_err());
        assert!(parse_seed_count("-3").is_err());
        assert!(parse_seed_count("three").is_err());
        assert!(parse_seed_count("").is_err());
        assert!(parse_seed_count("2.5").is_err());
    }

    #[test]
    fn series_aggregates_and_skips_dropouts() {
        let s = Series::collect([Some(10.0), None, Some(14.0)]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.mean(), Some(12.0));
        let (lo, hi) = s.ci95_bounds().unwrap();
        // n = 2, s² = 8, se = 2, t(df=1) = 12.706.
        assert!((lo - (12.0 - 12.706 * 2.0)).abs() < 1e-9);
        assert!((hi - (12.0 + 12.706 * 2.0)).abs() < 1e-9);
        let empty = Series::collect([None, None]);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.ci95_bounds(), None);
    }

    #[test]
    fn cells_match_headers_in_both_modes() {
        let s = Series::collect([Some(1.0), Some(3.0)]);
        let (mut h1, mut c1) = (Vec::new(), Vec::new());
        value_headers(&mut h1, "TCP", false);
        value_cells(&mut c1, &s, 1, false);
        assert_eq!(h1, vec!["TCP"]);
        assert_eq!(c1, vec!["2.0"]);
        let (mut h3, mut c3) = (Vec::new(), Vec::new());
        value_headers(&mut h3, "TCP", true);
        value_cells(&mut c3, &s, 1, true);
        assert_eq!(h3, vec!["TCP", "TCP_ci95_lo", "TCP_ci95_hi"]);
        assert_eq!(c3.len(), 3);
        assert_eq!(c3[0], "2.0");
        let dropout = Series::collect([None]);
        let mut cells = Vec::new();
        value_cells(&mut cells, &dropout, 1, true);
        assert_eq!(cells, vec!["-", "-", "-"], "dropouts stay explicit dashes");
    }
}
