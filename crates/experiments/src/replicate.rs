//! Multi-seed replication: derive independent per-replicate seeds from a
//! figure's base seed and aggregate per-point measurements into
//! mean / 95 % confidence-interval columns.
//!
//! Every sweep point runs a *batch* of `HPSOCK_SEEDS` replicates (default
//! 1). Replicate 0 uses the base seed itself, so single-seed output is
//! bit-identical to the historical figures; later replicates follow a
//! splitmix64 stream seeded at the base. Seeds depend only on the point's
//! base seed and the replicate index — never on worker count or
//! scheduling — so a batch's aggregate is reproducible under any
//! `HPSOCK_THREADS` (pinned by `tests/replication.rs`).

use hpsock_sim::stats::Histogram;
use hpsock_sim::Tally;

/// One splitmix64 step (Steele et al., "Fast splittable pseudorandom
/// number generators"): increment by the golden-ratio constant, then mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The replicate seeds for one figure: `[base, splitmix64¹(base),
/// splitmix64²(base), …]`. Keeping the base seed as replicate 0 makes
/// `HPSOCK_SEEDS=1` reproduce the single-seed figures exactly.
pub fn seed_batch(base: u64, n: usize) -> Vec<u64> {
    assert!(n >= 1, "a seed batch has at least one replicate");
    let mut state = base;
    (0..n)
        .map(|k| if k == 0 { base } else { splitmix64(&mut state) })
        .collect()
}

/// Parse an `HPSOCK_SEEDS` value: a positive integer, anything else is an
/// error (mirrors `HPSOCK_THREADS` — misconfiguration must not silently
/// fall back to a default).
pub fn parse_seed_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "HPSOCK_SEEDS must be >= 1, got 0 (unset it for the single-seed default)".to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "HPSOCK_SEEDS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Replicates per sweep point: `HPSOCK_SEEDS` if set (rejecting invalid
/// values loudly), otherwise 1.
pub fn seed_count() -> usize {
    match std::env::var("HPSOCK_SEEDS") {
        Ok(v) => parse_seed_count(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => 1,
    }
}

/// Parse an `HPSOCK_TAILS` value: strictly `0` (off) or `1` (on),
/// anything else is an error naming the variable — the `HPSOCK_SHARDS`
/// convention.
pub fn parse_tail_flag(raw: &str) -> Result<bool, String> {
    match raw.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!(
            "HPSOCK_TAILS must be 0 or 1, got {raw:?} (1 adds p50/p99/p999 columns)"
        )),
    }
}

thread_local! {
    /// Per-thread override consulted by [`tails_enabled`] before the
    /// `HPSOCK_TAILS` environment variable (see [`with_tails`]).
    static TAILS_OVERRIDE: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with [`tails_enabled`] returning `on` on this thread,
/// regardless of the `HPSOCK_TAILS` environment variable; the previous
/// override is restored afterwards, including on unwind. Tests toggle the
/// tail columns this way — `std::env::set_var` is undefined behaviour on
/// glibc while other threads may call `getenv`.
pub fn with_tails<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TAILS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TAILS_OVERRIDE.with(|c| c.replace(Some(on))));
    f()
}

/// Whether the figure tables should add `p50`/`p99`/`p999` tail columns:
/// the [`with_tails`] override if scoped, else `HPSOCK_TAILS` (default
/// off, keeping the base tables byte-identical to the historical output).
pub fn tails_enabled() -> bool {
    if let Some(on) = TAILS_OVERRIDE.with(std::cell::Cell::get) {
        return on;
    }
    match std::env::var("HPSOCK_TAILS") {
        Ok(v) => parse_tail_flag(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => false,
    }
}

/// Aggregate of one value column across a point's seed batch. `None`
/// observations (transport dropouts) are skipped; a column where no seed
/// produced a value renders as the dash marker, like the single-seed
/// tables.
#[derive(Debug, Clone)]
pub struct Series {
    tally: Tally,
    /// The raw observations, kept for the tail-quantile columns (seed
    /// batches are small, so this costs a few floats per cell).
    samples: Vec<f64>,
}

impl Series {
    /// Collect the per-seed observations of one point.
    pub fn collect(vals: impl IntoIterator<Item = Option<f64>>) -> Series {
        let mut tally = Tally::new();
        let mut samples = Vec::new();
        for v in vals.into_iter().flatten() {
            tally.add(v);
            samples.push(v);
        }
        Series { tally, samples }
    }

    /// Across-seed mean, `None` when every seed dropped out.
    pub fn mean(&self) -> Option<f64> {
        (self.tally.count() > 0).then(|| self.tally.mean())
    }

    /// 95 % confidence interval of the mean (Student-t for small batches;
    /// see [`Tally::ci95`]), `None` when every seed dropped out.
    pub fn ci95_bounds(&self) -> Option<(f64, f64)> {
        (self.tally.count() > 0).then(|| self.tally.ci95_bounds())
    }

    /// Number of seeds that produced a value.
    pub fn n(&self) -> u64 {
        self.tally.count()
    }
}

/// Append the header(s) of one value column: just `name` for single-seed
/// tables (bit-identical to the historical output), or
/// `name`,`name_ci95_lo`,`name_ci95_hi` when replicated — the bare column
/// then carries the across-seed mean.
pub fn value_headers(out: &mut Vec<String>, name: &str, replicated: bool) {
    out.push(name.to_string());
    if replicated {
        out.push(format!("{name}_ci95_lo"));
        out.push(format!("{name}_ci95_hi"));
    }
}

/// Append the cell(s) of one value column, matching [`value_headers`].
pub fn value_cells(out: &mut Vec<String>, s: &Series, decimals: usize, replicated: bool) {
    out.push(crate::table::fmt_opt(s.mean(), decimals));
    if replicated {
        let (lo, hi) = match s.ci95_bounds() {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };
        out.push(crate::table::fmt_opt(lo, decimals));
        out.push(crate::table::fmt_opt(hi, decimals));
    }
}

/// Append the tail-quantile header(s) of one value column:
/// `name_p50`,`name_p99`,`name_p999` when `tails` is on (see
/// [`tails_enabled`]), nothing otherwise. Separate from [`value_headers`]
/// so the base and ci95 layouts stay byte-identical with tails off.
pub fn tail_headers(out: &mut Vec<String>, name: &str, tails: bool) {
    if tails {
        out.push(format!("{name}_p50"));
        out.push(format!("{name}_p99"));
        out.push(format!("{name}_p999"));
    }
}

/// Append the tail-quantile cell(s) of one value column, matching
/// [`tail_headers`]: log-spaced-histogram quantiles over the raw seed
/// observations (see [`Histogram::summarize`]), dashes when every seed
/// dropped out.
pub fn tail_cells(out: &mut Vec<String>, s: &Series, decimals: usize, tails: bool) {
    if tails {
        let h = Histogram::summarize(&s.samples);
        for q in [0.5, 0.99, 0.999] {
            out.push(crate::table::fmt_opt(
                (s.n() > 0).then(|| h.quantile(q)),
                decimals,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_batch_starts_at_base_and_is_deterministic() {
        assert_eq!(seed_batch(0xF167, 1), vec![0xF167]);
        let b = seed_batch(0xF167, 4);
        assert_eq!(b[0], 0xF167, "replicate 0 reproduces the single-seed run");
        assert_eq!(b, seed_batch(0xF167, 4), "same base, same batch");
        assert_eq!(
            &b[..2],
            &seed_batch(0xF167, 2)[..],
            "a longer batch extends a shorter one"
        );
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "replicate seeds are distinct: {b:?}");
        assert_ne!(seed_batch(0xF168, 4)[1], b[1], "bases diverge");
    }

    #[test]
    fn parse_seed_count_accepts_positive_integers_only() {
        assert_eq!(parse_seed_count("1"), Ok(1));
        assert_eq!(parse_seed_count(" 12 "), Ok(12));
        assert!(parse_seed_count("0").is_err());
        assert!(parse_seed_count("-3").is_err());
        assert!(parse_seed_count("three").is_err());
        assert!(parse_seed_count("").is_err());
        assert!(parse_seed_count("2.5").is_err());
    }

    #[test]
    fn series_aggregates_and_skips_dropouts() {
        let s = Series::collect([Some(10.0), None, Some(14.0)]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.mean(), Some(12.0));
        let (lo, hi) = s.ci95_bounds().unwrap();
        // n = 2, s² = 8, se = 2, t(df=1) = 12.706.
        assert!((lo - (12.0 - 12.706 * 2.0)).abs() < 1e-9);
        assert!((hi - (12.0 + 12.706 * 2.0)).abs() < 1e-9);
        let empty = Series::collect([None, None]);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.ci95_bounds(), None);
    }

    #[test]
    fn cells_match_headers_in_both_modes() {
        let s = Series::collect([Some(1.0), Some(3.0)]);
        let (mut h1, mut c1) = (Vec::new(), Vec::new());
        value_headers(&mut h1, "TCP", false);
        value_cells(&mut c1, &s, 1, false);
        assert_eq!(h1, vec!["TCP"]);
        assert_eq!(c1, vec!["2.0"]);
        let (mut h3, mut c3) = (Vec::new(), Vec::new());
        value_headers(&mut h3, "TCP", true);
        value_cells(&mut c3, &s, 1, true);
        assert_eq!(h3, vec!["TCP", "TCP_ci95_lo", "TCP_ci95_hi"]);
        assert_eq!(c3.len(), 3);
        assert_eq!(c3[0], "2.0");
        let dropout = Series::collect([None]);
        let mut cells = Vec::new();
        value_cells(&mut cells, &dropout, 1, true);
        assert_eq!(cells, vec!["-", "-", "-"], "dropouts stay explicit dashes");
    }

    #[test]
    fn parse_tail_flag_is_strict() {
        assert_eq!(parse_tail_flag("0"), Ok(false));
        assert_eq!(parse_tail_flag("1"), Ok(true));
        assert_eq!(parse_tail_flag(" 1 "), Ok(true), "whitespace trimmed");
        for bad in ["2", "true", "yes", "", "on", "-1"] {
            let err = parse_tail_flag(bad).unwrap_err();
            assert!(err.contains("HPSOCK_TAILS"), "names the variable: {err}");
        }
    }

    #[test]
    fn with_tails_overrides_and_restores() {
        assert!(!tails_enabled(), "default is off");
        let inner = with_tails(true, || {
            assert!(tails_enabled());
            with_tails(false, tails_enabled)
        });
        assert!(!inner, "nested override wins inside its scope");
        assert!(!tails_enabled(), "override restored after the scope");
    }

    #[test]
    fn tail_cells_match_tail_headers() {
        let s = Series::collect((1..=100).map(|v| Some(v as f64)));
        let (mut h, mut c) = (Vec::new(), Vec::new());
        tail_headers(&mut h, "TCP", false);
        tail_cells(&mut c, &s, 1, false);
        assert!(h.is_empty() && c.is_empty(), "tails off adds nothing");
        tail_headers(&mut h, "TCP", true);
        tail_cells(&mut c, &s, 1, true);
        assert_eq!(h, vec!["TCP_p50", "TCP_p99", "TCP_p999"]);
        assert_eq!(c.len(), 3);
        let p50: f64 = c[0].parse().unwrap();
        let p99: f64 = c[1].parse().unwrap();
        let p999: f64 = c[2].parse().unwrap();
        assert!((45.0..=56.0).contains(&p50), "p50 near the median: {p50}");
        assert!(p50 <= p99 && p99 <= p999, "quantiles are monotone");
        assert!(p999 <= 100.0, "p999 capped at the observed max: {p999}");
    }

    #[test]
    fn tail_cells_render_dropouts_as_dashes() {
        let dropout = Series::collect([None, None]);
        let mut cells = Vec::new();
        tail_cells(&mut cells, &dropout, 1, true);
        assert_eq!(cells, vec!["-", "-", "-"]);
    }
}
