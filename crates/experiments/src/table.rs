//! Plain-text result tables and CSV output for the experiment harnesses.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A printable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title line (usually the paper figure this regenerates).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Empty table from pre-built headers — the replicated figure tables
    /// assemble their column set dynamically (CI columns per series).
    pub fn from_headers(title: impl Into<String>, headers: Vec<String>) -> Table {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cols);
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:>w$}", c, w = widths[i]));
            }
            writeln!(f, "  {}", parts.join("  "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with a fixed number of decimals, or a dash for `None` —
/// the "transport drops out" marker in the guarantee tables.
pub fn fmt_opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{:.*}", decimals, x),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.add_row(vec!["1".into(), "10.5".into()]);
        t.add_row(vec!["200".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("200"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"q\"\"z\"");
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("demo", &["a"]);
        t.add_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("hpsock_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fmt_opt_dash() {
        assert_eq!(fmt_opt(None, 1), "-");
        assert_eq!(fmt_opt(Some(1.25), 1), "1.2");
    }
}
