//! `HPSOCK_SHARDS` plumbing for the figure experiments: a topology-aware
//! partition of the Figure 5 visualization pipeline onto the sharded
//! kernel (`hpsock_sim::shard`).
//!
//! The pipeline has two kinds of inter-process edges:
//!
//! * **connection-borne** stage-to-stage streams (repository → clip →
//!   subsample → viz and the reverse demand channels), which carry
//!   positive network lookahead and may cross shards freely, and
//! * **zero-delay control sends** — the query driver starting a unit of
//!   work on the repository copies, and the viz logic notifying the
//!   driver of completion — which must stay *within* a shard.
//!
//! So the partition pins the driver, the `c` repository nodes and the viz
//! node on shard 0, and splits the `2c` stage nodes (clip + subsample)
//! contiguously over the remaining shards. With the paper's `c = 3`
//! copies that supports up to `1 + 2c = 7` useful shards; larger requests
//! are clamped with a warning.
//!
//! The kernel derives *ragged per-pair windows* from the plan's per-link
//! lookahead matrix (`W(d) = min_s next(s) + reach(s, d)`, see
//! `hpsock_sim::shard`), so asymmetric links — the ~600 ns data paths
//! versus the 9.5 µs demand/ack channels here — each widen exactly the
//! windows they bound instead of collapsing the whole fleet to the
//! tightest link.

use hpsock_net::Cluster;
use hpsock_sim::shard::{clamp_shards, configured_shards};
use hpsock_sim::{ProcessId, ShardPlan, Sim};

/// Node-to-shard assignment for a [`hpsock_vizserver::VizPipeline`]
/// cluster of `copies` stage copies (`3 * copies + 1` nodes): repository
/// nodes and the viz node on shard 0, stage nodes contiguous over shards
/// `1..shards`. Returns `None` when `shards <= 1` (sequential kernel).
pub fn pipeline_node_map(copies: usize, shards: usize) -> Option<Vec<usize>> {
    let shards = clamp_shards(
        shards,
        1 + 2 * copies,
        &format!("the {copies}-copy pipeline partition"),
    );
    if shards <= 1 {
        return None;
    }
    let mut map = vec![0usize; 3 * copies + 1];
    let stage_nodes = 2 * copies;
    let groups = shards - 1;
    for i in 0..stage_nodes {
        // Contiguous near-equal blocks over shards 1..shards.
        map[copies + i] = 1 + i * groups / stage_nodes;
    }
    Some(map)
}

/// Build the pipeline [`ShardPlan`] for `shards` workers, or `None` when
/// one shard (or fewer nodes than requested) makes the sequential kernel
/// the right choice. Call after `VizPipeline::build` so every connection
/// is registered.
pub fn pipeline_plan(
    cluster: &Cluster,
    driver: ProcessId,
    copies: usize,
    shards: usize,
) -> Option<ShardPlan> {
    let map = pipeline_node_map(copies, shards)?;
    let shards = map.iter().max().copied().unwrap_or(0) + 1;
    Some(cluster.shard_plan(shards, map, vec![(driver, 0)]))
}

/// Install the `HPSOCK_SHARDS`-selected pipeline partition on `sim`; a
/// no-op when the variable is unset or `1`.
pub fn apply_pipeline_plan(sim: &mut Sim, cluster: &Cluster, driver: ProcessId, copies: usize) {
    if let Some(plan) = pipeline_plan(cluster, driver, copies, configured_shards()) {
        sim.set_shard_plan(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_requests_build_no_plan() {
        assert_eq!(pipeline_node_map(3, 0), None);
        assert_eq!(pipeline_node_map(3, 1), None);
    }

    #[test]
    fn two_shards_keep_control_edges_on_shard_zero() {
        let map = pipeline_node_map(3, 2).expect("plan at 2 shards");
        // repo nodes 0..2 and viz node 9 co-locate with the driver pin.
        assert_eq!(map, vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn stage_nodes_split_contiguously_and_evenly() {
        let map = pipeline_node_map(3, 4).expect("plan at 4 shards");
        assert_eq!(map, vec![0, 0, 0, 1, 1, 2, 2, 3, 3, 0]);
    }

    #[test]
    fn oversized_requests_clamp_to_the_stage_count() {
        // 6 stage nodes support at most 7 shards; 64 clamps down.
        let map = pipeline_node_map(3, 64).expect("plan at clamp");
        assert_eq!(map, vec![0, 0, 0, 1, 2, 3, 4, 5, 6, 0]);
        assert_eq!(map.iter().max(), Some(&6));
    }
}
