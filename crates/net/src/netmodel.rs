//! Network-model selection: per-segment packet simulation (the default)
//! or the flow-level fluid fast path.
//!
//! The model is chosen per cluster build, from the `HPSOCK_NETMODEL`
//! environment variable (`packet` | `flow`) or a scoped test override
//! ([`with_netmodel`]), following the same strict-parse and
//! thread-local-override conventions as `HPSOCK_SHARDS` and
//! `HPSOCK_FAULTS`: invalid values abort with a message naming the
//! variable, and tests never call `set_var` (undefined behaviour on glibc
//! while other threads read the environment).

/// Which network engine a [`crate::cluster::Cluster`] simulates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetModel {
    /// Per-segment discrete-event simulation: every frame walks the host
    /// engine, NIC/wire, switch and receive engine as individual events.
    /// Exact per the calibrated stage costs; cost grows with segments.
    #[default]
    Packet,
    /// Flow-level fluid simulation: each in-flight message is a flow over
    /// capacitated links receiving a max-min fair bandwidth share; only
    /// flow arrivals and departures are events. O(flows) work per state
    /// change regardless of message size. See `DESIGN.md` §13 for the
    /// semantics and the documented tolerance vs the packet model.
    Flow,
}

impl NetModel {
    /// Short label used in printed tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            NetModel::Packet => "packet",
            NetModel::Flow => "flow",
        }
    }
}

/// Strictly parse a network-model name. Anything but `packet` or `flow`
/// is a hard error naming the variable, never silently defaulted.
pub fn parse_netmodel(raw: &str) -> Result<NetModel, String> {
    match raw.trim() {
        "packet" => Ok(NetModel::Packet),
        "flow" => Ok(NetModel::Flow),
        _ => Err(format!(
            "HPSOCK_NETMODEL must be packet or flow, got {raw:?}"
        )),
    }
}

thread_local! {
    /// Per-thread override consulted by [`configured_netmodel`] before the
    /// `HPSOCK_NETMODEL` environment variable (see [`with_netmodel`]).
    static NETMODEL_OVERRIDE: std::cell::Cell<Option<NetModel>> =
        const { std::cell::Cell::new(None) };
}

/// The network-model override active on this thread, if any. Thread pools
/// that fan simulation work out to worker threads (the experiment sweeps)
/// capture this on the submitting thread and re-install it in each worker
/// via [`with_netmodel`], so an override behaves like a process-wide
/// setting for the work it scopes.
pub fn netmodel_override() -> Option<NetModel> {
    NETMODEL_OVERRIDE.with(std::cell::Cell::get)
}

/// Run `f` with [`configured_netmodel`] returning `model` on this thread,
/// regardless of the `HPSOCK_NETMODEL` environment variable; the previous
/// override (if any) is restored afterwards, including on unwind.
pub fn with_netmodel<T>(model: NetModel, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<NetModel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            NETMODEL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(NETMODEL_OVERRIDE.with(|c| c.replace(Some(model))));
    f()
}

/// The network model requested via [`with_netmodel`] or, absent an
/// override, the `HPSOCK_NETMODEL` environment variable (default
/// [`NetModel::Packet`]). Invalid values abort with a clear message
/// rather than silently falling back to the packet engine.
pub fn configured_netmodel() -> NetModel {
    if let Some(m) = netmodel_override() {
        return m;
    }
    match std::env::var("HPSOCK_NETMODEL") {
        Ok(raw) => parse_netmodel(&raw).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => NetModel::Packet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_strict() {
        assert_eq!(parse_netmodel("packet"), Ok(NetModel::Packet));
        assert_eq!(parse_netmodel(" flow "), Ok(NetModel::Flow));
        for bad in ["", "fluid", "Flow", "packet,flow", "1"] {
            let err = parse_netmodel(bad).unwrap_err();
            assert!(
                err.contains("HPSOCK_NETMODEL"),
                "error must name the var: {err}"
            );
        }
    }

    #[test]
    fn override_scopes_and_restores() {
        assert_eq!(netmodel_override(), None);
        let got = with_netmodel(NetModel::Flow, || {
            assert_eq!(configured_netmodel(), NetModel::Flow);
            with_netmodel(NetModel::Packet, configured_netmodel)
        });
        assert_eq!(got, NetModel::Packet);
        assert_eq!(netmodel_override(), None);
    }

    #[test]
    fn labels() {
        assert_eq!(NetModel::Packet.label(), "packet");
        assert_eq!(NetModel::Flow.label(), "flow");
    }
}
