//! Flow-level fluid network model: the `HPSOCK_NETMODEL=flow` fast path.
//!
//! Instead of walking every wire segment through the per-node stage
//! pipeline, each in-flight application message becomes one *flow* over a
//! path of capacitated links, and the only events are flow arrivals and
//! departures. Active flows share link capacity max-min fairly; on every
//! arrival or departure the allocator recomputes bottleneck fair shares
//! for the affected connected component only and reschedules the changed
//! flows' completion events — O(flows) work per state change regardless
//! of message size.
//!
//! ## Calibration
//!
//! The link graph reuses the packet engine's calibrated stage costs
//! ([`PathCosts`]): every node contributes three unit-capacity stage links
//! (host send engine, NIC/wire, host receive engine), and a flow of `s`
//! payload bytes places weight `stage_occupancy(s) / s` ns-per-byte on
//! each ([`PathCosts::stage_occupancies`]). A lone flow therefore drains
//! at `s / max(stage occupancies)` — exactly the packet model's
//! steady-state bandwidth for that message size — and concurrent flows
//! through one host contend for its engines just as FCFS frames did, in
//! fluid approximation. Under a hierarchical topology
//! ([`Topology::Racks`]), inter-rack flows additionally cross their
//! racks' oversubscribed uplink/downlink, whose capacity caps aggregate
//! cross-rack bandwidth.
//!
//! Unloaded latency is preserved exactly: a message is handed to the
//! fluid core after the switch+propagation hop, drains for its bottleneck
//! occupancy, and is delivered after a residual delay chosen so the
//! end-to-end time equals [`PathCosts::oneway_latency`]. What the fluid
//! model gives up is per-frame flow control (credits/windows) and FCFS
//! queueing order — see `DESIGN.md` §13 for the documented tolerance and
//! when *not* to use it.
//!
//! ## Determinism and sharding
//!
//! All flow state lives in a single [`FluidCore`] process pinned to
//! shard 0, so state changes happen in canonical event order and digests
//! are shard-invariant. Every edge touching the core has positive delay
//! (`switch+prop` inbound, the minimum delivery residual outbound, the
//! fault-detection latency for failure notifications), preserving the
//! engine's no-zero-delay-across-nodes property that conservative
//! sharding needs.

use crate::cluster::Topology;
use crate::engine::{ConnId, Registry, Route, StreamErrorKind};
use crate::fault::{ConnFaults, MsgFate};
use crate::params::PathCosts;
use hpsock_sim::{Ctx, Dur, Message, Process, ProcessId, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// cLAN wire drain rate in payload bytes per nanosecond (the 795 Mbps
/// VIA peak from [`crate::params`]: 1 byte per 10.06 ns). Rack uplink
/// capacity is expressed in multiples of this per-node rate.
pub const NODE_WIRE_BYTES_PER_NS: f64 = 1.0 / 10.06;

/// Weighted max-min fair-share allocation by progressive filling.
///
/// `caps[l]` is the capacity of link `l`; `flows[f]` lists `(link,
/// weight)` pairs — flow `f` at rate `r` consumes `r * weight` of each
/// link on its path (weights are ns-per-byte stage demands, so stage
/// links have capacity 1.0). Returns the max-min fair rate per flow: the
/// classic water-filling loop, freezing the flows that cross each
/// successive bottleneck link at its fair share.
///
/// Every weight must be positive and every flow must cross at least one
/// link; the result then saturates at least one link on every flow's
/// path (Pareto optimality) and never exceeds any capacity.
pub fn max_min_rates(caps: &[f64], flows: &[Vec<(usize, f64)>]) -> Vec<f64> {
    for (f, path) in flows.iter().enumerate() {
        assert!(!path.is_empty(), "flow {f} crosses no links");
        for &(l, w) in path {
            assert!(l < caps.len(), "flow {f} crosses unknown link {l}");
            assert!(w > 0.0, "flow {f} has non-positive weight {w} on link {l}");
        }
    }
    let mut rate = vec![0.0; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut cap_left = caps.to_vec();
    loop {
        // Fair share each link could still grant its unfrozen flows.
        let mut wsum = vec![0.0; caps.len()];
        for (f, path) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            for &(l, w) in path {
                wsum[l] += w;
            }
        }
        let fair: Vec<f64> = (0..caps.len())
            .map(|l| {
                if wsum[l] > 0.0 {
                    cap_left[l].max(0.0) / wsum[l]
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let bottleneck = fair.iter().copied().fold(f64::INFINITY, f64::min);
        if !bottleneck.is_finite() {
            break; // no unfrozen flows left
        }
        // Freeze every flow crossing a bottleneck link at the fair share.
        let mut froze_any = false;
        for (f, path) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            if path
                .iter()
                .any(|&(l, _)| fair[l] <= bottleneck * (1.0 + 1e-12))
            {
                rate[f] = bottleneck;
                frozen[f] = true;
                froze_any = true;
                for &(l, w) in path {
                    cap_left[l] -= bottleneck * w;
                }
            }
        }
        if !froze_any {
            break; // numerical stalemate: everyone left is unconstrained
        }
    }
    rate
}

/// Events of the fluid engine. `Arrive`/`Complete` are handled by the
/// [`FluidCore`]; `Deliver`/`Failed` by the destination/source node cores.
pub(crate) enum FluidEv {
    /// A submitted message reached the fluid core (after switch+prop).
    Arrive {
        conn: ConnId,
        msg: u64,
        bytes: u64,
        sent_at: SimTime,
        payload: Message,
    },
    /// Epoch-tagged flow-completion self-event. The kernel has no event
    /// cancellation, so a reallocation bumps the flow's epoch and lets
    /// the superseded completion fall through as a stale no-op.
    Complete { conn: ConnId, epoch: u64 },
    /// A completed flow's payload arriving at the receive-side node core.
    Deliver {
        conn: ConnId,
        msg: u64,
        bytes: u64,
        sent_at: SimTime,
        payload: Message,
    },
    /// A fault verdict surfacing at the send-side node core after the
    /// loss-detection latency; forwarded to the sender as a StreamError.
    Failed {
        conn: ConnId,
        msg: u64,
        bytes: u64,
        kind: StreamErrorKind,
    },
}

/// The switch+propagation hop a message pays before reaching the fluid
/// core — the positive cross-shard lookahead of every `tx core → fluid`
/// edge.
pub(crate) fn tx_hop(costs: &PathCosts) -> Dur {
    costs.switch_latency + costs.prop_delay
}

/// Lower bound of the fluid `core → rx core` delivery residual for a
/// connection, used both as the shard-plan lookahead and as a runtime
/// clamp (the size-dependent residual is not provably monotone). Always
/// at least 1 ns so the sharded kernel keeps a positive edge.
pub(crate) fn min_delivery(costs: &PathCosts) -> Dur {
    Dur::nanos(delivery_residual_ns(costs, 1).max(1))
}

/// `oneway_latency(s) − bottleneck_occupancy(s) − tx_hop`: what remains
/// of the unloaded one-way latency after the fluid transfer term, so an
/// isolated message completes at exactly the packet model's closed form.
fn delivery_residual_ns(costs: &PathCosts, bytes: u64) -> u64 {
    costs
        .oneway_latency(bytes)
        .as_nanos()
        .saturating_sub(costs.bottleneck_occupancy(bytes).as_nanos())
        .saturating_sub(tx_hop(costs).as_nanos())
}

/// A message queued behind the connection's active flow (per-connection
/// FIFO, mirroring the packet engine's in-order delivery guarantee).
struct QueuedMsg {
    msg: u64,
    bytes: u64,
    sent_at: SimTime,
    payload: Message,
    /// Extra delivery latency from triggered delay filters.
    extra: Dur,
}

/// The currently draining flow of one connection.
struct ActiveFlow {
    msg: u64,
    bytes: u64,
    sent_at: SimTime,
    payload: Option<Message>,
    extra: Dur,
    /// Payload bytes left to drain as of `updated` (lazily advanced:
    /// between rate changes the residual is a pure function of time).
    remaining: f64,
    /// Current fair-share rate in bytes/ns (0 until first allocation).
    rate: f64,
    /// Virtual time `remaining` was last brought current.
    updated: SimTime,
    /// Tag of the completion event currently in flight for this flow.
    epoch: u64,
    /// `(global link id, weight)` pairs — the allocator's view.
    path: Vec<(usize, f64)>,
}

/// Per-connection fluid state.
struct FluidConn {
    costs: Arc<PathCosts>,
    /// Node core owning the send half (target of `Failed`).
    tx_core: ProcessId,
    /// Node core owning the receive half (target of `Deliver`).
    rx_core: ProcessId,
    /// `[host_tx, nic, host_rx]` global link ids.
    stage_links: [usize; 3],
    /// `(uplink, downlink)` of the source/destination racks for
    /// inter-rack connections under a hierarchical topology.
    fabric: Option<(usize, usize)>,
    min_drx: Dur,
    faults: Option<ConnFaults>,
    cut_at: Option<SimTime>,
    detect: Dur,
    queue: VecDeque<QueuedMsg>,
    active: Option<ActiveFlow>,
    /// Monotone per-connection epoch counter; never reset, so stale
    /// completions of earlier flows can never collide with a later flow.
    epochs: u64,
}

/// The single process owning all flow state (see module docs). Spawned by
/// the net switch when the cluster was built under [`super::NetModel::Flow`];
/// shard plans pin it to shard 0.
pub(crate) struct FluidCore {
    registry: Arc<Mutex<Registry>>,
    route: Arc<OnceLock<Route>>,
    conns: Vec<FluidConn>,
    /// Link capacities: stage links at 1.0 (weights are ns/byte), fabric
    /// links in bytes/ns.
    caps: Vec<f64>,
    /// Connections with an active flow, kept sorted for deterministic
    /// iteration.
    active: Vec<usize>,
    /// Active connections per link (same sorted-vec discipline), indexed
    /// by global link id — the sharing graph the component search walks,
    /// maintained incrementally so a state change never scans flows that
    /// share nothing with it.
    link_users: Vec<Vec<usize>>,
}

impl FluidCore {
    pub(crate) fn new(registry: Arc<Mutex<Registry>>, route: Arc<OnceLock<Route>>) -> FluidCore {
        FluidCore {
            registry,
            route,
            conns: Vec::new(),
            caps: Vec::new(),
            active: Vec::new(),
            link_users: Vec::new(),
        }
    }

    /// Bring one flow's residual current: between rate changes it drains
    /// linearly, so a single `rate · dt` step at read time replaces the
    /// old advance-everything-at-every-event sweep.
    fn advance_flow(f: &mut ActiveFlow, now: SimTime) {
        let dt = now.since(f.updated).as_nanos() as f64;
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.updated = now;
    }

    /// The allocator's path for a flow of `bytes` on `conn`: stage links
    /// weighted by their per-byte occupancy for this message size, plus
    /// the rack fabric weighted by wire bytes per payload byte.
    fn flow_path(&self, conn: usize, bytes: u64) -> Vec<(usize, f64)> {
        let c = &self.conns[conn];
        let s = bytes.max(1) as f64;
        let occ = c.costs.stage_occupancies(bytes);
        let mut path = vec![
            (c.stage_links[0], occ[0] / s),
            (c.stage_links[1], occ[1] / s),
            (c.stage_links[2], occ[2] / s),
        ];
        if let Some((up, down)) = c.fabric {
            let frames = c.costs.frames_for(bytes) as u64;
            let wire = (bytes + frames * c.costs.frame_overhead as u64) as f64 / s;
            path.push((up, wire));
            path.push((down, wire));
        }
        path
    }

    /// Delivery residual for a completed flow, clamped to the connection's
    /// shard-plan lower bound.
    fn delivery_delay(&self, conn: usize, bytes: u64) -> Dur {
        let c = &self.conns[conn];
        Dur::nanos(delivery_residual_ns(&c.costs, bytes).max(c.min_drx.as_nanos()))
    }

    fn fail(&self, ctx: &mut Ctx<'_>, conn: usize, msg: u64, bytes: u64, kind: StreamErrorKind) {
        let c = &self.conns[conn];
        ctx.send_in(
            c.detect,
            c.tx_core,
            Message::new(FluidEv::Failed {
                conn: ConnId(conn),
                msg,
                bytes,
                kind,
            }),
        );
    }

    /// Promote the next queued message (if any) to the connection's active
    /// flow; messages landing after the endpoint crash fail over instead.
    /// Returns true when a flow was started (the caller reallocates).
    fn start_next(&mut self, ctx: &mut Ctx<'_>, conn: usize) -> bool {
        loop {
            let c = &mut self.conns[conn];
            debug_assert!(c.active.is_none(), "starting over an active flow");
            let Some(q) = c.queue.pop_front() else {
                return false;
            };
            if c.cut_at.is_some_and(|t| ctx.now() >= t) {
                let (msg, bytes) = (q.msg, q.bytes);
                self.fail(ctx, conn, msg, bytes, StreamErrorKind::PeerDead);
                continue;
            }
            let path = self.flow_path(conn, q.bytes);
            for &(l, _) in &path {
                let lu = &mut self.link_users[l];
                if let Err(i) = lu.binary_search(&conn) {
                    lu.insert(i, conn);
                }
            }
            let c = &mut self.conns[conn];
            c.epochs += 1;
            c.active = Some(ActiveFlow {
                msg: q.msg,
                bytes: q.bytes,
                sent_at: q.sent_at,
                payload: Some(q.payload),
                extra: q.extra,
                remaining: q.bytes.max(1) as f64,
                rate: 0.0,
                epoch: c.epochs,
                updated: ctx.now(),
                path,
            });
            if let Err(i) = self.active.binary_search(&conn) {
                self.active.insert(i, conn);
            }
            return true;
        }
    }

    /// Recompute max-min fair shares for the connected component of the
    /// flow–link sharing graph around `seed_conn`, and reschedule the
    /// completion of every flow whose rate changed. Flows outside the
    /// component share no link (transitively) with the changed connection,
    /// so their rates — and their already-scheduled completions — stand.
    fn reallocate(&mut self, ctx: &mut Ctx<'_>, seed_conn: usize) {
        if self.active.is_empty() {
            return;
        }
        let mut pending: Vec<usize> = self.conns[seed_conn].stage_links.to_vec();
        if let Some((up, down)) = self.conns[seed_conn].fabric {
            pending.push(up);
            pending.push(down);
        }
        let mut seen_links: HashSet<usize> = pending.iter().copied().collect();
        let mut in_comp: HashSet<usize> = HashSet::new();
        while let Some(l) = pending.pop() {
            for &ci in &self.link_users[l] {
                if in_comp.insert(ci) {
                    for &(l2, _) in &self.conns[ci].active.as_ref().expect("in sync").path {
                        if seen_links.insert(l2) {
                            pending.push(l2);
                        }
                    }
                }
            }
        }
        if in_comp.is_empty() {
            return;
        }
        // Sort component and links: float accumulation order must be a
        // pure function of the component, not of hash iteration order.
        let mut comp: Vec<usize> = in_comp.into_iter().collect();
        comp.sort_unstable();
        let mut links: Vec<usize> = seen_links.into_iter().collect();
        links.sort_unstable();
        let lidx: HashMap<usize, usize> = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let caps: Vec<f64> = links.iter().map(|&l| self.caps[l]).collect();
        let flows: Vec<Vec<(usize, f64)>> = comp
            .iter()
            .map(|&ci| {
                self.conns[ci].active.as_ref().expect("in sync").path[..]
                    .iter()
                    .map(|&(l, w)| (lidx[&l], w))
                    .collect()
            })
            .collect();
        let rates = max_min_rates(&caps, &flows);
        let now = ctx.now();
        for (k, &ci) in comp.iter().enumerate() {
            let c = &mut self.conns[ci];
            let f = c.active.as_mut().expect("in sync");
            Self::advance_flow(f, now);
            if rates[k] != f.rate {
                // An unchanged rate keeps its scheduled completion: the
                // residual shrank by exactly rate·dt since scheduling.
                f.rate = rates[k];
                c.epochs += 1;
                f.epoch = c.epochs;
                let delay = Dur::nanos((f.remaining / f.rate).ceil() as u64);
                ctx.send_self_in(
                    delay,
                    Message::new(FluidEv::Complete {
                        conn: ConnId(ci),
                        epoch: f.epoch,
                    }),
                );
            }
        }
    }

    fn on_arrive(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: usize,
        msg: u64,
        bytes: u64,
        sent_at: SimTime,
        payload: Message,
    ) {
        let c = &mut self.conns[conn];
        // Fate is drawn once per message, in arrival order, from this
        // core's own deterministic RNG stream — shard-invariant because
        // the core is a single pinned process.
        let fate = match &c.faults {
            Some(f) => f.fate(ctx.now(), ctx.rng()),
            None => MsgFate::Deliver { extra: Dur::ZERO },
        };
        match fate {
            MsgFate::Drop => {
                let kind = if c.cut_at.is_some_and(|t| ctx.now() >= t) {
                    StreamErrorKind::PeerDead
                } else {
                    StreamErrorKind::Lost
                };
                self.fail(ctx, conn, msg, bytes, kind);
            }
            MsgFate::Deliver { extra } => {
                c.queue.push_back(QueuedMsg {
                    msg,
                    bytes,
                    sent_at,
                    payload,
                    extra,
                });
                if c.active.is_none() && self.start_next(ctx, conn) {
                    self.reallocate(ctx, conn);
                }
            }
        }
    }

    fn on_complete(&mut self, ctx: &mut Ctx<'_>, conn: usize, epoch: u64) {
        {
            let Some(f) = &self.conns[conn].active else {
                return; // stale: the flow already completed
            };
            if f.epoch != epoch {
                return; // stale: superseded by a reallocation
            }
        }
        if let Ok(i) = self.active.binary_search(&conn) {
            self.active.remove(i);
        }
        let c = &mut self.conns[conn];
        let mut f = c.active.take().expect("checked above");
        for &(l, _) in &f.path {
            let lu = &mut self.link_users[l];
            if let Ok(i) = lu.binary_search(&conn) {
                lu.remove(i);
            }
        }
        let payload = f.payload.take().expect("payload present until delivery");
        if c.cut_at.is_some_and(|t| ctx.now() >= t) {
            // The endpoint died mid-transfer: the flow fails instead of
            // delivering.
            let (msg, bytes) = (f.msg, f.bytes);
            self.fail(ctx, conn, msg, bytes, StreamErrorKind::PeerDead);
        } else {
            hpsock_sim::telemetry::count_flows(1);
            let d_rx = self.delivery_delay(conn, f.bytes) + f.extra;
            let c = &self.conns[conn];
            ctx.send_in(
                d_rx,
                c.rx_core,
                Message::new(FluidEv::Deliver {
                    conn: ConnId(conn),
                    msg: f.msg,
                    bytes: f.bytes,
                    sent_at: f.sent_at,
                    payload,
                }),
            );
        }
        self.start_next(ctx, conn);
        // One recompute covers both the departure and any promotion.
        self.reallocate(ctx, conn);
    }
}

impl Process for FluidCore {
    fn name(&self) -> String {
        "net-fluid".to_string()
    }

    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        let reg = self.registry.lock().expect("registry lock");
        assert!(reg.sealed, "fluid core started before the switch");
        let route = self
            .route
            .get()
            .expect("fluid core starts after the switch installed routes");
        let topo = reg.topology;
        let n = route.core_of_node.len();
        self.caps = vec![1.0; 3 * n];
        if let Topology::Racks {
            racks,
            per_rack,
            oversub,
        } = topo
        {
            let up = per_rack as f64 * NODE_WIRE_BYTES_PER_NS / oversub;
            for _ in 0..racks {
                self.caps.push(up); // uplink
                self.caps.push(up); // downlink
            }
        }
        self.link_users = vec![Vec::new(); self.caps.len()];
        self.conns = reg
            .conns
            .iter()
            .enumerate()
            .map(|(ci, spec)| {
                let (src, dst) = (spec.src.node.0, spec.dst.node.0);
                let faults = reg.faults.as_ref().and_then(|p| p.compile(src, dst));
                let fabric = match topo {
                    Topology::Racks { per_rack, .. } if topo.inter_rack(src, dst) => Some((
                        3 * n + 2 * (src / per_rack),
                        3 * n + 2 * (dst / per_rack) + 1,
                    )),
                    _ => None,
                };
                FluidConn {
                    tx_core: route.tx_core[ci],
                    rx_core: route.rx_core[ci],
                    stage_links: [3 * src, 3 * src + 1, 3 * dst + 2],
                    fabric,
                    min_drx: min_delivery(&spec.costs),
                    cut_at: faults.as_ref().and_then(|f| f.cut_at),
                    detect: faults
                        .as_ref()
                        .map_or(Dur::nanos(1), |f| Dur::nanos(f.detect.as_nanos().max(1))),
                    faults,
                    costs: Arc::clone(&spec.costs),
                    queue: VecDeque::new(),
                    active: None,
                    epochs: 0,
                }
            })
            .collect();
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.downcast::<FluidEv>() {
            Ok(FluidEv::Arrive {
                conn,
                msg,
                bytes,
                sent_at,
                payload,
            }) => self.on_arrive(ctx, conn.0, msg, bytes, sent_at, payload),
            Ok(FluidEv::Complete { conn, epoch }) => self.on_complete(ctx, conn.0, epoch),
            Ok(_) => panic!("node-core fluid event at the fluid core"),
            Err(_) => panic!("fluid core received an unknown message type"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn single_flow_gets_the_bottleneck_rate() {
        // One flow over links of capacity 10 and 4 with unit weights.
        let rates = max_min_rates(&[10.0, 4.0], &[vec![(0, 1.0), (1, 1.0)]]);
        assert_close(rates[0], 4.0, "single flow");
    }

    #[test]
    fn shared_uplink_splits_evenly() {
        // Two unit-weight flows through one capacity-10 uplink.
        let flows = vec![vec![(0, 1.0)], vec![(0, 1.0)]];
        let rates = max_min_rates(&[10.0], &flows);
        assert_close(rates[0], 5.0, "flow 0");
        assert_close(rates[1], 5.0, "flow 1");
    }

    #[test]
    fn asymmetric_capacities_water_fill() {
        // Flow A crosses a tight private link (cap 2) and the shared link
        // (cap 10); flow B only the shared link. A freezes at 2, B takes
        // the leftovers: 8.
        let flows = vec![vec![(0, 1.0), (1, 1.0)], vec![(1, 1.0)]];
        let rates = max_min_rates(&[2.0, 10.0], &flows);
        assert_close(rates[0], 2.0, "constrained flow");
        assert_close(rates[1], 8.0, "unconstrained flow");
    }

    #[test]
    fn weights_scale_consumption() {
        // Equal fair shares in *rate* under unequal weights: both freeze
        // at the shared bottleneck, r * (w_a + w_b) = cap.
        let flows = vec![vec![(0, 3.0)], vec![(0, 1.0)]];
        let rates = max_min_rates(&[8.0], &flows);
        assert_close(rates[0], 2.0, "heavy flow");
        assert_close(rates[1], 2.0, "light flow");
    }

    #[test]
    fn three_tier_bottleneck_chain() {
        // f0: links 0,1; f1: links 1,2; f2: link 2. cap 1, 3, 12.
        // Round 1: link 0 fair 1 -> f0 = 1. Round 2: link 1 left 2 for
        // f1 -> 2. Round 3: link 2 left 10 for f2 -> 10.
        let flows = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(1, 1.0), (2, 1.0)],
            vec![(2, 1.0)],
        ];
        let rates = max_min_rates(&[1.0, 3.0, 12.0], &flows);
        assert_close(rates[0], 1.0, "f0");
        assert_close(rates[1], 2.0, "f1");
        assert_close(rates[2], 10.0, "f2");
    }

    #[test]
    fn unloaded_single_flow_reproduces_peak_bandwidths() {
        // A lone fluid flow's drain rate (1 / max stage weight) must equal
        // the packet model's calibrated steady-state bandwidth.
        use crate::params::{PathCosts, TransportKind};
        for kind in TransportKind::PAPER_SET {
            let costs = PathCosts::for_kind(kind);
            let s = 65_536u64;
            let occ = costs.stage_occupancies(s);
            let max_w = occ.iter().fold(0.0f64, |a, &b| a.max(b)) / s as f64;
            let mbps = 8.0 / max_w * 1_000.0;
            let want = costs.steady_bandwidth_mbps(s);
            assert!(
                (mbps - want).abs() / want < 1e-3,
                "{}: fluid {mbps} vs packet {want}",
                kind.label()
            );
        }
    }
}
