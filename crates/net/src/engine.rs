//! The network engine: a single simulation process that owns every
//! connection's state and walks message frames through the stage pipeline
//!
//! ```text
//! host_tx (sender CPU protocol engine)
//!   -> nic_tx (sender NIC DMA + wire serialization)
//!   -> switch + propagation (pure delay)
//!   -> host_rx (receiver protocol engine)
//!   -> delivery to the destination process
//! ```
//!
//! Each stage is a FCFS resource per node, so concurrent connections through
//! the same node contend for the host protocol engines and the NIC exactly
//! once per frame. Flow control ([`crate::flow::Flow`]) gates frame
//! emission; acknowledgments and credit returns travel back as delayed
//! events with the transport's `ack_latency`.
//!
//! Application processes talk to the engine through [`Network`] (commands
//! are zero-delay events) and receive [`Delivery`] messages when a whole
//! application message has been reassembled at the receiver.

use crate::flow::Flow;
use crate::frame::{frame_count, frame_len};
use crate::params::{PathCosts, TransportKind};
use hpsock_sim::stats::{Tally, TimeWeighted};
use hpsock_sim::{Ctx, Dur, Message, ProbeEvent, Process, ProcessId, ResourceId, Sim, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A connection between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub usize);

/// One side of a connection: a process pinned to a node.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Node the endpoint lives on (determines which resources it uses).
    pub node: NodeId,
    /// Process that receives [`Delivery`] events for this endpoint.
    pub pid: ProcessId,
}

/// Per-node resources the engine drives.
#[derive(Debug, Clone, Copy)]
pub struct NodeResources {
    /// Host protocol engine, transmit side (1 server).
    pub host_tx: ResourceId,
    /// NIC DMA + wire serialization (1 server).
    pub nic_tx: ResourceId,
    /// Host protocol engine, receive side (1 server).
    pub host_rx: ResourceId,
    /// Application CPU (typically 2 servers: dual-processor nodes).
    pub cpu: ResourceId,
}

/// A fully reassembled application message handed to the destination
/// process as its event payload.
pub struct Delivery {
    /// Connection it arrived on.
    pub conn: ConnId,
    /// Engine-assigned message id; pass back via [`Network::consumed`].
    pub msg_id: u64,
    /// Application payload size in simulated bytes.
    pub bytes: u64,
    /// Virtual time the sender issued the message.
    pub sent_at: SimTime,
    /// Opaque application payload.
    pub payload: Message,
}

/// Commands applications send to the engine.
pub enum NetCmd {
    /// Transmit `payload` (`bytes` simulated bytes) on `conn`.
    Send {
        /// Connection to send on.
        conn: ConnId,
        /// Simulated payload size.
        bytes: u64,
        /// Opaque payload delivered to the peer.
        payload: Message,
    },
    /// The application consumed a delivered message: frees receive-side
    /// buffer space / returns descriptor credits.
    Consumed {
        /// Connection the message arrived on.
        conn: ConnId,
        /// The id from the corresponding [`Delivery`].
        msg_id: u64,
    },
}

/// Engine-internal frame/stage events.
enum Ev {
    HostTxDone {
        conn: ConnId,
        msg: u64,
        frame: u32,
    },
    WireDone {
        conn: ConnId,
        msg: u64,
        frame: u32,
    },
    RxArrive {
        conn: ConnId,
        msg: u64,
        frame: u32,
    },
    HostRxFrameDone {
        conn: ConnId,
        msg: u64,
        frame: u32,
    },
    MsgReady {
        conn: ConnId,
        msg: u64,
    },
    /// Window ack (window model): frees in-flight bytes at the sender.
    AckArrive {
        conn: ConnId,
        frame_bytes: u64,
    },
    /// Descriptor credits re-posted at frame arrival reached the sender
    /// (credits model).
    CreditArrive {
        conn: ConnId,
        n: u32,
    },
    /// Consumption notification reached the sender: frees receive-buffer
    /// accounting (window model).
    FlowReturn {
        conn: ConnId,
        bytes: u64,
    },
}

/// Counters and distributions per connection.
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Application messages submitted.
    pub msgs_sent: u64,
    /// Application bytes submitted.
    pub bytes_sent: u64,
    /// Application messages delivered.
    pub msgs_delivered: u64,
    /// Application bytes delivered.
    pub bytes_delivered: u64,
    /// Send→delivery latency in microseconds.
    pub latency_us: Tally,
    /// Sender queue depth (messages waiting for flow-control headroom).
    pub queue_depth: TimeWeighted,
    /// Total time the sender sat blocked on flow-control credits with data
    /// queued (the paper's "waiting for descriptor credits" component).
    pub credit_stall: Dur,
    /// Frames (wire segments) submitted to the sender's host engine.
    pub frames_tx: u64,
    /// Per-frame receive completions (interrupt-path invocations).
    pub rx_interrupts: u64,
}

struct PendingMsg {
    msg: u64,
    bytes: u64,
    next_frame: u32,
    frames: u32,
}

struct MsgState {
    bytes: u64,
    frames: u32,
    frames_arrived: u32,
    sent_at: SimTime,
    payload: Option<Message>,
}

struct ConnState {
    src: Endpoint,
    dst: Endpoint,
    costs: Arc<PathCosts>,
    flow: Flow,
    sendq: VecDeque<PendingMsg>,
    msgs: HashMap<u64, MsgState>,
    /// Delivered, not yet consumed: msg_id -> (bytes, frames).
    unconsumed: HashMap<u64, (u64, u32)>,
    stats: ConnStats,
    /// When the sender last became credit-blocked with data queued.
    stall_since: Option<SimTime>,
}

/// Connection specification recorded before the run starts.
struct ConnSpec {
    src: Endpoint,
    dst: Endpoint,
    costs: Arc<PathCosts>,
}

#[derive(Default)]
struct Registry {
    conns: Vec<ConnSpec>,
    sealed: bool,
}

/// Cheap-to-clone application handle to the network engine.
#[derive(Clone)]
pub struct Network {
    pid: ProcessId,
    registry: Arc<Mutex<Registry>>,
}

impl Network {
    /// Register a unidirectional connection. Must be called before the
    /// simulation runs (connections are established up front, as in
    /// DataCutter). Uses calibrated costs for `kind`.
    pub fn connect(&self, src: Endpoint, dst: Endpoint, kind: TransportKind) -> ConnId {
        self.connect_with(src, dst, Arc::new(PathCosts::for_kind(kind)))
    }

    /// Register a connection with explicit (e.g. ablated) path costs.
    pub fn connect_with(&self, src: Endpoint, dst: Endpoint, costs: Arc<PathCosts>) -> ConnId {
        let mut reg = self.registry.lock().expect("registry lock");
        assert!(
            !reg.sealed,
            "connections must be registered before the simulation runs"
        );
        let id = ConnId(reg.conns.len());
        reg.conns.push(ConnSpec { src, dst, costs });
        id
    }

    /// Submit a message (called from an application process handler).
    pub fn send(&self, ctx: &mut Ctx<'_>, conn: ConnId, bytes: u64, payload: Message) {
        ctx.send(
            self.pid,
            Message::new(NetCmd::Send {
                conn,
                bytes,
                payload,
            }),
        );
    }

    /// Report consumption of a delivered message (frees flow-control
    /// resources at the sender after the transport's ack latency).
    pub fn consumed(&self, ctx: &mut Ctx<'_>, conn: ConnId, msg_id: u64) {
        ctx.send(self.pid, Message::new(NetCmd::Consumed { conn, msg_id }));
    }

    /// The engine's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }
}

/// The engine process. Construct via [`NetEngine::install`].
pub struct NetEngine {
    nodes: Vec<NodeResources>,
    conns: Vec<ConnState>,
    registry: Arc<Mutex<Registry>>,
    next_msg_id: u64,
}

impl NetEngine {
    /// Create the engine process inside `sim` for a cluster with the given
    /// per-node resources; returns the application handle.
    pub fn install(sim: &mut Sim, nodes: Vec<NodeResources>) -> Network {
        let registry = Arc::new(Mutex::new(Registry::default()));
        let engine = NetEngine {
            nodes,
            conns: Vec::new(),
            registry: Arc::clone(&registry),
            next_msg_id: 0,
        };
        let pid = sim.add_process(Box::new(engine));
        Network { pid, registry }
    }

    /// Statistics for a connection (valid after/during a run; read back via
    /// [`Sim::process`]).
    pub fn conn_stats(&self, conn: ConnId) -> &ConnStats {
        &self.conns[conn.0].stats
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        loop {
            let c = &mut self.conns[conn.0];
            let Some(head) = c.sendq.front_mut() else {
                c.stats.queue_depth.set(ctx.now(), 0.0);
                return;
            };
            let flen = frame_len(head.bytes, c.costs.frame_payload, head.next_frame) as u64;
            if !c.flow.can_send(flen) {
                let depth = c.sendq.len() as f64;
                c.stats.queue_depth.set(ctx.now(), depth);
                if c.stall_since.is_none() {
                    c.stall_since = Some(ctx.now());
                }
                ctx.probe_emit(|t| ProbeEvent::Gauge {
                    name: format!("net.conn{}.sendq", conn.0),
                    time: t,
                    value: depth,
                });
                return;
            }
            // Credits freed up: close any open stall interval, attributed
            // to the host TX engine the frames were waiting to enter.
            if let Some(from) = c.stall_since.take() {
                let until = ctx.now();
                c.stats.credit_stall += until.saturating_since(from);
                let rid = self.nodes[c.src.node.0].host_tx;
                ctx.probe_emit(|_| ProbeEvent::Stall { rid, from, until });
            }
            c.flow.on_frame_sent(flen);
            let first = head.next_frame == 0;
            let msg = head.msg;
            let frame = head.next_frame;
            head.next_frame += 1;
            let finished = head.next_frame == head.frames;
            let mut service = c.costs.per_frame_send
                + Dur::nanos((flen as f64 * c.costs.per_byte_send_ns).round() as u64);
            if first {
                service += c.costs.per_msg_send;
            }
            let host_tx = self.nodes[c.src.node.0].host_tx;
            if finished {
                c.sendq.pop_front();
            }
            c.stats.frames_tx += 1;
            ctx.probe_emit(|t| ProbeEvent::Counter {
                name: "net.frames_tx".to_string(),
                time: t,
                delta: 1.0,
            });
            ctx.use_resource(
                host_tx,
                service,
                Message::new(Ev::HostTxDone { conn, msg, frame }),
            );
        }
    }

    fn on_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: NetCmd) {
        match cmd {
            NetCmd::Send {
                conn,
                bytes,
                payload,
            } => {
                let msg_id = self.next_msg_id;
                self.next_msg_id += 1;
                let c = &mut self.conns[conn.0];
                let frames = frame_count(bytes, c.costs.frame_payload);
                c.msgs.insert(
                    msg_id,
                    MsgState {
                        bytes,
                        frames,
                        frames_arrived: 0,
                        sent_at: ctx.now(),
                        payload: Some(payload),
                    },
                );
                c.sendq.push_back(PendingMsg {
                    msg: msg_id,
                    bytes,
                    next_frame: 0,
                    frames,
                });
                c.stats.msgs_sent += 1;
                c.stats.bytes_sent += bytes;
                c.stats.queue_depth.set(ctx.now(), c.sendq.len() as f64);
                self.pump(ctx, conn);
            }
            NetCmd::Consumed { conn, msg_id } => {
                let c = &mut self.conns[conn.0];
                let (bytes, _frames) = c
                    .unconsumed
                    .remove(&msg_id)
                    .expect("consumed an unknown or already-consumed message");
                // Credits were re-posted at frame arrival; only the window
                // model needs a receive-buffer update.
                if !c.flow.is_credits() {
                    let ack = c.costs.ack_latency;
                    ctx.send_self_in(ack, Message::new(Ev::FlowReturn { conn, bytes }));
                }
            }
        }
    }

    fn on_ev(&mut self, ctx: &mut Ctx<'_>, ev: Ev) {
        match ev {
            Ev::HostTxDone { conn, msg, frame } => {
                let c = &self.conns[conn.0];
                let st = &c.msgs[&msg];
                let flen = frame_len(st.bytes, c.costs.frame_payload, frame) as u64;
                let wire_bytes = flen + c.costs.frame_overhead as u64;
                let service = c.costs.nic_per_frame
                    + Dur::nanos((wire_bytes as f64 * c.costs.wire_ns_per_byte).round() as u64);
                let nic = self.nodes[c.src.node.0].nic_tx;
                ctx.use_resource(
                    nic,
                    service,
                    Message::new(Ev::WireDone { conn, msg, frame }),
                );
            }
            Ev::WireDone { conn, msg, frame } => {
                let c = &self.conns[conn.0];
                let delay = c.costs.switch_latency + c.costs.prop_delay;
                ctx.send_self_in(delay, Message::new(Ev::RxArrive { conn, msg, frame }));
            }
            Ev::RxArrive { conn, msg, frame } => {
                let c = &self.conns[conn.0];
                let st = &c.msgs[&msg];
                let flen = frame_len(st.bytes, c.costs.frame_payload, frame) as u64;
                let service = c.costs.per_frame_recv
                    + Dur::nanos((flen as f64 * c.costs.per_byte_recv_ns).round() as u64);
                let host_rx = self.nodes[c.dst.node.0].host_rx;
                ctx.use_resource(
                    host_rx,
                    service,
                    Message::new(Ev::HostRxFrameDone { conn, msg, frame }),
                );
            }
            Ev::HostRxFrameDone { conn, msg, frame } => {
                let c = &mut self.conns[conn.0];
                let st = c.msgs.get_mut(&msg).expect("frame for unknown message");
                let flen = frame_len(st.bytes, c.costs.frame_payload, frame) as u64;
                st.frames_arrived += 1;
                c.stats.rx_interrupts += 1;
                ctx.probe_emit(|t| ProbeEvent::Counter {
                    name: "net.rx_interrupts".to_string(),
                    time: t,
                    delta: 1.0,
                });
                let last = st.frames_arrived == st.frames;
                let ack = c.costs.ack_latency;
                if c.flow.is_credits() {
                    // The sockets layer drains the eager buffer and
                    // re-posts the descriptor; the credit update reaches
                    // the sender after the return-path latency.
                    let n = c.flow.on_frame_arrived(flen);
                    if n > 0 {
                        ctx.send_self_in(ack, Message::new(Ev::CreditArrive { conn, n }));
                    }
                } else {
                    ctx.send_self_in(
                        ack,
                        Message::new(Ev::AckArrive {
                            conn,
                            frame_bytes: flen,
                        }),
                    );
                }
                if last {
                    let service = c.costs.per_msg_recv;
                    let host_rx = self.nodes[c.dst.node.0].host_rx;
                    ctx.use_resource(host_rx, service, Message::new(Ev::MsgReady { conn, msg }));
                }
            }
            Ev::MsgReady { conn, msg } => {
                let c = &mut self.conns[conn.0];
                let mut st = c.msgs.remove(&msg).expect("ready for unknown message");
                let payload = st.payload.take().expect("payload present until delivery");
                c.unconsumed.insert(msg, (st.bytes, st.frames));
                c.stats.msgs_delivered += 1;
                c.stats.bytes_delivered += st.bytes;
                c.stats
                    .latency_us
                    .add(ctx.now().since(st.sent_at).as_micros_f64());
                // Cumulative achieved bandwidth of this connection so far
                // (bits delivered / virtual time), as a gauge per delivery.
                let delivered = c.stats.bytes_delivered;
                ctx.probe_emit(|t| ProbeEvent::Gauge {
                    name: format!("net.conn{}.mbps", conn.0),
                    time: t,
                    value: if t == SimTime::ZERO {
                        0.0
                    } else {
                        8.0 * delivered as f64 / t.as_nanos() as f64 * 1_000.0
                    },
                });
                let delivery = Delivery {
                    conn,
                    msg_id: msg,
                    bytes: st.bytes,
                    sent_at: st.sent_at,
                    payload,
                };
                ctx.send(c.dst.pid, Message::new(delivery));
            }
            Ev::AckArrive { conn, frame_bytes } => {
                self.conns[conn.0].flow.on_frame_arrived(frame_bytes);
                self.pump(ctx, conn);
            }
            Ev::CreditArrive { conn, n } => {
                self.conns[conn.0].flow.on_credits_returned(n);
                self.pump(ctx, conn);
            }
            Ev::FlowReturn { conn, bytes } => {
                self.conns[conn.0].flow.on_consumed(bytes);
                self.pump(ctx, conn);
            }
        }
    }
}

impl Process for NetEngine {
    fn name(&self) -> String {
        "net-engine".to_string()
    }

    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        let mut reg = self.registry.lock().expect("registry lock");
        reg.sealed = true;
        self.conns = reg
            .conns
            .iter()
            .map(|spec| ConnState {
                src: spec.src,
                dst: spec.dst,
                costs: Arc::clone(&spec.costs),
                flow: Flow::new(spec.costs.flow, spec.costs.frame_payload),
                sendq: VecDeque::new(),
                msgs: HashMap::new(),
                unconsumed: HashMap::new(),
                stats: ConnStats::default(),
                stall_since: None,
            })
            .collect();
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // Internal events outnumber commands (one send fans out into
        // several wire/host events), so try the common type first.
        match msg.downcast::<Ev>() {
            Ok(ev) => self.on_ev(ctx, ev),
            Err(other) => match other.downcast::<NetCmd>() {
                Ok(cmd) => self.on_cmd(ctx, cmd),
                Err(_) => panic!("net engine received an unknown message type"),
            },
        }
    }
}
