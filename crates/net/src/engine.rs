//! The network engine: per-node core processes that walk message frames
//! through the stage pipeline
//!
//! ```text
//! host_tx (sender CPU protocol engine)
//!   -> nic_tx (sender NIC DMA + wire serialization)
//!   -> switch + propagation (pure delay)
//!   -> host_rx (receiver protocol engine)
//!   -> delivery to the destination process
//! ```
//!
//! Each stage is a FCFS resource per node, so concurrent connections through
//! the same node contend for the host protocol engines and the NIC exactly
//! once per frame. Flow control ([`crate::flow::Flow`]) gates frame
//! emission; acknowledgments and credit returns travel back as delayed
//! events with the transport's `ack_latency`.
//!
//! Engine state is owned per node by a [`NodeCore`] process: the core of a
//! connection's source node owns the send side (flow-control window, send
//! queue, stall accounting) and the destination node's core owns the
//! receive side (frame reassembly, delivery, consumption tracking). All
//! traffic between the two halves rides on delayed events — the
//! switch/propagation hop towards the receiver and the `ack_latency` return
//! path towards the sender — so no zero-delay event ever crosses a node
//! boundary inside the engine. That property is what lets the sharded
//! kernel (`hpsock_sim::shard`) place different nodes' cores on different
//! worker threads with a positive lookahead on every cross-shard link.
//!
//! A single [`NetSwitch`] placeholder process (installed first, before any
//! application process) seals the connection [`Registry`] at start and
//! spawns the per-node cores; spawned cores take process ids *after* every
//! application process, so application pids and their deterministic RNG
//! streams are identical to what a monolithic engine produced.
//!
//! Application processes talk to the engine through [`Network`] (commands
//! are zero-delay events to the owning core, which lives on the same node
//! as the commanding endpoint) and receive [`Delivery`] messages when a
//! whole application message has been reassembled at the receiver.

use crate::cluster::Topology;
use crate::fault::{ConnFaults, FaultPlan, MsgFate};
use crate::flow::Flow;
use crate::fluid::{FluidCore, FluidEv};
use crate::frame::{frame_count, frame_len};
use crate::netmodel::NetModel;
use crate::params::{PathCosts, TransportKind};
use hpsock_sim::stats::{Tally, TimeWeighted};
use hpsock_sim::{Ctx, Dur, Message, ProbeEvent, Process, ProcessId, ResourceId, Sim, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// A node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A connection between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub usize);

/// One side of a connection: a process pinned to a node.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Node the endpoint lives on (determines which resources it uses).
    pub node: NodeId,
    /// Process that receives [`Delivery`] events for this endpoint.
    pub pid: ProcessId,
}

/// Per-node resources the engine drives.
#[derive(Debug, Clone, Copy)]
pub struct NodeResources {
    /// Host protocol engine, transmit side (1 server).
    pub host_tx: ResourceId,
    /// NIC DMA + wire serialization (1 server).
    pub nic_tx: ResourceId,
    /// Host protocol engine, receive side (1 server).
    pub host_rx: ResourceId,
    /// Application CPU (typically 2 servers: dual-processor nodes).
    pub cpu: ResourceId,
}

/// A fully reassembled application message handed to the destination
/// process as its event payload.
pub struct Delivery {
    /// Connection it arrived on.
    pub conn: ConnId,
    /// Engine-assigned message id; pass back via [`Network::consumed`].
    pub msg_id: u64,
    /// Application payload size in simulated bytes.
    pub bytes: u64,
    /// Virtual time the sender issued the message.
    pub sent_at: SimTime,
    /// Opaque application payload.
    pub payload: Message,
}

/// A typed start/stop edge error: the engine was driven outside the
/// window in which its routes exist. Rendered (and panicked with) instead
/// of a bare `expect`, so a mis-sequenced driver reports *what* was used
/// early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// An operation needed the connection routes before the simulation
    /// started (routes are installed when [`NetSwitch`] starts).
    NotStarted {
        /// The operation that was attempted.
        op: &'static str,
        /// The connection involved, when the operation names one.
        conn: Option<ConnId>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NotStarted { op, conn } => {
                write!(f, "net: {op}")?;
                if let Some(c) = conn {
                    write!(f, " on conn {}", c.0)?;
                }
                write!(
                    f,
                    " before the simulation started; routes exist only once \
                     the net switch has run its start phase"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Why a stream operation failed. Carried on [`StreamError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamErrorKind {
    /// The message was lost on the wire by an injected fault (drop filter
    /// or link flap); the connection itself is still up.
    Lost,
    /// An endpoint node fail-stopped; the connection is cut and every
    /// queued or in-flight message on it has failed.
    PeerDead,
    /// A send was submitted on a connection that was already cut.
    NotConnected,
}

/// A recoverable stream failure, delivered to the *sending* process as an
/// ordinary event in place of silent loss (and in place of the panics the
/// engine used to reserve for impossible states). Senders learn the engine
/// message id from the return value of [`Network::send`].
#[derive(Debug, Clone, Copy)]
pub struct StreamError {
    /// The connection the message was submitted on.
    pub conn: ConnId,
    /// Engine message id, as returned by [`Network::send`].
    pub msg_id: u64,
    /// Application payload size of the failed message.
    pub bytes: u64,
    /// What happened.
    pub kind: StreamErrorKind,
}

/// Commands applications send to the engine.
pub enum NetCmd {
    /// Transmit `payload` (`bytes` simulated bytes) on `conn`.
    Send {
        /// Connection to send on.
        conn: ConnId,
        /// Engine message id pre-assigned by [`Network::send`].
        msg_id: u64,
        /// Simulated payload size.
        bytes: u64,
        /// Opaque payload delivered to the peer.
        payload: Message,
    },
    /// The application consumed a delivered message: frees receive-side
    /// buffer space / returns descriptor credits.
    Consumed {
        /// Connection the message arrived on.
        conn: ConnId,
        /// The id from the corresponding [`Delivery`].
        msg_id: u64,
    },
}

/// Engine-internal frame/stage events. Frame length rides in the event so
/// receive-side handlers never need the sender's per-message state.
enum Ev {
    HostTxDone {
        conn: ConnId,
        msg: u64,
        frame: u32,
        flen: u32,
    },
    WireDone {
        conn: ConnId,
        msg: u64,
        frame: u32,
        flen: u32,
    },
    /// Frame 0 arriving at the receiver, carrying the message metadata the
    /// receive side needs (frames always traverse the FCFS stage chain in
    /// order, so frame 0 arrives before any other frame of its message).
    RxFirst {
        conn: ConnId,
        msg: u64,
        flen: u32,
        frames: u32,
        bytes: u64,
        sent_at: SimTime,
        payload: Message,
    },
    /// A later frame (index ≥ 1) arriving at the receiver. Reassembly only
    /// counts frames, so the frame index does not travel.
    RxArrive {
        conn: ConnId,
        msg: u64,
        flen: u32,
    },
    HostRxFrameDone {
        conn: ConnId,
        msg: u64,
        flen: u32,
    },
    MsgReady {
        conn: ConnId,
        msg: u64,
    },
    /// Window ack (window model): frees in-flight bytes at the sender.
    AckArrive {
        conn: ConnId,
        frame_bytes: u64,
    },
    /// Descriptor credits re-posted at frame arrival reached the sender
    /// (credits model).
    CreditArrive {
        conn: ConnId,
        n: u32,
    },
    /// Consumption notification reached the sender: frees receive-buffer
    /// accounting (window model).
    FlowReturn {
        conn: ConnId,
        bytes: u64,
    },
    /// Loss-detection timer for a fault-doomed message fired at the
    /// sender: repair flow control for the charged frames and surface a
    /// [`StreamError`] to the sending process.
    MsgLost {
        conn: ConnId,
        msg: u64,
    },
    /// Crash-detection timer for a connection whose endpoint node
    /// fail-stops: fail everything queued or in flight and mark the send
    /// half dead.
    ConnCut {
        conn: ConnId,
    },
}

/// Counters and distributions per connection. Send-side fields are filled
/// by the source node's core, receive-side fields by the destination
/// node's core; read them back via [`Network::core_of`] +
/// [`hpsock_sim::Sim::process`] with [`NodeCore::tx_stats`] /
/// [`NodeCore::rx_stats`].
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Application messages submitted.
    pub msgs_sent: u64,
    /// Application bytes submitted.
    pub bytes_sent: u64,
    /// Application messages delivered.
    pub msgs_delivered: u64,
    /// Application bytes delivered.
    pub bytes_delivered: u64,
    /// Send→delivery latency in microseconds.
    pub latency_us: Tally,
    /// Sender queue depth (messages waiting for flow-control headroom).
    pub queue_depth: TimeWeighted,
    /// Total time the sender sat blocked on flow-control credits with data
    /// queued (the paper's "waiting for descriptor credits" component).
    pub credit_stall: Dur,
    /// Frames (wire segments) submitted to the sender's host engine.
    pub frames_tx: u64,
    /// Per-frame receive completions (interrupt-path invocations).
    pub rx_interrupts: u64,
}

struct PendingMsg {
    msg: u64,
    bytes: u64,
    next_frame: u32,
    frames: u32,
}

/// Send-side per-message metadata, held until frame 0 leaves the wire and
/// carries it to the receiver inside [`Ev::RxFirst`].
struct TxMsgMeta {
    bytes: u64,
    frames: u32,
    sent_at: SimTime,
    payload: Message,
}

/// Receive-side reassembly state for one in-flight message.
struct RxMsgState {
    bytes: u64,
    frames: u32,
    frames_arrived: u32,
    sent_at: SimTime,
    payload: Option<Message>,
}

/// Bookkeeping for a message the fault layer doomed at the wire: its
/// already-emitted frames are drained from the stage pipeline without
/// being forwarded, and flow control is repaired when the loss-detection
/// timer fires.
struct DoomedMsg {
    bytes: u64,
    /// Frames charged to flow control before the doom verdict (frames the
    /// repair must return).
    frames_charged: u32,
    /// Charged frames whose `WireDone` has drained so far.
    seen: u32,
    /// The `MsgLost` repair has run; the entry only lingers to absorb
    /// still-in-pipeline frames.
    repaired: bool,
    kind: StreamErrorKind,
}

/// A message a delay filter hit: every frame gets the same added wire
/// latency, so frames of one message never reorder among themselves.
struct DelayedMsg {
    extra: Dur,
    frames: u32,
    seen: u32,
}

/// Send half of a connection, owned by the source node's core.
struct TxConn {
    costs: Arc<PathCosts>,
    flow: Flow,
    sendq: VecDeque<PendingMsg>,
    pending_meta: HashMap<u64, TxMsgMeta>,
    stats: ConnStats,
    /// When the sender last became credit-blocked with data queued.
    stall_since: Option<SimTime>,
    /// Compiled fault state (`None` on a fault-free link: the hot path
    /// then performs no RNG draws and schedules no extra events).
    faults: Option<ConnFaults>,
    /// The sending process, target of [`StreamError`] events.
    src_pid: ProcessId,
    /// Set by [`Ev::ConnCut`]; a dead connection accepts no traffic.
    dead: bool,
    doomed: HashMap<u64, DoomedMsg>,
    delayed: HashMap<u64, DelayedMsg>,
}

/// Receive half of a connection, owned by the destination node's core.
struct RxConn {
    dst: Endpoint,
    costs: Arc<PathCosts>,
    /// Same flow model as the send side; the receive half only drives the
    /// arrival path (descriptor reap/re-post in the credits model).
    flow: Flow,
    msgs: HashMap<u64, RxMsgState>,
    /// Delivered, not yet consumed: msg_id -> (bytes, frames).
    unconsumed: HashMap<u64, (u64, u32)>,
    stats: ConnStats,
    /// Fail-stop time of this (destination) node, when the fault plan
    /// crashes it: frames arriving afterwards are dropped, returning no
    /// acks or credits.
    cut_at: Option<SimTime>,
}

/// Connection specification recorded before the run starts.
pub(crate) struct ConnSpec {
    pub(crate) src: Endpoint,
    pub(crate) dst: Endpoint,
    pub(crate) costs: Arc<PathCosts>,
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) conns: Vec<ConnSpec>,
    pub(crate) sealed: bool,
    /// Next engine message id per connection. Lives in the registry (not
    /// the send half) so [`Network::send`] can hand the id back to the
    /// caller synchronously; each connection has a single sending process,
    /// so the sequence stays deterministic under sharding.
    pub(crate) next_msg_id: Vec<u64>,
    /// The fault plan the owning cluster was built under, if any.
    pub(crate) faults: Option<Arc<FaultPlan>>,
    /// Which network engine this cluster simulates with; resolved from
    /// `HPSOCK_NETMODEL` (or a scoped override) on the thread that built
    /// the cluster, so worker threads of a sharded run see the builder's
    /// choice.
    pub(crate) model: NetModel,
    /// Physical shape of the cluster. [`Topology::Racks`] adds the
    /// inter-rack switch hop to cross-rack connections and, under the flow
    /// model, routes their flows through oversubscribed rack uplinks.
    pub(crate) topology: Topology,
}

/// Where each connection's halves live, fixed once the simulation starts.
pub(crate) struct Route {
    /// Core owning the send half, per connection (the source node's core).
    pub(crate) tx_core: Vec<ProcessId>,
    /// Core owning the receive half, per connection.
    pub(crate) rx_core: Vec<ProcessId>,
    /// Core process of each node.
    pub(crate) core_of_node: Vec<ProcessId>,
    /// The single [`FluidCore`] process under [`NetModel::Flow`]; `None`
    /// under the packet model. Shard plans pin it to shard 0.
    pub(crate) fluid_core: Option<ProcessId>,
}

/// Cheap-to-clone application handle to the network engine.
#[derive(Clone)]
pub struct Network {
    pub(crate) registry: Arc<Mutex<Registry>>,
    pub(crate) route: Arc<OnceLock<Route>>,
    /// The [`NetSwitch`] placeholder's pid; it handles no messages after
    /// `on_start`, so a shard plan may place it anywhere.
    pub(crate) switch_pid: ProcessId,
}

impl Network {
    /// Register a unidirectional connection. Must be called before the
    /// simulation runs (connections are established up front, as in
    /// DataCutter). Uses calibrated costs for `kind`.
    pub fn connect(&self, src: Endpoint, dst: Endpoint, kind: TransportKind) -> ConnId {
        self.connect_with(src, dst, Arc::new(PathCosts::for_kind(kind)))
    }

    /// Register a connection with explicit (e.g. ablated) path costs.
    /// Under a hierarchical topology, connections that cross rack
    /// boundaries pay one extra switch hop ([`crate::cluster::INTER_RACK_HOP`])
    /// on top of the given costs.
    pub fn connect_with(&self, src: Endpoint, dst: Endpoint, costs: Arc<PathCosts>) -> ConnId {
        let mut reg = self.registry.lock().expect("registry lock");
        assert!(
            !reg.sealed,
            "connections must be registered before the simulation runs"
        );
        let costs = if reg.topology.inter_rack(src.node.0, dst.node.0) {
            let mut c = (*costs).clone();
            c.switch_latency += crate::cluster::INTER_RACK_HOP;
            Arc::new(c)
        } else {
            costs
        };
        let id = ConnId(reg.conns.len());
        reg.conns.push(ConnSpec { src, dst, costs });
        reg.next_msg_id.push(0);
        id
    }

    /// The routing table, or a typed [`NetError`] naming the operation
    /// (and connection) that was attempted too early.
    fn try_route(&self, op: &'static str, conn: Option<ConnId>) -> Result<&Route, NetError> {
        self.route.get().ok_or(NetError::NotStarted { op, conn })
    }

    fn route(&self, op: &'static str, conn: Option<ConnId>) -> &Route {
        self.try_route(op, conn).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Submit a message (called from an application process handler).
    /// Returns the engine message id, which identifies this message in the
    /// matching [`Delivery`] — or in a [`StreamError`], should the fault
    /// layer lose it.
    pub fn send(&self, ctx: &mut Ctx<'_>, conn: ConnId, bytes: u64, payload: Message) -> u64 {
        let msg_id = {
            let mut reg = self.registry.lock().expect("registry lock");
            let id = reg.next_msg_id[conn.0];
            reg.next_msg_id[conn.0] += 1;
            id
        };
        ctx.send(
            self.route("send", Some(conn)).tx_core[conn.0],
            Message::new(NetCmd::Send {
                conn,
                msg_id,
                bytes,
                payload,
            }),
        );
        msg_id
    }

    /// Report consumption of a delivered message (frees flow-control
    /// resources at the sender after the transport's ack latency).
    pub fn consumed(&self, ctx: &mut Ctx<'_>, conn: ConnId, msg_id: u64) {
        ctx.send(
            self.route("consumed", Some(conn)).rx_core[conn.0],
            Message::new(NetCmd::Consumed { conn, msg_id }),
        );
    }

    /// The engine core process serving `node` (valid once the simulation
    /// has started). Useful to read back [`NodeCore`] statistics.
    pub fn core_of(&self, node: NodeId) -> ProcessId {
        self.route("core_of", None).core_of_node[node.0]
    }
}

/// Placeholder process that seals the registry and spawns the per-node
/// cores when the simulation starts. Construct via [`NetSwitch::install`].
pub struct NetSwitch {
    nodes: Vec<NodeResources>,
    registry: Arc<Mutex<Registry>>,
    route: Arc<OnceLock<Route>>,
}

impl NetSwitch {
    /// Create the engine inside `sim` for a cluster with the given per-node
    /// resources; returns the application handle. Must be installed before
    /// any application process so the connection routes exist by the time
    /// application `on_start` hooks send.
    pub fn install(sim: &mut Sim, nodes: Vec<NodeResources>) -> Network {
        // The network model is resolved here, on the building thread, so
        // scoped `with_netmodel` overrides take effect even when the run
        // itself executes on sharded worker threads.
        let registry = Arc::new(Mutex::new(Registry {
            model: crate::netmodel::configured_netmodel(),
            ..Registry::default()
        }));
        let route = Arc::new(OnceLock::new());
        let switch = NetSwitch {
            nodes,
            registry: Arc::clone(&registry),
            route: Arc::clone(&route),
        };
        let switch_pid = sim.add_process(Box::new(switch));
        Network {
            registry,
            route,
            switch_pid,
        }
    }
}

impl Process for NetSwitch {
    fn name(&self) -> String {
        "net-switch".to_string()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut reg = self.registry.lock().expect("registry lock");
        reg.sealed = true;
        // Spawned cores start after every process added before the run, so
        // application pids (and with them RNG streams) are unaffected by
        // how many cores exist.
        let core_of_node: Vec<ProcessId> = (0..self.nodes.len())
            .map(|i| {
                ctx.spawn(Box::new(NodeCore {
                    node: NodeId(i),
                    res: self.nodes[i],
                    registry: Arc::clone(&self.registry),
                    route: Arc::clone(&self.route),
                    model: reg.model,
                    tx: Vec::new(),
                    rx: Vec::new(),
                }))
            })
            .collect();
        // The fluid core spawns after the node cores so their pids (and
        // RNG streams) are identical under either model.
        let fluid_core = (reg.model == NetModel::Flow).then(|| {
            ctx.spawn(Box::new(FluidCore::new(
                Arc::clone(&self.registry),
                Arc::clone(&self.route),
            )))
        });
        let route = Route {
            tx_core: reg
                .conns
                .iter()
                .map(|s| core_of_node[s.src.node.0])
                .collect(),
            rx_core: reg
                .conns
                .iter()
                .map(|s| core_of_node[s.dst.node.0])
                .collect(),
            core_of_node,
            fluid_core,
        };
        if self.route.set(route).is_err() {
            panic!("network route initialized twice");
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
        panic!("net switch handles no messages");
    }
}

/// The engine core of one node: owns the send half of every connection
/// sourced at the node and the receive half of every connection terminating
/// there, and drives the node's `host_tx`/`nic_tx`/`host_rx` resources.
pub struct NodeCore {
    node: NodeId,
    res: NodeResources,
    registry: Arc<Mutex<Registry>>,
    route: Arc<OnceLock<Route>>,
    /// The cluster's network model: under [`NetModel::Flow`] the core only
    /// does endpoint bookkeeping and hands transfers to the fluid core.
    model: NetModel,
    /// Send halves, indexed by connection id (None when sourced elsewhere).
    tx: Vec<Option<TxConn>>,
    /// Receive halves, indexed by connection id.
    rx: Vec<Option<RxConn>>,
}

impl NodeCore {
    /// Send-side statistics of a connection sourced at this node.
    pub fn tx_stats(&self, conn: ConnId) -> Option<&ConnStats> {
        self.tx.get(conn.0)?.as_ref().map(|t| &t.stats)
    }

    /// Receive-side statistics of a connection terminating at this node.
    pub fn rx_stats(&self, conn: ConnId) -> Option<&ConnStats> {
        self.rx.get(conn.0)?.as_ref().map(|r| &r.stats)
    }

    fn rx_core(&self, conn: ConnId) -> ProcessId {
        match self.route.get() {
            Some(r) => r.rx_core[conn.0],
            None => panic!(
                "{}",
                NetError::NotStarted {
                    op: "rx-core lookup",
                    conn: Some(conn),
                }
            ),
        }
    }

    fn tx_core(&self, conn: ConnId) -> ProcessId {
        match self.route.get() {
            Some(r) => r.tx_core[conn.0],
            None => panic!(
                "{}",
                NetError::NotStarted {
                    op: "tx-core lookup",
                    conn: Some(conn),
                }
            ),
        }
    }

    fn fluid_core(&self) -> ProcessId {
        self.route
            .get()
            .and_then(|r| r.fluid_core)
            .expect("no fluid core under the flow model")
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        loop {
            let c = self.tx[conn.0].as_mut().expect("send half owned here");
            if c.dead {
                return;
            }
            let Some(head) = c.sendq.front_mut() else {
                c.stats.queue_depth.set(ctx.now(), 0.0);
                return;
            };
            let flen = frame_len(head.bytes, c.costs.frame_payload, head.next_frame);
            if !c.flow.can_send(flen as u64) {
                let depth = c.sendq.len() as f64;
                c.stats.queue_depth.set(ctx.now(), depth);
                if c.stall_since.is_none() {
                    c.stall_since = Some(ctx.now());
                }
                ctx.probe_emit(|t| ProbeEvent::Gauge {
                    name: format!("net.conn{}.sendq", conn.0),
                    time: t,
                    value: depth,
                });
                return;
            }
            // Credits freed up: close any open stall interval, attributed
            // to the host TX engine the frames were waiting to enter.
            if let Some(from) = c.stall_since.take() {
                let until = ctx.now();
                c.stats.credit_stall += until.saturating_since(from);
                let rid = self.res.host_tx;
                ctx.probe_emit(|_| ProbeEvent::Stall { rid, from, until });
            }
            c.flow.on_frame_sent(flen as u64);
            let first = head.next_frame == 0;
            let msg = head.msg;
            let frame = head.next_frame;
            head.next_frame += 1;
            let finished = head.next_frame == head.frames;
            let mut service = c.costs.per_frame_send
                + Dur::nanos((flen as f64 * c.costs.per_byte_send_ns).round() as u64);
            if first {
                service += c.costs.per_msg_send;
            }
            if finished {
                c.sendq.pop_front();
            }
            c.stats.frames_tx += 1;
            ctx.probe_emit(|t| ProbeEvent::Counter {
                name: "net.frames_tx".to_string(),
                time: t,
                delta: 1.0,
            });
            ctx.use_resource(
                self.res.host_tx,
                service,
                Message::new(Ev::HostTxDone {
                    conn,
                    msg,
                    frame,
                    flen,
                }),
            );
        }
    }

    fn on_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: NetCmd) {
        match cmd {
            NetCmd::Send {
                conn,
                msg_id,
                bytes,
                payload,
            } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    // The connection was cut before this send arrived:
                    // fail it immediately instead of queueing forever.
                    let pid = c.src_pid;
                    ctx.send(
                        pid,
                        Message::new(StreamError {
                            conn,
                            msg_id,
                            bytes,
                            kind: StreamErrorKind::NotConnected,
                        }),
                    );
                    return;
                }
                if self.model == NetModel::Flow {
                    // Fluid fast path: account the send and hand the whole
                    // message to the fluid core after the switch hop. Fault
                    // fates (including crash cuts) are decided there, at
                    // flow granularity.
                    c.stats.msgs_sent += 1;
                    c.stats.bytes_sent += bytes;
                    let d_tx = c.costs.switch_latency + c.costs.prop_delay;
                    let fluid = self.fluid_core();
                    ctx.send_in(
                        d_tx,
                        fluid,
                        Message::new(FluidEv::Arrive {
                            conn,
                            msg: msg_id,
                            bytes,
                            sent_at: ctx.now(),
                            payload,
                        }),
                    );
                    return;
                }
                let frames = frame_count(bytes, c.costs.frame_payload);
                c.pending_meta.insert(
                    msg_id,
                    TxMsgMeta {
                        bytes,
                        frames,
                        sent_at: ctx.now(),
                        payload,
                    },
                );
                c.sendq.push_back(PendingMsg {
                    msg: msg_id,
                    bytes,
                    next_frame: 0,
                    frames,
                });
                c.stats.msgs_sent += 1;
                c.stats.bytes_sent += bytes;
                c.stats.queue_depth.set(ctx.now(), c.sendq.len() as f64);
                self.pump(ctx, conn);
            }
            NetCmd::Consumed { conn, msg_id } => {
                let c = self.rx[conn.0].as_mut().expect("receive half owned here");
                let (bytes, _frames) = c
                    .unconsumed
                    .remove(&msg_id)
                    .expect("consumed an unknown or already-consumed message");
                // The fluid model has no per-frame flow control to repair:
                // consumption is pure bookkeeping.
                if self.model == NetModel::Flow {
                    return;
                }
                // Credits were re-posted at frame arrival; only the window
                // model needs a receive-buffer update at the sender.
                if !c.flow.is_credits() {
                    let ack = c.costs.ack_latency;
                    let tx_core = self.tx_core(conn);
                    ctx.send_in(ack, tx_core, Message::new(Ev::FlowReturn { conn, bytes }));
                }
            }
        }
    }

    /// Frame arrival at the receiving host: claim the receive protocol
    /// engine for the per-frame service.
    fn on_rx_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: u64, flen: u32) {
        let c = self.rx[conn.0].as_ref().expect("receive half owned here");
        let service = c.costs.per_frame_recv
            + Dur::nanos((flen as f64 * c.costs.per_byte_recv_ns).round() as u64);
        ctx.use_resource(
            self.res.host_rx,
            service,
            Message::new(Ev::HostRxFrameDone { conn, msg, flen }),
        );
    }

    fn on_ev(&mut self, ctx: &mut Ctx<'_>, ev: Ev) {
        match ev {
            Ev::HostTxDone {
                conn,
                msg,
                frame,
                flen,
            } => {
                let c = self.tx[conn.0].as_ref().expect("send half owned here");
                let wire_bytes = flen as u64 + c.costs.frame_overhead as u64;
                let service = c.costs.nic_per_frame
                    + Dur::nanos((wire_bytes as f64 * c.costs.wire_ns_per_byte).round() as u64);
                ctx.use_resource(
                    self.res.nic_tx,
                    service,
                    Message::new(Ev::WireDone {
                        conn,
                        msg,
                        frame,
                        flen,
                    }),
                );
            }
            Ev::WireDone {
                conn,
                msg,
                frame,
                flen,
            } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    // Frames of a cut connection die on the wire.
                    return;
                }
                if let Some(d) = c.doomed.get_mut(&msg) {
                    // An already-doomed message's frame draining out of
                    // the stage pipeline: swallow it.
                    d.seen += 1;
                    if d.repaired && d.seen >= d.frames_charged {
                        c.doomed.remove(&msg);
                    }
                    return;
                }
                let mut delay = c.costs.switch_latency + c.costs.prop_delay;
                let arrive = if frame == 0 {
                    let meta = c
                        .pending_meta
                        .remove(&msg)
                        .expect("first frame of unknown message");
                    // The whole message's fate is decided as its first
                    // frame enters the wire; frames always cross in order,
                    // so the verdict covers every later frame too.
                    let now = ctx.now();
                    let fate = match &c.faults {
                        Some(f) => {
                            let kind = if f.cut_at.is_some_and(|t| now >= t) {
                                StreamErrorKind::PeerDead
                            } else {
                                StreamErrorKind::Lost
                            };
                            Some((f.fate(now, ctx.rng()), kind, f.detect))
                        }
                        None => None,
                    };
                    match fate {
                        Some((MsgFate::Drop, kind, detect)) => {
                            // Unemitted frames leave the send queue; only
                            // frames already charged to flow control need
                            // repair when the loss is detected.
                            let frames_charged = match c.sendq.iter().position(|p| p.msg == msg) {
                                Some(i) => {
                                    let p = c.sendq.remove(i).expect("index just found");
                                    p.next_frame
                                }
                                None => meta.frames,
                            };
                            c.doomed.insert(
                                msg,
                                DoomedMsg {
                                    bytes: meta.bytes,
                                    frames_charged,
                                    seen: 1,
                                    repaired: false,
                                    kind,
                                },
                            );
                            ctx.probe_emit(|t| ProbeEvent::Counter {
                                name: "net.fault.dropped".to_string(),
                                time: t,
                                delta: 1.0,
                            });
                            ctx.send_self_in(detect, Message::new(Ev::MsgLost { conn, msg }));
                            return;
                        }
                        Some((MsgFate::Deliver { extra }, _, _)) if extra > Dur::ZERO => {
                            delay += extra;
                            if meta.frames > 1 {
                                c.delayed.insert(
                                    msg,
                                    DelayedMsg {
                                        extra,
                                        frames: meta.frames,
                                        seen: 1,
                                    },
                                );
                            }
                        }
                        _ => {}
                    }
                    Ev::RxFirst {
                        conn,
                        msg,
                        flen,
                        frames: meta.frames,
                        bytes: meta.bytes,
                        sent_at: meta.sent_at,
                        payload: meta.payload,
                    }
                } else {
                    if let Some(d) = c.delayed.get_mut(&msg) {
                        // Later frames of a delayed message get the same
                        // extra latency, preserving intra-message order.
                        delay += d.extra;
                        d.seen += 1;
                        if d.seen >= d.frames {
                            c.delayed.remove(&msg);
                        }
                    }
                    Ev::RxArrive { conn, msg, flen }
                };
                let rx_core = self.rx_core(conn);
                ctx.send_in(delay, rx_core, Message::new(arrive));
            }
            Ev::RxFirst {
                conn,
                msg,
                flen,
                frames,
                bytes,
                sent_at,
                payload,
            } => {
                let c = self.rx[conn.0].as_mut().expect("receive half owned here");
                if c.cut_at.is_some_and(|t| ctx.now() >= t) {
                    // This node fail-stopped: arriving frames fall on the
                    // floor, returning no acks and no credits.
                    return;
                }
                c.msgs.insert(
                    msg,
                    RxMsgState {
                        bytes,
                        frames,
                        frames_arrived: 0,
                        sent_at,
                        payload: Some(payload),
                    },
                );
                self.on_rx_frame(ctx, conn, msg, flen);
            }
            Ev::RxArrive { conn, msg, flen } => {
                let c = self.rx[conn.0].as_ref().expect("receive half owned here");
                if c.cut_at.is_some_and(|t| ctx.now() >= t) {
                    return;
                }
                self.on_rx_frame(ctx, conn, msg, flen);
            }
            Ev::HostRxFrameDone { conn, msg, flen } => {
                let c = self.rx[conn.0].as_mut().expect("receive half owned here");
                let st = c.msgs.get_mut(&msg).expect("frame for unknown message");
                st.frames_arrived += 1;
                c.stats.rx_interrupts += 1;
                ctx.probe_emit(|t| ProbeEvent::Counter {
                    name: "net.rx_interrupts".to_string(),
                    time: t,
                    delta: 1.0,
                });
                let last = st.frames_arrived == st.frames;
                let ack = c.costs.ack_latency;
                if c.flow.is_credits() {
                    // The sockets layer drains the eager buffer and
                    // re-posts the descriptor; the credit update reaches
                    // the sender after the return-path latency.
                    let n = c.flow.on_frame_arrived(flen as u64);
                    if n > 0 {
                        let tx_core = self.tx_core(conn);
                        ctx.send_in(ack, tx_core, Message::new(Ev::CreditArrive { conn, n }));
                    }
                } else {
                    let tx_core = self.tx_core(conn);
                    ctx.send_in(
                        ack,
                        tx_core,
                        Message::new(Ev::AckArrive {
                            conn,
                            frame_bytes: flen as u64,
                        }),
                    );
                }
                if last {
                    let c = self.rx[conn.0].as_ref().expect("receive half owned here");
                    let service = c.costs.per_msg_recv;
                    ctx.use_resource(
                        self.res.host_rx,
                        service,
                        Message::new(Ev::MsgReady { conn, msg }),
                    );
                }
            }
            Ev::MsgReady { conn, msg } => {
                let c = self.rx[conn.0].as_mut().expect("receive half owned here");
                let mut st = c.msgs.remove(&msg).expect("ready for unknown message");
                let payload = st.payload.take().expect("payload present until delivery");
                c.unconsumed.insert(msg, (st.bytes, st.frames));
                c.stats.msgs_delivered += 1;
                c.stats.bytes_delivered += st.bytes;
                c.stats
                    .latency_us
                    .add(ctx.now().since(st.sent_at).as_micros_f64());
                // Cumulative achieved bandwidth of this connection so far
                // (bits delivered / virtual time), as a gauge per delivery.
                let delivered = c.stats.bytes_delivered;
                ctx.probe_emit(|t| ProbeEvent::Gauge {
                    name: format!("net.conn{}.mbps", conn.0),
                    time: t,
                    value: if t == SimTime::ZERO {
                        0.0
                    } else {
                        8.0 * delivered as f64 / t.as_nanos() as f64 * 1_000.0
                    },
                });
                let delivery = Delivery {
                    conn,
                    msg_id: msg,
                    bytes: st.bytes,
                    sent_at: st.sent_at,
                    payload,
                };
                ctx.send(c.dst.pid, Message::new(delivery));
            }
            Ev::AckArrive { conn, frame_bytes } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    return;
                }
                c.flow.on_frame_arrived(frame_bytes);
                self.pump(ctx, conn);
            }
            Ev::CreditArrive { conn, n } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    return;
                }
                c.flow.on_credits_returned(n);
                self.pump(ctx, conn);
            }
            Ev::FlowReturn { conn, bytes } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    return;
                }
                c.flow.on_consumed(bytes);
                self.pump(ctx, conn);
            }
            Ev::MsgLost { conn, msg } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    // ConnCut already failed everything on this link.
                    return;
                }
                let Some(d) = c.doomed.get_mut(&msg) else {
                    return;
                };
                let (bytes, kind, frames_charged) = (d.bytes, d.kind, d.frames_charged);
                if d.seen >= frames_charged {
                    c.doomed.remove(&msg);
                } else {
                    d.repaired = true;
                }
                // Repair flow control for exactly the charged frames. The
                // receiver never saw them, so its descriptor ring is
                // untouched: the credits model gets its loaned credits
                // back directly, the window model frees the in-flight
                // bytes frame by frame.
                if c.flow.is_credits() {
                    c.flow.on_credits_returned(frames_charged);
                } else {
                    let fp = c.costs.frame_payload;
                    for i in 0..frames_charged {
                        c.flow.on_frame_arrived(frame_len(bytes, fp, i) as u64);
                    }
                }
                let pid = c.src_pid;
                ctx.probe_emit(|t| ProbeEvent::Counter {
                    name: "net.fault.lost".to_string(),
                    time: t,
                    delta: 1.0,
                });
                ctx.send(
                    pid,
                    Message::new(StreamError {
                        conn,
                        msg_id: msg,
                        bytes,
                        kind,
                    }),
                );
                self.pump(ctx, conn);
            }
            Ev::ConnCut { conn } => {
                let c = self.tx[conn.0].as_mut().expect("send half owned here");
                if c.dead {
                    return;
                }
                c.dead = true;
                c.stall_since = None;
                c.delayed.clear();
                // Everything queued or in flight fails. Collect ids into
                // an ordered map first — HashMap iteration order must not
                // leak into the event sequence.
                let mut failed: BTreeMap<u64, u64> = BTreeMap::new();
                for (id, m) in c.pending_meta.drain() {
                    failed.insert(id, m.bytes);
                }
                for p in c.sendq.drain(..) {
                    failed.insert(p.msg, p.bytes);
                }
                for (id, d) in c.doomed.drain() {
                    failed.insert(id, d.bytes);
                }
                let pid = c.src_pid;
                ctx.probe_emit(|t| ProbeEvent::Counter {
                    name: "net.conn.cut".to_string(),
                    time: t,
                    delta: 1.0,
                });
                for (msg_id, bytes) in failed {
                    ctx.send(
                        pid,
                        Message::new(StreamError {
                            conn,
                            msg_id,
                            bytes,
                            kind: StreamErrorKind::PeerDead,
                        }),
                    );
                }
            }
        }
    }

    /// Endpoint-side handlers of the fluid engine: completed flows arrive
    /// as [`FluidEv::Deliver`] at the destination node's core, failed ones
    /// as [`FluidEv::Failed`] at the source node's core.
    fn on_fluid(&mut self, ctx: &mut Ctx<'_>, ev: FluidEv) {
        match ev {
            FluidEv::Deliver {
                conn,
                msg,
                bytes,
                sent_at,
                payload,
            } => {
                let c = self.rx[conn.0].as_mut().expect("receive half owned here");
                if c.cut_at.is_some_and(|t| ctx.now() >= t) {
                    // This node fail-stopped while the delivery was in its
                    // final hop: it falls on the floor, as arriving frames
                    // do under the packet model.
                    return;
                }
                let frames = c.costs.frames_for(bytes);
                c.unconsumed.insert(msg, (bytes, frames));
                c.stats.msgs_delivered += 1;
                c.stats.bytes_delivered += bytes;
                c.stats
                    .latency_us
                    .add(ctx.now().since(sent_at).as_micros_f64());
                let delivered = c.stats.bytes_delivered;
                ctx.probe_emit(|t| ProbeEvent::Gauge {
                    name: format!("net.conn{}.mbps", conn.0),
                    time: t,
                    value: if t == SimTime::ZERO {
                        0.0
                    } else {
                        8.0 * delivered as f64 / t.as_nanos() as f64 * 1_000.0
                    },
                });
                let delivery = Delivery {
                    conn,
                    msg_id: msg,
                    bytes,
                    sent_at,
                    payload,
                };
                ctx.send(c.dst.pid, Message::new(delivery));
            }
            FluidEv::Failed {
                conn,
                msg,
                bytes,
                kind,
            } => {
                let c = self.tx[conn.0].as_ref().expect("send half owned here");
                let pid = c.src_pid;
                ctx.probe_emit(|t| ProbeEvent::Counter {
                    name: "net.fault.lost".to_string(),
                    time: t,
                    delta: 1.0,
                });
                ctx.send(
                    pid,
                    Message::new(StreamError {
                        conn,
                        msg_id: msg,
                        bytes,
                        kind,
                    }),
                );
            }
            FluidEv::Arrive { .. } | FluidEv::Complete { .. } => {
                panic!("fluid-core event routed to a node core")
            }
        }
    }
}

impl Process for NodeCore {
    fn name(&self) -> String {
        format!("net-core{}", self.node.0)
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // The switch's on_start (which seals the registry) always runs
        // before spawned cores start.
        let reg = self.registry.lock().expect("registry lock");
        assert!(reg.sealed, "core started before the switch");
        self.tx = reg
            .conns
            .iter()
            .map(|spec| {
                (spec.src.node == self.node).then(|| TxConn {
                    costs: Arc::clone(&spec.costs),
                    flow: Flow::new(spec.costs.flow, spec.costs.frame_payload),
                    sendq: VecDeque::new(),
                    pending_meta: HashMap::new(),
                    stats: ConnStats::default(),
                    stall_since: None,
                    faults: reg
                        .faults
                        .as_ref()
                        .and_then(|p| p.compile(spec.src.node.0, spec.dst.node.0)),
                    src_pid: spec.src.pid,
                    dead: false,
                    doomed: HashMap::new(),
                    delayed: HashMap::new(),
                })
            })
            .collect();
        self.rx = reg
            .conns
            .iter()
            .map(|spec| {
                (spec.dst.node == self.node).then(|| RxConn {
                    dst: spec.dst,
                    costs: Arc::clone(&spec.costs),
                    flow: Flow::new(spec.costs.flow, spec.costs.frame_payload),
                    msgs: HashMap::new(),
                    unconsumed: HashMap::new(),
                    stats: ConnStats::default(),
                    cut_at: reg.faults.as_ref().and_then(|p| p.crash_time(self.node.0)),
                })
            })
            .collect();
        // Crash-detection timers for connections an endpoint crash will
        // cut: everything queued on them fails at crash + detect. Under
        // the flow model the fluid core owns all in-flight state, so it
        // fails crashed flows itself and these timers stay unscheduled.
        if self.model == NetModel::Flow {
            return;
        }
        let cuts: Vec<(usize, Dur)> = self
            .tx
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let f = t.as_ref()?.faults.as_ref()?;
                let cut_at = f.cut_at?;
                Some((i, Dur::nanos(cut_at.as_nanos()) + f.detect))
            })
            .collect();
        for (i, at) in cuts {
            ctx.send_self_in(at, Message::new(Ev::ConnCut { conn: ConnId(i) }));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // Internal events outnumber commands (one send fans out into
        // several wire/host events), so try the common type first.
        match msg.downcast::<Ev>() {
            Ok(ev) => self.on_ev(ctx, ev),
            Err(other) => match other.downcast::<NetCmd>() {
                Ok(cmd) => self.on_cmd(ctx, cmd),
                Err(other) => match other.downcast::<FluidEv>() {
                    Ok(fev) => self.on_fluid(ctx, fev),
                    Err(_) => panic!("net core received an unknown message type"),
                },
            },
        }
    }
}
