//! Property tests over the network engine: conservation, per-connection
//! FIFO delivery, and latency sanity for arbitrary message batches.

#![cfg(test)]

use crate::cluster::Cluster;
use crate::engine::{ConnId, Delivery, NodeId};
use crate::params::TransportKind;
use hpsock_sim::{Ctx, Message, Process, Sim};
use proptest::prelude::*;

/// Sends a fixed batch of (size, tag) messages on one connection.
struct BatchSender {
    net: crate::engine::Network,
    conn: ConnId,
    batch: Vec<(u64, u64)>,
}
impl Process for BatchSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for &(bytes, tag) in &self.batch {
            self.net.send(ctx, self.conn, bytes, Message::new(tag));
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
}

/// Records (tag, bytes, latency) per delivery, consuming immediately.
struct BatchSink {
    net: crate::engine::Network,
    got: Vec<(u64, u64)>,
    latencies_ns: Vec<u64>,
}
impl Process for BatchSink {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let d = msg.downcast::<Delivery>().expect("delivery");
        self.net.consumed(ctx, d.conn, d.msg_id);
        let tag = d.payload.downcast::<u64>().expect("tag");
        self.got.push((tag, d.bytes));
        self.latencies_ns
            .push(ctx.now().since(d.sent_at).as_nanos());
    }
}

fn run_batch(kind: TransportKind, batch: Vec<(u64, u64)>) -> (Vec<(u64, u64)>, Vec<u64>) {
    let mut sim = Sim::new(99);
    let cluster = Cluster::build(&mut sim, 2);
    let net = cluster.network();
    let sender = sim.add_process(Box::new(BatchSender {
        net: net.clone(),
        conn: ConnId(0),
        batch: batch.clone(),
    }));
    let sink = sim.add_process(Box::new(BatchSink {
        net: net.clone(),
        got: vec![],
        latencies_ns: vec![],
    }));
    net.connect(
        cluster.endpoint(NodeId(0), sender),
        cluster.endpoint(NodeId(1), sink),
        kind,
    );
    sim.run();
    let s: &BatchSink = sim.process(sink).unwrap();
    (s.got.clone(), s.latencies_ns.clone())
}

fn batch_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1u64..300_000, any::<u64>()), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message arrives exactly once, in order, with its exact byte
    /// count, on both flow-control regimes.
    #[test]
    fn delivery_is_exactly_once_and_fifo(batch in batch_strategy()) {
        for kind in [TransportKind::SocketVia, TransportKind::KTcp] {
            let (got, _) = run_batch(kind, batch.clone());
            let expect: Vec<(u64, u64)> =
                batch.iter().map(|&(b, t)| (t, b)).collect();
            prop_assert_eq!(&got, &expect, "{:?}", kind);
        }
    }

    /// One-way latency of every message is at least the unloaded
    /// closed-form latency for its size (queueing can only add).
    #[test]
    fn latency_lower_bound(batch in batch_strategy()) {
        let kind = TransportKind::SocketVia;
        let costs = crate::params::PathCosts::for_kind(kind);
        let (got, lats) = run_batch(kind, batch);
        for ((_tag, bytes), lat_ns) in got.iter().zip(&lats) {
            let floor = costs.oneway_latency(*bytes).as_nanos();
            prop_assert!(
                *lat_ns + 2 >= floor,
                "{} B took {} < floor {}", bytes, lat_ns, floor
            );
        }
    }

    /// The engine is deterministic for any batch: same batch, same trace.
    #[test]
    fn engine_deterministic(batch in batch_strategy()) {
        let (a, la) = run_batch(TransportKind::KTcp, batch.clone());
        let (b, lb) = run_batch(TransportKind::KTcp, batch);
        prop_assert_eq!(a, b);
        prop_assert_eq!(la, lb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The max-min allocation is feasible (no link over capacity) and
    /// Pareto-optimal (every flow is pinned by some saturated link, so no
    /// flow's rate can grow without shrinking another's). Link graphs are
    /// arbitrary: paths may repeat links, weights and capacities span
    /// three decades.
    #[test]
    fn max_min_allocation_conserves_capacity_and_is_pareto(
        links in 1usize..6,
        caps_raw in proptest::collection::vec(100u64..100_000, 6),
        flows_raw in proptest::collection::vec(
            proptest::collection::vec((0usize..6, 10u64..10_000), 1..5), 1..8),
    ) {
        let caps: Vec<f64> = caps_raw[..links].iter().map(|&c| c as f64 / 1_000.0).collect();
        let flows: Vec<Vec<(usize, f64)>> = flows_raw
            .iter()
            .map(|p| p.iter().map(|&(l, w)| (l % links, w as f64 / 1_000.0)).collect())
            .collect();
        let rates = crate::fluid::max_min_rates(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        let mut used = vec![0.0f64; caps.len()];
        for (f, path) in flows.iter().enumerate() {
            prop_assert!(
                rates[f].is_finite() && rates[f] > 0.0,
                "flow {} rate {}", f, rates[f]
            );
            for &(l, w) in path {
                used[l] += rates[f] * w;
            }
        }
        for l in 0..caps.len() {
            prop_assert!(
                used[l] <= caps[l] * (1.0 + 1e-9),
                "link {} over capacity: {} > {}", l, used[l], caps[l]
            );
        }
        for (f, path) in flows.iter().enumerate() {
            prop_assert!(
                path.iter().any(|&(l, _)| used[l] >= caps[l] * (1.0 - 1e-6)),
                "flow {} crosses no saturated link (rates {:?}, used {:?}, caps {:?})",
                f, &rates, &used, &caps
            );
        }
    }
}

#[test]
fn zero_byte_message_is_delivered() {
    let (got, lats) = run_batch(TransportKind::SocketVia, vec![(0, 7)]);
    assert_eq!(got, vec![(7, 0)]);
    assert!(lats[0] > 0);
}

#[test]
fn interleaved_connections_do_not_cross_deliver() {
    // Two senders on two connections to one sink: tags must partition.
    let mut sim = Sim::new(5);
    let cluster = Cluster::build(&mut sim, 3);
    let net = cluster.network();
    let s1 = sim.add_process(Box::new(BatchSender {
        net: net.clone(),
        conn: ConnId(0),
        batch: (0..20).map(|i| (1_000, i)).collect(),
    }));
    let s2 = sim.add_process(Box::new(BatchSender {
        net: net.clone(),
        conn: ConnId(1),
        batch: (100..120).map(|i| (2_000, i)).collect(),
    }));
    let sink = sim.add_process(Box::new(BatchSink {
        net: net.clone(),
        got: vec![],
        latencies_ns: vec![],
    }));
    net.connect(
        cluster.endpoint(NodeId(0), s1),
        cluster.endpoint(NodeId(2), sink),
        TransportKind::SocketVia,
    );
    net.connect(
        cluster.endpoint(NodeId(1), s2),
        cluster.endpoint(NodeId(2), sink),
        TransportKind::KTcp,
    );
    sim.run();
    let s: &BatchSink = sim.process(sink).unwrap();
    let low: Vec<u64> = s
        .got
        .iter()
        .filter(|(t, _)| *t < 100)
        .map(|(t, _)| *t)
        .collect();
    let high: Vec<u64> = s
        .got
        .iter()
        .filter(|(t, _)| *t >= 100)
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(low, (0..20).collect::<Vec<_>>(), "conn 0 FIFO");
    assert_eq!(high, (100..120).collect::<Vec<_>>(), "conn 1 FIFO");
}
