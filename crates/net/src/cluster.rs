//! Cluster construction: registers per-node resources with the simulation
//! kernel and installs the network engine.
//!
//! The default node mirrors the paper's testbed: Dell Precision 420,
//! 2 × 1 GHz Pentium III, cLAN 1000 adapter on 32-bit/33-MHz PCI, all nodes
//! on one cLAN 5300 switch (non-blocking crossbar).

use crate::engine::{Endpoint, NetEngine, Network, NodeResources};
use hpsock_sim::{ProcessId, ResourceId, Sim};

/// Per-node hardware description.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Application CPU cores (the paper's nodes are dual-processor).
    pub cores: usize,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec { cores: 2 }
    }
}

/// A built cluster: node resources plus the network handle.
pub struct Cluster {
    nodes: Vec<NodeResources>,
    net: Network,
}

impl Cluster {
    /// Build a cluster of `n` default nodes inside `sim`.
    pub fn build(sim: &mut Sim, n: usize) -> Cluster {
        Cluster::build_with(sim, &vec![NodeSpec::default(); n])
    }

    /// Build a cluster with explicit per-node specs.
    pub fn build_with(sim: &mut Sim, specs: &[NodeSpec]) -> Cluster {
        assert!(!specs.is_empty(), "a cluster needs at least one node");
        let nodes: Vec<NodeResources> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeResources {
                host_tx: sim.add_resource(format!("node{i}.host_tx"), 1),
                nic_tx: sim.add_resource(format!("node{i}.nic_tx"), 1),
                host_rx: sim.add_resource(format!("node{i}.host_rx"), 1),
                cpu: sim.add_resource(format!("node{i}.cpu"), spec.cores),
            })
            .collect();
        let net = NetEngine::install(sim, nodes.clone());
        Cluster { nodes, net }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The network handle (clone freely into application processes).
    pub fn network(&self) -> Network {
        self.net.clone()
    }

    /// The application CPU resource of node `node`.
    pub fn cpu(&self, node: crate::engine::NodeId) -> ResourceId {
        self.nodes[node.0].cpu
    }

    /// All per-node resources (for custom processes).
    pub fn node_resources(&self, node: crate::engine::NodeId) -> NodeResources {
        self.nodes[node.0]
    }

    /// Convenience: build an endpoint handle.
    pub fn endpoint(&self, node: crate::engine::NodeId, pid: ProcessId) -> Endpoint {
        assert!(node.0 < self.nodes.len(), "endpoint on unknown node");
        Endpoint { node, pid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConnId, Delivery, NodeId};
    use crate::params::{PathCosts, TransportKind};
    use hpsock_sim::{Ctx, Message, Process, SimTime};

    /// Sends `count` messages of `bytes` each, one at a time (the next send
    /// is issued when the previous delivery is echoed back by the sink via
    /// a plain event), and records per-message one-way times.
    struct Blaster {
        net: Network,
        conn: ConnId,
        bytes: u64,
        count: u32,
        sent: u32,
    }
    impl Process for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.net.send(ctx, self.conn, self.bytes, Message::new(()));
            self.sent = 1;
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            if self.sent < self.count {
                self.net.send(ctx, self.conn, self.bytes, Message::new(()));
                self.sent += 1;
            }
        }
    }

    /// Consumes deliveries immediately and pings the sender.
    struct Sink {
        net: Network,
        sender: Option<hpsock_sim::ProcessId>,
        oneway_us: Vec<f64>,
        last_delivery: SimTime,
        delivered: u64,
    }
    impl Process for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let d = msg.downcast::<Delivery>().expect("delivery");
            self.oneway_us
                .push(ctx.now().since(d.sent_at).as_micros_f64());
            self.last_delivery = ctx.now();
            self.delivered += d.bytes;
            self.net.consumed(ctx, d.conn, d.msg_id);
            if let Some(s) = self.sender {
                ctx.send(s, Message::new(()));
            }
        }
    }

    fn one_way(kind: TransportKind, bytes: u64) -> f64 {
        let mut sim = hpsock_sim::Sim::new(7);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let sink = sim.add_process(Box::new(Sink {
            net: net.clone(),
            sender: None,
            oneway_us: vec![],
            last_delivery: SimTime::ZERO,
            delivered: 0,
        }));
        let blaster = sim.add_process(Box::new(Blaster {
            net: net.clone(),
            conn: ConnId(0),
            bytes,
            count: 1,
            sent: 0,
        }));
        net.connect(
            cluster.endpoint(NodeId(0), blaster),
            cluster.endpoint(NodeId(1), sink),
            kind,
        );
        sim.run();
        let s: &Sink = sim.process(sink).unwrap();
        s.oneway_us[0]
    }

    #[test]
    fn unloaded_latency_matches_closed_form() {
        for kind in TransportKind::PAPER_SET {
            for bytes in [4u64, 256, 1024, 4096, 16_384] {
                let sim_us = one_way(kind, bytes);
                let model_us = PathCosts::for_kind(kind)
                    .oneway_latency(bytes)
                    .as_micros_f64();
                let err = (sim_us - model_us).abs() / model_us;
                assert!(
                    err < 0.01,
                    "{} {}B: sim {:.2}us vs model {:.2}us",
                    kind.label(),
                    bytes,
                    sim_us,
                    model_us
                );
            }
        }
    }

    #[test]
    fn socketvia_small_latency_is_9_5us() {
        let us = one_way(TransportKind::SocketVia, 4);
        assert!((us - 9.5).abs() < 0.5, "got {us}");
    }

    #[test]
    fn tcp_is_about_5x_socketvia() {
        let tcp = one_way(TransportKind::KTcp, 4);
        let sv = one_way(TransportKind::SocketVia, 4);
        let r = tcp / sv;
        assert!((4.5..5.5).contains(&r), "ratio {r}");
    }

    fn streamed_bandwidth_mbps(kind: TransportKind, bytes: u64, count: u32) -> f64 {
        let mut sim = hpsock_sim::Sim::new(7);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let sink = sim.add_process(Box::new(Sink {
            net: net.clone(),
            sender: None,
            oneway_us: vec![],
            last_delivery: SimTime::ZERO,
            delivered: 0,
        }));
        let blaster = sim.add_process(Box::new(BurstBlaster {
            net: net.clone(),
            conn: ConnId(0),
            bytes,
            count,
        }));
        net.connect(
            cluster.endpoint(NodeId(0), blaster),
            cluster.endpoint(NodeId(1), sink),
            kind,
        );
        sim.run();
        let s: &Sink = sim.process(sink).unwrap();
        assert_eq!(s.delivered, bytes * count as u64, "all bytes delivered");
        8.0 * s.delivered as f64 / s.last_delivery.as_nanos() as f64 * 1_000.0
    }

    /// Submits everything up front; flow control paces the stream.
    struct BurstBlaster {
        net: Network,
        conn: ConnId,
        bytes: u64,
        count: u32,
    }
    impl Process for BurstBlaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.count {
                self.net.send(ctx, self.conn, self.bytes, Message::new(()));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    #[test]
    fn streamed_bandwidth_approaches_paper_peaks() {
        let via = streamed_bandwidth_mbps(TransportKind::Via, 65_536, 200);
        let sv = streamed_bandwidth_mbps(TransportKind::SocketVia, 65_536, 200);
        let tcp = streamed_bandwidth_mbps(TransportKind::KTcp, 65_536, 200);
        assert!((via - 795.0).abs() < 40.0, "VIA {via}");
        assert!((sv - 763.0).abs() < 40.0, "SocketVIA {sv}");
        assert!((tcp - 510.0).abs() < 40.0, "TCP {tcp}");
    }

    #[test]
    fn byte_conservation_under_flow_control() {
        // Many small messages through a credit-limited path all arrive.
        let bw = streamed_bandwidth_mbps(TransportKind::SocketVia, 512, 500);
        assert!(bw > 0.0);
    }
}
