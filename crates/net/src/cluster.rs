//! Cluster construction: registers per-node resources with the simulation
//! kernel and installs the network engine.
//!
//! The default node mirrors the paper's testbed: Dell Precision 420,
//! 2 × 1 GHz Pentium III, cLAN 1000 adapter on 32-bit/33-MHz PCI, all nodes
//! on one cLAN 5300 switch (non-blocking crossbar).

use crate::engine::{Endpoint, NetSwitch, Network, NodeResources};
use crate::fault::{self, FaultPlan, RecoveryCfg};
use crate::netmodel::NetModel;
use hpsock_sim::{Dur, ProcessId, ResourceId, ShardPlan, Sim, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Extra switch latency a connection pays when its endpoints sit in
/// different racks of a hierarchical topology: one additional store-and-
/// forward hop through the core switch (1 µs, of the same order as the
/// cLAN leaf-switch latency). Applied by `Network::connect_with` for both
/// network models.
pub const INTER_RACK_HOP: Dur = Dur::nanos(1_000);

/// Physical shape of a cluster, fixed at build time.
///
/// The packet engine models contention at the hosts only (the paper's
/// single cLAN 5300 crossbar is non-blocking), so [`Topology::Flat`]
/// matches the testbed. [`Topology::Racks`] adds per-rack leaf switches
/// under an oversubscribed core: cross-rack connections pay
/// [`INTER_RACK_HOP`] extra latency under either model, and under the
/// flow model every cross-rack flow additionally shares its source rack's
/// uplink and destination rack's downlink, each of capacity
/// `per_rack × node_wire_rate / oversub`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// All nodes on one non-blocking crossbar (the paper's testbed).
    #[default]
    Flat,
    /// `racks × per_rack` nodes, numbered rack-major, behind per-rack leaf
    /// switches with oversubscribed core uplinks.
    Racks {
        /// Number of racks.
        racks: usize,
        /// Nodes per rack.
        per_rack: usize,
        /// Core oversubscription factor (≥ 1.0): a rack's uplink carries
        /// `per_rack / oversub` node-rates of traffic.
        oversub: f64,
    },
}

impl Topology {
    /// The rack `node` sits in (0 for every node of a flat cluster).
    pub fn rack_of(&self, node: usize) -> usize {
        match self {
            Topology::Flat => 0,
            Topology::Racks { per_rack, .. } => node / per_rack,
        }
    }

    /// True when two nodes sit in different racks.
    pub fn inter_rack(&self, a: usize, b: usize) -> bool {
        !matches!(self, Topology::Flat) && self.rack_of(a) != self.rack_of(b)
    }
}

/// Strictly parse a core oversubscription factor: a finite number ≥ 1.
/// Anything else is a hard error naming `HPSOCK_OVERSUB`.
pub fn parse_oversub(raw: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 1.0 => Ok(v),
        _ => Err(format!(
            "HPSOCK_OVERSUB must be a finite factor >= 1, got {raw:?}"
        )),
    }
}

/// The `HPSOCK_OVERSUB` core oversubscription factor (default 4, a common
/// datacenter leaf/spine ratio). Invalid values abort with a clear
/// message rather than silently defaulting.
pub fn configured_oversub() -> f64 {
    match std::env::var("HPSOCK_OVERSUB") {
        Ok(raw) => parse_oversub(&raw).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => 4.0,
    }
}

/// Per-node hardware description.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Application CPU cores (the paper's nodes are dual-processor).
    pub cores: usize,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec { cores: 2 }
    }
}

/// A built cluster: node resources plus the network handle.
pub struct Cluster {
    nodes: Vec<NodeResources>,
    net: Network,
    /// The fault plan active when the cluster was built (from
    /// `HPSOCK_FAULTS` or a scoped [`fault::with_plan`] override); `None`
    /// keeps the engine's fault paths entirely cold.
    faults: Option<Arc<FaultPlan>>,
}

impl Cluster {
    /// Build a cluster of `n` default nodes inside `sim`.
    pub fn build(sim: &mut Sim, n: usize) -> Cluster {
        Cluster::build_with(sim, &vec![NodeSpec::default(); n])
    }

    /// Build a cluster with explicit per-node specs.
    pub fn build_with(sim: &mut Sim, specs: &[NodeSpec]) -> Cluster {
        assert!(!specs.is_empty(), "a cluster needs at least one node");
        let nodes: Vec<NodeResources> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeResources {
                host_tx: sim.add_resource(format!("node{i}.host_tx"), 1),
                nic_tx: sim.add_resource(format!("node{i}.nic_tx"), 1),
                host_rx: sim.add_resource(format!("node{i}.host_rx"), 1),
                cpu: sim.add_resource(format!("node{i}.cpu"), spec.cores),
            })
            .collect();
        let net = NetSwitch::install(sim, nodes.clone());
        let faults = fault::configured_plan();
        if let Some(p) = &faults {
            net.registry.lock().expect("registry lock").faults = Some(Arc::clone(p));
        }
        Cluster { nodes, net, faults }
    }

    /// The fault plan this cluster was built under, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.clone()
    }

    /// Recovery parameters for fault-aware stream layers; `None` when no
    /// faults are injected (recovery machinery should then stay inert).
    pub fn fault_recovery(&self) -> Option<RecoveryCfg> {
        self.faults.as_ref().map(|p| p.recovery)
    }

    /// Scheduled fail-stop time of `node` under the active fault plan.
    pub fn crash_time(&self, node: crate::engine::NodeId) -> Option<SimTime> {
        self.faults.as_ref().and_then(|p| p.crash_time(node.0))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The network handle (clone freely into application processes).
    pub fn network(&self) -> Network {
        self.net.clone()
    }

    /// The application CPU resource of node `node`.
    pub fn cpu(&self, node: crate::engine::NodeId) -> ResourceId {
        self.nodes[node.0].cpu
    }

    /// All per-node resources (for custom processes).
    pub fn node_resources(&self, node: crate::engine::NodeId) -> NodeResources {
        self.nodes[node.0]
    }

    /// Convenience: build an endpoint handle.
    pub fn endpoint(&self, node: crate::engine::NodeId, pid: ProcessId) -> Endpoint {
        assert!(node.0 < self.nodes.len(), "endpoint on unknown node");
        Endpoint { node, pid }
    }

    /// Build a [`ShardPlan`] that partitions the simulation by *node*:
    /// `node_to_shard[i]` places node `i` — its engine core, its four
    /// resources, and every application process with a connection endpoint
    /// on it — onto that shard. Processes that are not connection
    /// endpoints (drivers, collectors) must appear in `pins`
    /// (`(pid, shard)`); resolution fails loudly otherwise.
    ///
    /// The lookahead matrix is derived from the registered connections:
    /// data frames cross shard `a` → `b` no faster than the cheapest
    /// `switch_latency + prop_delay` among `a`→`b` connections, and
    /// acknowledgements/credits cross `a` → `b` no faster than the
    /// cheapest `ack_latency` among connections *from* `b` *to* `a`.
    /// Call after every `connect`; later connections would not be
    /// accounted for.
    ///
    /// Zero-delay application sends (`ctx.send` between processes) are
    /// only safe *within* a shard, so the caller must co-locate any pair
    /// of processes that message each other directly.
    pub fn shard_plan(
        &self,
        shards: usize,
        node_to_shard: Vec<usize>,
        pins: Vec<(ProcessId, usize)>,
    ) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        assert_eq!(
            node_to_shard.len(),
            self.nodes.len(),
            "node_to_shard must cover every node"
        );
        for (i, &s) in node_to_shard.iter().enumerate() {
            assert!(
                s < shards,
                "node {i} assigned to shard {s}, but there are only {shards} shards"
            );
        }
        // Lookahead and link naming from the sealed-to-be topology.
        let mut lookahead = vec![vec![u64::MAX; shards]; shards];
        let mut link_name = vec![vec![String::new(); shards]; shards];
        {
            let reg = self.net.registry.lock().expect("registry lock");
            if reg.model == NetModel::Flow {
                // Under the fluid model all cross-node traffic flows
                // through the fluid core, which the plan pins to shard 0:
                // submissions cross `src → 0` after switch+prop, delivered
                // flows cross `0 → dst` after the minimum delivery
                // residual, and fault notices cross `0 → src` after the
                // loss-detection latency. No packet-era data/ack edges
                // exist.
                for (ci, c) in reg.conns.iter().enumerate() {
                    let (sa, sb) = (node_to_shard[c.src.node.0], node_to_shard[c.dst.node.0]);
                    let d_tx = crate::fluid::tx_hop(&c.costs).as_nanos();
                    if sa != 0 && d_tx < lookahead[sa][0] {
                        lookahead[sa][0] = d_tx;
                        link_name[sa][0] =
                            format!("conn{ci} node{} -> fluid core (flow arrival)", c.src.node.0);
                    }
                    let drx = crate::fluid::min_delivery(&c.costs).as_nanos();
                    if sb != 0 && drx < lookahead[0][sb] {
                        lookahead[0][sb] = drx;
                        link_name[0][sb] = format!(
                            "fluid core -> conn{ci} node{} (flow delivery)",
                            c.dst.node.0
                        );
                    }
                    if sa != 0 {
                        if let Some(f) = reg
                            .faults
                            .as_ref()
                            .and_then(|p| p.compile(c.src.node.0, c.dst.node.0))
                        {
                            let det = f.detect.as_nanos().max(1);
                            if det < lookahead[0][sa] {
                                lookahead[0][sa] = det;
                                link_name[0][sa] = format!(
                                    "fluid core -> conn{ci} node{} (fault notice)",
                                    c.src.node.0
                                );
                            }
                        }
                    }
                }
            } else {
                for (ci, c) in reg.conns.iter().enumerate() {
                    let (sa, sb) = (node_to_shard[c.src.node.0], node_to_shard[c.dst.node.0]);
                    if sa == sb {
                        continue;
                    }
                    // Data path: frames src -> dst after switch + propagation.
                    let data = c.costs.switch_latency.as_nanos() + c.costs.prop_delay.as_nanos();
                    if data < lookahead[sa][sb] {
                        lookahead[sa][sb] = data;
                        link_name[sa][sb] = format!(
                            "conn{ci} node{} -> node{} (data path)",
                            c.src.node.0, c.dst.node.0
                        );
                    }
                    // Ack/credit path: dst -> src after the ack latency.
                    let ack = c.costs.ack_latency.as_nanos();
                    if ack < lookahead[sb][sa] {
                        lookahead[sb][sa] = ack;
                        link_name[sb][sa] = format!(
                            "conn{ci} node{} -> node{} (ack path)",
                            c.src.node.0, c.dst.node.0
                        );
                    }
                }
            }
        }
        let node_to_shard = Arc::new(node_to_shard);
        let pins: Arc<HashMap<usize, usize>> =
            Arc::new(pins.into_iter().map(|(p, s)| (p.0, s)).collect());
        let resolve_net = self.net.clone();
        let resolve_nodes = Arc::clone(&node_to_shard);
        let resolve_pins = Arc::clone(&pins);
        let res_nodes: Arc<Vec<NodeResources>> = Arc::new(self.nodes.clone());
        let res_shards = Arc::clone(&node_to_shard);
        let describe_names = Arc::new(link_name);
        ShardPlan {
            shards,
            // Lazy: core pids exist only once the switch's `on_start` has
            // run, which `run_sharded` guarantees before resolving.
            resolve_pid: Arc::new(move |pid: ProcessId| {
                if let Some(&s) = resolve_pins.get(&pid.0) {
                    return s;
                }
                if pid == resolve_net.switch_pid {
                    return 0; // handles no events; placement is moot
                }
                let route = resolve_net
                    .route
                    .get()
                    .expect("shard plan resolved before the simulation started");
                if route.fluid_core == Some(pid) {
                    return 0; // the fluid core is always pinned to shard 0
                }
                for (node, &core) in route.core_of_node.iter().enumerate() {
                    if core == pid {
                        return resolve_nodes[node];
                    }
                }
                let reg = resolve_net.registry.lock().expect("registry lock");
                for c in reg.conns.iter() {
                    if c.src.pid == pid {
                        return resolve_nodes[c.src.node.0];
                    }
                    if c.dst.pid == pid {
                        return resolve_nodes[c.dst.node.0];
                    }
                }
                panic!(
                    "process {pid:?} is not a connection endpoint and has no pin \
                     in the shard plan: add it to `pins`"
                );
            }),
            resolve_rid: Arc::new(move |rid: ResourceId| {
                for (node, r) in res_nodes.iter().enumerate() {
                    if rid == r.host_tx || rid == r.nic_tx || rid == r.host_rx || rid == r.cpu {
                        return res_shards[node];
                    }
                }
                panic!(
                    "resource {rid:?} does not belong to any cluster node; \
                     shard plans cover only cluster-built resources"
                );
            }),
            lookahead: Arc::new(lookahead),
            describe_link: Arc::new(move |a, b| {
                if describe_names[a][b].is_empty() {
                    format!("no connection from shard {a} to shard {b}")
                } else {
                    describe_names[a][b].clone()
                }
            }),
        }
    }

    /// [`Cluster::shard_plan`] with nodes split into `shards` contiguous
    /// groups of near-equal size — the right partition whenever *all*
    /// inter-process traffic flows through registered connections (e.g.
    /// the two-node micro-benchmark topologies). Simulations with
    /// zero-delay `ctx.send` edges between nodes need a hand-built
    /// `node_to_shard` that co-locates those endpoints instead.
    pub fn even_shard_plan(&self, shards: usize) -> ShardPlan {
        let n = self.nodes.len();
        let shards = shards.min(n).max(1);
        let node_to_shard = (0..n).map(|i| i * shards / n).collect();
        self.shard_plan(shards, node_to_shard, vec![])
    }

    /// Build a rack-structured cluster: `racks × per_rack` default nodes,
    /// numbered rack-major (rack `r` holds nodes `r*per_rack ..
    /// (r+1)*per_rack`). The big-topology experiments use this shape —
    /// enough nodes that the sharded kernel's safe windows hold real work.
    pub fn build_racks(sim: &mut Sim, racks: usize, per_rack: usize) -> Cluster {
        assert!(
            racks >= 1 && per_rack >= 1,
            "a rack cluster needs at least one rack of at least one node"
        );
        Cluster::build(sim, racks * per_rack)
    }

    /// [`Cluster::build_racks`] with a hierarchical topology installed:
    /// per-rack leaf switches behind a core oversubscribed by `oversub`
    /// (see [`Topology::Racks`]). Cross-rack connections registered
    /// afterwards pay [`INTER_RACK_HOP`] extra switch latency, and under
    /// `HPSOCK_NETMODEL=flow` share the rack uplinks. `build_racks` itself
    /// stays flat so existing figures and digests are untouched.
    pub fn build_racks_hier(sim: &mut Sim, racks: usize, per_rack: usize, oversub: f64) -> Cluster {
        assert!(
            oversub.is_finite() && oversub >= 1.0,
            "oversubscription must be a finite factor >= 1, got {oversub}"
        );
        let cluster = Cluster::build_racks(sim, racks, per_rack);
        cluster.net.registry.lock().expect("registry lock").topology = Topology::Racks {
            racks,
            per_rack,
            oversub,
        };
        cluster
    }

    /// The topology this cluster was built with.
    pub fn topology(&self) -> Topology {
        self.net.registry.lock().expect("registry lock").topology
    }

    /// [`Cluster::shard_plan`] that splits *whole racks* across shards:
    /// nodes of one rack always land on the same shard, and racks are
    /// assigned contiguously in near-equal groups. `shards` is clamped to
    /// the rack count. Same caveat as [`Cluster::even_shard_plan`]: all
    /// cross-node traffic must be connection-borne.
    pub fn rack_shard_plan(&self, shards: usize, per_rack: usize) -> ShardPlan {
        let n = self.nodes.len();
        assert!(
            per_rack >= 1 && n % per_rack == 0,
            "rack_shard_plan: {n} nodes do not divide into racks of {per_rack}"
        );
        let racks = n / per_rack;
        let shards = shards.min(racks).max(1);
        let node_to_shard = (0..n).map(|i| (i / per_rack) * shards / racks).collect();
        self.shard_plan(shards, node_to_shard, vec![])
    }

    /// Install the `HPSOCK_SHARDS`-selected even node split on `sim`
    /// (clamped to the node count, with a warning when reduced). A no-op
    /// when the variable is unset or `1`. Same caveat as
    /// [`Cluster::even_shard_plan`]: call only on topologies whose
    /// cross-node traffic is all connection-borne.
    pub fn apply_env_shards(&self, sim: &mut Sim) {
        let requested = hpsock_sim::shard::configured_shards();
        if requested <= 1 {
            return;
        }
        let n = self.nodes.len();
        let shards = hpsock_sim::shard::clamp_shards(requested, n, &format!("a {n}-node cluster"));
        if shards > 1 {
            sim.set_shard_plan(self.even_shard_plan(shards));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConnId, Delivery, NodeId};
    use crate::params::{PathCosts, TransportKind};
    use hpsock_sim::{Ctx, Message, Process, SimTime};

    /// Sends `count` messages of `bytes` each, one at a time (the next send
    /// is issued when the previous delivery is echoed back by the sink via
    /// a plain event), and records per-message one-way times.
    struct Blaster {
        net: Network,
        conn: ConnId,
        bytes: u64,
        count: u32,
        sent: u32,
    }
    impl Process for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.net.send(ctx, self.conn, self.bytes, Message::new(()));
            self.sent = 1;
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
            if self.sent < self.count {
                self.net.send(ctx, self.conn, self.bytes, Message::new(()));
                self.sent += 1;
            }
        }
    }

    /// Consumes deliveries immediately and pings the sender.
    struct Sink {
        net: Network,
        sender: Option<hpsock_sim::ProcessId>,
        oneway_us: Vec<f64>,
        last_delivery: SimTime,
        delivered: u64,
    }
    impl Process for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let d = msg.downcast::<Delivery>().expect("delivery");
            self.oneway_us
                .push(ctx.now().since(d.sent_at).as_micros_f64());
            self.last_delivery = ctx.now();
            self.delivered += d.bytes;
            self.net.consumed(ctx, d.conn, d.msg_id);
            if let Some(s) = self.sender {
                ctx.send(s, Message::new(()));
            }
        }
    }

    fn one_way(kind: TransportKind, bytes: u64) -> f64 {
        let mut sim = hpsock_sim::Sim::new(7);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let sink = sim.add_process(Box::new(Sink {
            net: net.clone(),
            sender: None,
            oneway_us: vec![],
            last_delivery: SimTime::ZERO,
            delivered: 0,
        }));
        let blaster = sim.add_process(Box::new(Blaster {
            net: net.clone(),
            conn: ConnId(0),
            bytes,
            count: 1,
            sent: 0,
        }));
        net.connect(
            cluster.endpoint(NodeId(0), blaster),
            cluster.endpoint(NodeId(1), sink),
            kind,
        );
        sim.run();
        let s: &Sink = sim.process(sink).unwrap();
        s.oneway_us[0]
    }

    #[test]
    fn unloaded_latency_matches_closed_form() {
        for kind in TransportKind::PAPER_SET {
            for bytes in [4u64, 256, 1024, 4096, 16_384] {
                let sim_us = one_way(kind, bytes);
                let model_us = PathCosts::for_kind(kind)
                    .oneway_latency(bytes)
                    .as_micros_f64();
                let err = (sim_us - model_us).abs() / model_us;
                assert!(
                    err < 0.01,
                    "{} {}B: sim {:.2}us vs model {:.2}us",
                    kind.label(),
                    bytes,
                    sim_us,
                    model_us
                );
            }
        }
    }

    #[test]
    fn socketvia_small_latency_is_9_5us() {
        let us = one_way(TransportKind::SocketVia, 4);
        assert!((us - 9.5).abs() < 0.5, "got {us}");
    }

    #[test]
    fn tcp_is_about_5x_socketvia() {
        let tcp = one_way(TransportKind::KTcp, 4);
        let sv = one_way(TransportKind::SocketVia, 4);
        let r = tcp / sv;
        assert!((4.5..5.5).contains(&r), "ratio {r}");
    }

    fn streamed_bandwidth_mbps(kind: TransportKind, bytes: u64, count: u32) -> f64 {
        let mut sim = hpsock_sim::Sim::new(7);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let sink = sim.add_process(Box::new(Sink {
            net: net.clone(),
            sender: None,
            oneway_us: vec![],
            last_delivery: SimTime::ZERO,
            delivered: 0,
        }));
        let blaster = sim.add_process(Box::new(BurstBlaster {
            net: net.clone(),
            conn: ConnId(0),
            bytes,
            count,
        }));
        net.connect(
            cluster.endpoint(NodeId(0), blaster),
            cluster.endpoint(NodeId(1), sink),
            kind,
        );
        sim.run();
        let s: &Sink = sim.process(sink).unwrap();
        assert_eq!(s.delivered, bytes * count as u64, "all bytes delivered");
        8.0 * s.delivered as f64 / s.last_delivery.as_nanos() as f64 * 1_000.0
    }

    /// Submits everything up front; flow control paces the stream.
    struct BurstBlaster {
        net: Network,
        conn: ConnId,
        bytes: u64,
        count: u32,
    }
    impl Process for BurstBlaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.count {
                self.net.send(ctx, self.conn, self.bytes, Message::new(()));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    #[test]
    fn streamed_bandwidth_approaches_paper_peaks() {
        let via = streamed_bandwidth_mbps(TransportKind::Via, 65_536, 200);
        let sv = streamed_bandwidth_mbps(TransportKind::SocketVia, 65_536, 200);
        let tcp = streamed_bandwidth_mbps(TransportKind::KTcp, 65_536, 200);
        assert!((via - 795.0).abs() < 40.0, "VIA {via}");
        assert!((sv - 763.0).abs() < 40.0, "SocketVIA {sv}");
        assert!((tcp - 510.0).abs() < 40.0, "TCP {tcp}");
    }

    #[test]
    fn byte_conservation_under_flow_control() {
        // Many small messages through a credit-limited path all arrive.
        let bw = streamed_bandwidth_mbps(TransportKind::SocketVia, 512, 500);
        assert!(bw > 0.0);
    }

    /// A node-partitioned sharded run of a streaming transfer reproduces
    /// the sequential digest, byte counts and timings exactly.
    #[test]
    fn sharded_cluster_run_matches_sequential() {
        let run = |shards: usize| {
            let mut sim = hpsock_sim::Sim::new(7);
            let cluster = Cluster::build(&mut sim, 2);
            let net = cluster.network();
            let sink = sim.add_process(Box::new(Sink {
                net: net.clone(),
                sender: None,
                oneway_us: vec![],
                last_delivery: SimTime::ZERO,
                delivered: 0,
            }));
            let blaster = sim.add_process(Box::new(BurstBlaster {
                net: net.clone(),
                conn: ConnId(0),
                bytes: 16_384,
                count: 50,
            }));
            net.connect(
                cluster.endpoint(NodeId(0), blaster),
                cluster.endpoint(NodeId(1), sink),
                TransportKind::SocketVia,
            );
            if shards > 1 {
                sim.set_shard_plan(cluster.shard_plan(2, vec![0, 1], vec![]));
            }
            let end = sim.run();
            let s: &Sink = sim.process(sink).unwrap();
            (
                end.as_nanos(),
                sim.trace_digest(),
                sim.events_dispatched(),
                s.delivered,
                s.last_delivery.as_nanos(),
            )
        };
        assert_eq!(run(2), run(1));
    }

    /// A rack-partitioned sharded run (whole racks per shard) reproduces
    /// the sequential digest exactly, and the rack plan keeps every rack's
    /// nodes on one shard.
    #[test]
    fn rack_shard_plan_matches_sequential() {
        let run = |shards: usize| {
            let mut sim = hpsock_sim::Sim::new(7);
            // 2 racks × 2 nodes; senders in rack 0, receivers in rack 1.
            let cluster = Cluster::build_racks(&mut sim, 2, 2);
            let net = cluster.network();
            for i in 0..2usize {
                let sink = sim.add_process(Box::new(Sink {
                    net: net.clone(),
                    sender: None,
                    oneway_us: vec![],
                    last_delivery: SimTime::ZERO,
                    delivered: 0,
                }));
                let blaster = sim.add_process(Box::new(BurstBlaster {
                    net: net.clone(),
                    conn: ConnId(i),
                    bytes: 16_384,
                    count: 20,
                }));
                net.connect(
                    cluster.endpoint(NodeId(i), blaster),
                    cluster.endpoint(NodeId(2 + i), sink),
                    TransportKind::SocketVia,
                );
            }
            if shards > 1 {
                let plan = cluster.rack_shard_plan(shards, 2);
                assert_eq!(plan.shards, 2, "clamped to the rack count");
                sim.set_shard_plan(plan);
            }
            let end = sim.run();
            (end.as_nanos(), sim.trace_digest(), sim.events_dispatched())
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        // Requesting more shards than racks clamps to whole racks.
        assert_eq!(run(4), seq);
    }

    /// Using the network before `Sim::run` reports a typed [`NetError`]
    /// naming the operation and the simulation phase, not a bare expect.
    #[test]
    fn pre_start_use_reports_a_typed_error() {
        let mut sim = hpsock_sim::Sim::new(1);
        let cluster = Cluster::build(&mut sim, 2);
        let net = cluster.network();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.core_of(NodeId(0));
        }))
        .expect_err("routes do not exist before the run");
        let msg = err
            .downcast_ref::<String>()
            .expect("typed errors panic with a formatted String");
        assert!(msg.contains("core_of"), "names the operation: {msg}");
        assert!(
            msg.contains("before the simulation started"),
            "names the phase: {msg}"
        );
        // And the conn-bearing rendering is pinned exactly.
        let e = crate::engine::NetError::NotStarted {
            op: "send",
            conn: Some(ConnId(3)),
        };
        assert_eq!(
            e.to_string(),
            "net: send on conn 3 before the simulation started; routes exist \
             only once the net switch has run its start phase"
        );
    }

    /// A seeded drop+delay fault run is digest-reproducible across
    /// repeated invocations and across a 1 vs 2 shard partition: fate
    /// draws come from the transmitting core's shard-invariant RNG
    /// stream, and fault delays only ever add latency, so the
    /// conservative-window lookahead still holds.
    #[test]
    fn seeded_faults_are_deterministic_across_shards() {
        let run = |shards: usize| {
            fault::with_spec("drop=0.05,delay=0.2:30us", || {
                let mut sim = hpsock_sim::Sim::new(11);
                let cluster = Cluster::build(&mut sim, 2);
                assert!(cluster.fault_plan().is_some(), "plan installed at build");
                let net = cluster.network();
                let sink = sim.add_process(Box::new(Sink {
                    net: net.clone(),
                    sender: None,
                    oneway_us: vec![],
                    last_delivery: SimTime::ZERO,
                    delivered: 0,
                }));
                let blaster = sim.add_process(Box::new(BurstBlaster {
                    net: net.clone(),
                    conn: ConnId(0),
                    bytes: 16_384,
                    count: 50,
                }));
                net.connect(
                    cluster.endpoint(NodeId(0), blaster),
                    cluster.endpoint(NodeId(1), sink),
                    TransportKind::SocketVia,
                );
                if shards > 1 {
                    sim.set_shard_plan(cluster.shard_plan(2, vec![0, 1], vec![]));
                }
                let end = sim.run();
                let s: &Sink = sim.process(sink).unwrap();
                (
                    end.as_nanos(),
                    sim.trace_digest(),
                    sim.events_dispatched(),
                    s.delivered,
                )
            })
        };
        let seq = run(1);
        assert_eq!(run(1), seq, "repeat invocation reproduces the digest");
        assert_eq!(run(2), seq, "2-shard partition reproduces the digest");
        let delivered = seq.3;
        assert!(delivered > 0, "some messages survive a 5% drop rate");
        assert!(
            delivered < 16_384 * 50,
            "the drop filter lost something: {delivered} bytes all arrived"
        );
    }

    /// The fluid model preserves unloaded one-way latency: a lone message
    /// drains at its bottleneck-stage rate and the delivery residual makes
    /// the end-to-end time equal the packet engine's closed form.
    #[test]
    fn flow_model_matches_unloaded_latency() {
        crate::netmodel::with_netmodel(NetModel::Flow, || {
            for kind in TransportKind::PAPER_SET {
                for bytes in [4u64, 256, 1024, 4096, 16_384] {
                    let sim_us = one_way(kind, bytes);
                    let model_us = PathCosts::for_kind(kind)
                        .oneway_latency(bytes)
                        .as_micros_f64();
                    let err = (sim_us - model_us).abs() / model_us;
                    assert!(
                        err < 0.01,
                        "{} {}B: fluid {:.2}us vs model {:.2}us",
                        kind.label(),
                        bytes,
                        sim_us,
                        model_us
                    );
                }
            }
        });
    }

    /// A streamed fluid transfer reaches the same calibrated peak
    /// bandwidths as the packet engine (and conserves every byte).
    #[test]
    fn flow_model_reaches_paper_peak_bandwidths() {
        crate::netmodel::with_netmodel(NetModel::Flow, || {
            let via = streamed_bandwidth_mbps(TransportKind::Via, 65_536, 200);
            let sv = streamed_bandwidth_mbps(TransportKind::SocketVia, 65_536, 200);
            let tcp = streamed_bandwidth_mbps(TransportKind::KTcp, 65_536, 200);
            assert!((via - 795.0).abs() < 40.0, "VIA {via}");
            assert!((sv - 763.0).abs() < 40.0, "SocketVIA {sv}");
            assert!((tcp - 510.0).abs() < 40.0, "TCP {tcp}");
        });
    }

    /// Two senders sharing one receive host split its bottleneck stage
    /// fairly under the fluid allocator. TCP is the receive-limited
    /// transport (the paper's rx-side protocol cost dominates), so two
    /// TCP streams into one node each get about half the 510 Mbps peak —
    /// while the senders' own NIC stages stay un-contended.
    #[test]
    fn flow_model_shares_a_receive_host_fairly() {
        crate::netmodel::with_netmodel(NetModel::Flow, || {
            let mut sim = hpsock_sim::Sim::new(7);
            let cluster = Cluster::build(&mut sim, 3);
            let net = cluster.network();
            let mut sinks = vec![];
            for i in 0..2usize {
                let sink = sim.add_process(Box::new(Sink {
                    net: net.clone(),
                    sender: None,
                    oneway_us: vec![],
                    last_delivery: SimTime::ZERO,
                    delivered: 0,
                }));
                let blaster = sim.add_process(Box::new(BurstBlaster {
                    net: net.clone(),
                    conn: ConnId(i),
                    bytes: 65_536,
                    count: 100,
                }));
                // Both connections terminate at node 2: its host_rx link
                // is the shared bottleneck.
                net.connect(
                    cluster.endpoint(NodeId(i), blaster),
                    cluster.endpoint(NodeId(2), sink),
                    TransportKind::KTcp,
                );
                sinks.push(sink);
            }
            sim.run();
            for sink in sinks {
                let s: &Sink = sim.process(sink).unwrap();
                assert_eq!(s.delivered, 65_536 * 100, "all bytes delivered");
                let mbps = 8.0 * s.delivered as f64 / s.last_delivery.as_nanos() as f64 * 1_000.0;
                // Half of the ~510 Mbps TCP peak, within startup slack.
                assert!(
                    (mbps - 255.0).abs() < 30.0,
                    "each stream gets a fair half: {mbps} Mbps"
                );
            }
        });
    }

    /// A sharded fluid run reproduces the sequential digest, byte counts
    /// and timings exactly: all flow state lives on the pinned fluid core
    /// and every edge touching it has positive lookahead.
    #[test]
    fn flow_model_sharded_run_matches_sequential() {
        let run = |shards: usize| {
            crate::netmodel::with_netmodel(NetModel::Flow, || {
                let mut sim = hpsock_sim::Sim::new(7);
                let cluster = Cluster::build(&mut sim, 2);
                let net = cluster.network();
                let sink = sim.add_process(Box::new(Sink {
                    net: net.clone(),
                    sender: None,
                    oneway_us: vec![],
                    last_delivery: SimTime::ZERO,
                    delivered: 0,
                }));
                let blaster = sim.add_process(Box::new(BurstBlaster {
                    net: net.clone(),
                    conn: ConnId(0),
                    bytes: 16_384,
                    count: 50,
                }));
                net.connect(
                    cluster.endpoint(NodeId(0), blaster),
                    cluster.endpoint(NodeId(1), sink),
                    TransportKind::SocketVia,
                );
                if shards > 1 {
                    sim.set_shard_plan(cluster.shard_plan(2, vec![0, 1], vec![]));
                }
                let end = sim.run();
                let s: &Sink = sim.process(sink).unwrap();
                (
                    end.as_nanos(),
                    sim.trace_digest(),
                    sim.events_dispatched(),
                    s.delivered,
                    s.last_delivery.as_nanos(),
                )
            })
        };
        assert_eq!(run(2), run(1));
    }

    /// `HPSOCK_FAULTS` composes with the fluid model: fates are drawn at
    /// flow granularity on the fluid core's own RNG stream, reproducibly
    /// across repeats and shard partitions, and drops actually lose data.
    #[test]
    fn flow_model_composes_with_faults() {
        let run = |shards: usize| {
            crate::netmodel::with_netmodel(NetModel::Flow, || {
                fault::with_spec("drop=0.05,delay=0.2:30us", || {
                    let mut sim = hpsock_sim::Sim::new(11);
                    let cluster = Cluster::build(&mut sim, 2);
                    assert!(cluster.fault_plan().is_some(), "plan installed at build");
                    let net = cluster.network();
                    let sink = sim.add_process(Box::new(Sink {
                        net: net.clone(),
                        sender: None,
                        oneway_us: vec![],
                        last_delivery: SimTime::ZERO,
                        delivered: 0,
                    }));
                    let blaster = sim.add_process(Box::new(BurstBlaster {
                        net: net.clone(),
                        conn: ConnId(0),
                        bytes: 16_384,
                        count: 50,
                    }));
                    net.connect(
                        cluster.endpoint(NodeId(0), blaster),
                        cluster.endpoint(NodeId(1), sink),
                        TransportKind::SocketVia,
                    );
                    if shards > 1 {
                        sim.set_shard_plan(cluster.shard_plan(2, vec![0, 1], vec![]));
                    }
                    let end = sim.run();
                    let s: &Sink = sim.process(sink).unwrap();
                    (
                        end.as_nanos(),
                        sim.trace_digest(),
                        sim.events_dispatched(),
                        s.delivered,
                    )
                })
            })
        };
        let seq = run(1);
        assert_eq!(run(1), seq, "repeat invocation reproduces the digest");
        assert_eq!(run(2), seq, "2-shard partition reproduces the digest");
        let delivered = seq.3;
        assert!(delivered > 0, "some flows survive a 5% drop rate");
        assert!(
            delivered < 16_384 * 50,
            "the drop filter lost something: {delivered} bytes all arrived"
        );
    }

    /// A scheduled node crash cuts fluid streams too: in-flight and queued
    /// flows fail over to `StreamError`s and the stream stops short.
    #[test]
    fn flow_model_node_crash_cuts_streams() {
        let run = || {
            crate::netmodel::with_netmodel(NetModel::Flow, || {
                fault::with_spec("crash=1@200us,detect=100us", || {
                    let mut sim = hpsock_sim::Sim::new(3);
                    let cluster = Cluster::build(&mut sim, 2);
                    let net = cluster.network();
                    let sink = sim.add_process(Box::new(Sink {
                        net: net.clone(),
                        sender: None,
                        oneway_us: vec![],
                        last_delivery: SimTime::ZERO,
                        delivered: 0,
                    }));
                    let blaster = sim.add_process(Box::new(BurstBlaster {
                        net: net.clone(),
                        conn: ConnId(0),
                        bytes: 16_384,
                        count: 50,
                    }));
                    net.connect(
                        cluster.endpoint(NodeId(0), blaster),
                        cluster.endpoint(NodeId(1), sink),
                        TransportKind::SocketVia,
                    );
                    let end = sim.run();
                    let s: &Sink = sim.process(sink).unwrap();
                    (end.as_nanos(), sim.trace_digest(), s.delivered)
                })
            })
        };
        let a = run();
        assert_eq!(run(), a, "crash runs reproduce");
        assert!(a.2 > 0, "flows before the crash deliver");
        assert!(
            a.2 < 16_384 * 50,
            "the crash cut the stream: {} bytes all arrived",
            a.2
        );
    }

    /// Hierarchical topology: cross-rack connections pay the extra core
    /// hop under both models, and under the fluid model an oversubscribed
    /// uplink caps aggregate cross-rack bandwidth below the sum of the
    /// per-host peaks.
    #[test]
    fn hier_topology_adds_hop_and_caps_uplinks() {
        // Latency: one cross-rack message pays exactly INTER_RACK_HOP more.
        let one_way_hier = |oversub: f64| {
            let mut sim = hpsock_sim::Sim::new(7);
            let cluster = Cluster::build_racks_hier(&mut sim, 2, 2, oversub);
            let net = cluster.network();
            let sink = sim.add_process(Box::new(Sink {
                net: net.clone(),
                sender: None,
                oneway_us: vec![],
                last_delivery: SimTime::ZERO,
                delivered: 0,
            }));
            let blaster = sim.add_process(Box::new(Blaster {
                net: net.clone(),
                conn: ConnId(0),
                bytes: 4096,
                count: 1,
                sent: 0,
            }));
            net.connect(
                cluster.endpoint(NodeId(0), blaster),
                cluster.endpoint(NodeId(2), sink),
                TransportKind::Via,
            );
            sim.run();
            let s: &Sink = sim.process(sink).unwrap();
            s.oneway_us[0]
        };
        let flat = one_way(TransportKind::Via, 4096);
        let hier = one_way_hier(4.0);
        let extra_us = INTER_RACK_HOP.as_nanos() as f64 / 1_000.0;
        assert!(
            (hier - flat - extra_us).abs() < 0.01,
            "cross-rack adds one core hop: flat {flat}us hier {hier}us"
        );

        // Bandwidth: 2 cross-rack VIA streams into distinct receivers
        // would reach ~2x795 Mbps flat; an oversub=4 uplink of 2-node
        // racks caps the pair at per_rack/oversub = 0.5 node-rates.
        let aggregate = |oversub: f64| {
            crate::netmodel::with_netmodel(NetModel::Flow, || {
                let mut sim = hpsock_sim::Sim::new(7);
                let cluster = Cluster::build_racks_hier(&mut sim, 2, 2, oversub);
                let net = cluster.network();
                let mut sinks = vec![];
                for i in 0..2usize {
                    let sink = sim.add_process(Box::new(Sink {
                        net: net.clone(),
                        sender: None,
                        oneway_us: vec![],
                        last_delivery: SimTime::ZERO,
                        delivered: 0,
                    }));
                    let blaster = sim.add_process(Box::new(BurstBlaster {
                        net: net.clone(),
                        conn: ConnId(i),
                        bytes: 65_536,
                        count: 50,
                    }));
                    net.connect(
                        cluster.endpoint(NodeId(i), blaster),
                        cluster.endpoint(NodeId(2 + i), sink),
                        TransportKind::Via,
                    );
                    sinks.push(sink);
                }
                sim.run();
                sinks
                    .iter()
                    .map(|&s| {
                        let s: &Sink = sim.process(s).unwrap();
                        assert_eq!(s.delivered, 65_536 * 50, "all bytes delivered");
                        8.0 * s.delivered as f64 / s.last_delivery.as_nanos() as f64 * 1_000.0
                    })
                    .sum::<f64>()
            })
        };
        let capped = aggregate(4.0);
        // 2-node racks, oversub 4: uplink = 2/4 node-rates = ~397 Mbps.
        assert!(
            (capped - 397.5).abs() < 25.0,
            "oversubscribed uplink caps the aggregate: {capped} Mbps"
        );
        let uncapped = aggregate(1.0);
        assert!(
            uncapped > 2.0 * 700.0,
            "a non-blocking core carries both streams at full rate: {uncapped} Mbps"
        );
    }

    /// A scheduled node crash cuts the connection: the sender's queued
    /// messages fail over to `StreamError` events instead of wedging the
    /// run, and frames arriving at the dead node return nothing.
    #[test]
    fn node_crash_cuts_streams_deterministically() {
        let run = || {
            fault::with_spec("crash=1@200us,detect=100us", || {
                let mut sim = hpsock_sim::Sim::new(3);
                let cluster = Cluster::build(&mut sim, 2);
                assert_eq!(
                    cluster.crash_time(NodeId(1)),
                    Some(SimTime::ZERO + hpsock_sim::Dur::micros(200))
                );
                let net = cluster.network();
                let sink = sim.add_process(Box::new(Sink {
                    net: net.clone(),
                    sender: None,
                    oneway_us: vec![],
                    last_delivery: SimTime::ZERO,
                    delivered: 0,
                }));
                let blaster = sim.add_process(Box::new(BurstBlaster {
                    net: net.clone(),
                    conn: ConnId(0),
                    bytes: 16_384,
                    count: 50,
                }));
                net.connect(
                    cluster.endpoint(NodeId(0), blaster),
                    cluster.endpoint(NodeId(1), sink),
                    TransportKind::SocketVia,
                );
                let end = sim.run();
                let s: &Sink = sim.process(sink).unwrap();
                (end.as_nanos(), sim.trace_digest(), s.delivered)
            })
        };
        let a = run();
        assert_eq!(run(), a, "crash runs reproduce");
        assert!(
            a.2 < 16_384 * 50,
            "the crash cut the stream: {} bytes all arrived",
            a.2
        );
    }
}
