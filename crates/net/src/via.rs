//! A functional model of a Virtual Interface (VIA) endpoint: work queues
//! of descriptors, doorbells, and completion queues — the abstraction the
//! cLAN hardware exposes and the SocketVIA library builds on.
//!
//! The network engine's credit-based flow control ([`crate::flow::Flow`])
//! is implemented on top of [`CreditRing`], which models the receive side
//! of a connection: a ring of pre-posted receive descriptors backed by
//! registered eager buffers. Sending a frame consumes the peer's oldest
//! posted descriptor; the sockets layer drains the buffer on completion
//! and re-posts it, and the resulting credit update is what the engine
//! ships back to the sender.
//!
//! The model is deliberately *functional*: descriptor identities, doorbell
//! and completion counts are tracked (and observable for tests and
//! statistics), while timing lives in the engine's resource walk.

use std::collections::VecDeque;

/// A receive descriptor: one registered eager buffer posted to the VI's
/// receive work queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvDescriptor {
    /// Identity of the backing registered buffer.
    pub buffer_id: u32,
    /// Capacity of the backing buffer in bytes (the VIA transfer limit).
    pub capacity: u32,
}

/// A completion-queue entry for a consumed receive descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The descriptor that completed.
    pub buffer_id: u32,
    /// Bytes the incoming frame actually carried.
    pub len: u32,
}

/// The receive side of one VI connection: posted descriptors, the
/// completion queue, and the doorbell counter.
#[derive(Debug, Clone)]
pub struct CreditRing {
    /// Descriptors currently posted (available to the sender as credits),
    /// oldest first — VIA consumes receive descriptors strictly in order.
    posted: VecDeque<RecvDescriptor>,
    /// Completions not yet reaped by the sockets layer.
    completions: VecDeque<Completion>,
    /// Total pool size.
    pool: u32,
    /// Buffer capacity (per descriptor).
    capacity: u32,
    /// Doorbell rings (posts) since creation.
    pub doorbells: u64,
    /// Completions generated since creation.
    pub completed: u64,
}

impl CreditRing {
    /// A ring of `pool` descriptors, each backed by a `capacity`-byte
    /// registered buffer, all posted up front (as SocketVIA does at
    /// connection setup).
    pub fn new(pool: u32, capacity: u32) -> CreditRing {
        assert!(pool > 0, "a VI needs at least one receive descriptor");
        let mut ring = CreditRing {
            posted: VecDeque::with_capacity(pool as usize),
            completions: VecDeque::new(),
            pool,
            capacity,
            doorbells: 0,
            completed: 0,
        };
        for id in 0..pool {
            ring.post(RecvDescriptor {
                buffer_id: id,
                capacity,
            });
        }
        ring
    }

    /// Post a descriptor (ring the doorbell).
    pub fn post(&mut self, d: RecvDescriptor) {
        assert!(
            self.posted.len() < self.pool as usize,
            "posting beyond the descriptor pool"
        );
        assert!(d.capacity >= self.capacity, "undersized eager buffer");
        self.posted.push_back(d);
        self.doorbells += 1;
    }

    /// Credits available to the sender: posted descriptors.
    pub fn available(&self) -> u32 {
        self.posted.len() as u32
    }

    /// Pool size.
    pub fn pool(&self) -> u32 {
        self.pool
    }

    /// An incoming frame of `len` bytes consumes the oldest posted
    /// descriptor and enqueues a completion. Panics if the sender violated
    /// flow control (no descriptor posted) or overran the eager buffer.
    pub fn on_frame(&mut self, len: u32) -> Completion {
        let d = self
            .posted
            .pop_front()
            .expect("frame arrived with no posted receive descriptor");
        assert!(
            len <= d.capacity,
            "frame of {len} B overran a {} B eager buffer",
            d.capacity
        );
        let c = Completion {
            buffer_id: d.buffer_id,
            len,
        };
        self.completions.push_back(c);
        self.completed += 1;
        c
    }

    /// The sockets layer polls the completion queue, copies the data out,
    /// and re-posts the descriptor. Returns the completion, or `None` when
    /// the queue is empty.
    pub fn reap_and_repost(&mut self) -> Option<Completion> {
        let c = self.completions.pop_front()?;
        self.post(RecvDescriptor {
            buffer_id: c.buffer_id,
            capacity: self.capacity,
        });
        Some(c)
    }

    /// Completions waiting to be reaped.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Invariant: every descriptor is either posted or awaiting reap or in
    /// flight with the sender's credit accounting.
    pub fn accounted(&self) -> u32 {
        self.posted.len() as u32 + self.completions.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_fully_posted() {
        let r = CreditRing::new(8, 65_536);
        assert_eq!(r.available(), 8);
        assert_eq!(r.doorbells, 8);
        assert_eq!(r.pending_completions(), 0);
    }

    #[test]
    fn frame_consumes_oldest_descriptor() {
        let mut r = CreditRing::new(3, 1_000);
        let c0 = r.on_frame(500);
        let c1 = r.on_frame(1_000);
        assert_eq!(c0.buffer_id, 0);
        assert_eq!(c1.buffer_id, 1);
        assert_eq!(r.available(), 1);
        assert_eq!(r.pending_completions(), 2);
    }

    #[test]
    fn reap_reposts_in_completion_order() {
        let mut r = CreditRing::new(2, 100);
        r.on_frame(10);
        r.on_frame(20);
        assert_eq!(r.available(), 0);
        let c = r.reap_and_repost().unwrap();
        assert_eq!((c.buffer_id, c.len), (0, 10));
        assert_eq!(r.available(), 1);
        let c = r.reap_and_repost().unwrap();
        assert_eq!((c.buffer_id, c.len), (1, 20));
        assert_eq!(r.available(), 2);
        assert!(r.reap_and_repost().is_none());
    }

    #[test]
    #[should_panic]
    fn flow_violation_panics() {
        let mut r = CreditRing::new(1, 100);
        r.on_frame(10);
        r.on_frame(10);
    }

    #[test]
    #[should_panic]
    fn buffer_overrun_panics() {
        let mut r = CreditRing::new(1, 100);
        r.on_frame(101);
    }

    proptest! {
        /// Under any interleaving of frames (when credits exist) and reaps,
        /// every descriptor stays accounted for and ids stay unique.
        #[test]
        fn descriptors_are_conserved(ops in proptest::collection::vec(0u8..2, 1..300)) {
            let pool = 6u32;
            let mut r = CreditRing::new(pool, 4_096);
            for op in ops {
                match op {
                    0 if r.available() > 0 => {
                        r.on_frame(1_024);
                    }
                    _ => {
                        r.reap_and_repost();
                    }
                }
                prop_assert_eq!(r.accounted(), pool);
                prop_assert!(r.available() <= pool);
            }
            // Drain: after reaping everything, all credits are back.
            while r.reap_and_repost().is_some() {}
            prop_assert_eq!(r.available(), pool);
        }
    }
}
