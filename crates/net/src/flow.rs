//! Flow-control state machines.
//!
//! Two regimes, matching the two stacks in the paper:
//!
//! * [`Flow::Credits`] — VIA-style receiver-posted descriptors. One credit
//!   per wire frame. Because the receiving application (a DataCutter
//!   filter) always has a receive posted, the sockets layer copies each
//!   segment out of its eager buffer on arrival and *re-posts the
//!   descriptor immediately*: credits return per frame, after the
//!   credit-update message's latency. Application-level backpressure comes
//!   from the demand-driven scheduling window above, as in the paper.
//! * [`Flow::Window`] — kernel TCP. In-flight bytes are capped by the send
//!   buffer; a frame's arrival acknowledgment (reaching the sender after
//!   the ack latency) frees its bytes. The kernel receive buffer is
//!   drained continuously because the receiving filter always has a read
//!   posted, so receive-side occupancy is not modeled; application-level
//!   backpressure is the demand-driven window above, as in DataCutter.
//!
//! The state machines are pure (no simulator coupling) and are driven by
//! the network engine.

use crate::params::FlowModel;
use crate::via::CreditRing;

/// Per-connection flow-control state.
#[derive(Debug, Clone)]
pub enum Flow {
    /// Receiver-posted descriptor credits, backed by the VIA descriptor
    /// ring model ([`crate::via::CreditRing`]).
    Credits {
        /// The sender's view of the peer's posted descriptors (lags the
        /// ring by the credit-update latency).
        sender_credits: u32,
        /// The receive-side descriptor ring.
        ring: CreditRing,
    },
    /// Sliding byte window.
    Window {
        /// Bytes sent but not yet acknowledged by the receiver kernel.
        inflight: u64,
        /// Send-buffer size (caps `inflight`).
        send_buf: u64,
    },
}

impl Flow {
    /// Fresh state for a connection using `model`; `frame_capacity` sizes
    /// the registered eager buffers behind each receive descriptor.
    pub fn new(model: FlowModel, frame_capacity: u32) -> Flow {
        match model {
            FlowModel::Credits { count } => Flow::Credits {
                sender_credits: count,
                ring: CreditRing::new(count, frame_capacity),
            },
            FlowModel::Window { send_buf, .. } => Flow::Window {
                inflight: 0,
                send_buf,
            },
        }
    }

    /// May the sender emit the next frame of `frame_bytes` payload?
    pub fn can_send(&self, frame_bytes: u64) -> bool {
        match self {
            Flow::Credits { sender_credits, .. } => *sender_credits > 0,
            Flow::Window {
                inflight, send_buf, ..
            } => inflight + frame_bytes <= *send_buf,
        }
    }

    /// Account for a frame entering the network.
    pub fn on_frame_sent(&mut self, frame_bytes: u64) {
        match self {
            Flow::Credits { sender_credits, .. } => {
                assert!(*sender_credits > 0, "sent a frame without a credit");
                *sender_credits -= 1;
            }
            Flow::Window { inflight, .. } => {
                *inflight += frame_bytes;
            }
        }
    }

    /// The receiver accepted a frame. Credits model: the sockets layer
    /// copies the segment out and re-posts the descriptor — returns the
    /// number of credits to ship back to the sender. Window model: the
    /// kernel's ack frees the frame's in-flight bytes (call at
    /// sender-learns-of-ack time).
    pub fn on_frame_arrived(&mut self, frame_bytes: u64) -> u32 {
        match self {
            Flow::Credits { ring, .. } => {
                // The frame lands in the oldest posted eager buffer; the
                // sockets layer (whose receive is always posted) reaps the
                // completion, copies the segment out, and re-posts.
                ring.on_frame(frame_bytes as u32);
                let c = ring.reap_and_repost().expect("completion just enqueued");
                debug_assert_eq!(c.len as u64, frame_bytes);
                1
            }
            Flow::Window { inflight, .. } => {
                assert!(*inflight >= frame_bytes, "acked more than in flight");
                *inflight -= frame_bytes;
                0
            }
        }
    }

    /// Credits shipped by the receiver reached the sender.
    pub fn on_credits_returned(&mut self, n: u32) {
        match self {
            Flow::Credits {
                sender_credits,
                ring,
            } => {
                *sender_credits += n;
                assert!(
                    *sender_credits <= ring.pool(),
                    "credits over-returned: {sender_credits} > {}",
                    ring.pool()
                );
            }
            Flow::Window { .. } => panic!("credit return on a window connection"),
        }
    }

    /// The receiving application consumed a delivered message. Bookkeeping
    /// only: descriptors re-posted (credits) and the kernel buffer drained
    /// (window) at arrival already.
    pub fn on_consumed(&mut self, _bytes: u64) {}

    /// True for the credits regime.
    pub fn is_credits(&self) -> bool {
        matches!(self, Flow::Credits { .. })
    }

    /// Credits currently available (credits model) or free in-flight bytes
    /// (window model); for observability.
    pub fn headroom(&self) -> u64 {
        match self {
            Flow::Credits { sender_credits, .. } => *sender_credits as u64,
            Flow::Window {
                inflight, send_buf, ..
            } => send_buf.saturating_sub(*inflight),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn credits_lifecycle() {
        let mut f = Flow::new(FlowModel::Credits { count: 2 }, 65_536);
        assert!(f.is_credits());
        assert!(f.can_send(1_000));
        f.on_frame_sent(1_000);
        f.on_frame_sent(64_000);
        assert!(!f.can_send(1));
        assert_eq!(f.on_frame_arrived(1_000), 1);
        assert_eq!(f.on_frame_arrived(64_000), 1);
        f.on_credits_returned(2);
        assert!(f.can_send(1));
        assert_eq!(f.headroom(), 2);
        f.on_consumed(65_000); // no-op
        assert_eq!(f.headroom(), 2);
    }

    #[test]
    #[should_panic]
    fn credits_cannot_go_negative() {
        let mut f = Flow::new(FlowModel::Credits { count: 1 }, 65_536);
        f.on_frame_sent(10);
        f.on_frame_sent(10);
    }

    #[test]
    #[should_panic]
    fn credits_cannot_over_return() {
        let mut f = Flow::new(FlowModel::Credits { count: 1 }, 65_536);
        f.on_credits_returned(1);
    }

    #[test]
    fn window_send_cap() {
        let mut f = Flow::new(
            FlowModel::Window {
                send_buf: 3_000,
                recv_buf: 3_000,
            },
            1_460,
        );
        assert!(!f.is_credits());
        assert!(f.can_send(1_460));
        f.on_frame_sent(1_460);
        f.on_frame_sent(1_460);
        assert!(!f.can_send(1_460), "send buffer full");
        assert_eq!(f.on_frame_arrived(1_460), 0);
        assert!(f.can_send(1_460), "ack frees send window");
    }

    #[test]
    fn window_large_message_streams_without_deadlock() {
        // A message far larger than the window streams fine because acks
        // free in-flight bytes frame by frame.
        let mut f = Flow::new(
            FlowModel::Window {
                send_buf: 65_536,
                recv_buf: 65_536,
            },
            1_460,
        );
        let (mut sent, mut arrived) = (0u32, 0u32);
        while sent < 1_000 {
            if f.can_send(1_460) {
                f.on_frame_sent(1_460);
                sent += 1;
            } else {
                assert!(arrived < sent, "progress possible");
                f.on_frame_arrived(1_460);
                arrived += 1;
            }
        }
        assert_eq!(sent, 1_000);
    }

    #[test]
    fn large_message_does_not_deadlock_credits() {
        // A message of many more frames than credits streams fine because
        // descriptors re-post per frame: simulate 256 frames with 32
        // credits and an in-order credit return.
        let mut f = Flow::new(FlowModel::Credits { count: 32 }, 65_536);
        let mut sent = 0u32;
        let mut arrived = 0u32;
        while sent < 256 {
            if f.can_send(65_536) {
                f.on_frame_sent(65_536);
                sent += 1;
            } else {
                assert!(arrived < sent, "progress possible");
                let n = f.on_frame_arrived(65_536);
                f.on_credits_returned(n);
                arrived += 1;
            }
        }
        assert_eq!(sent, 256);
    }

    proptest! {
        /// Credits never exceed the pool and never go negative under any
        /// valid interleaving of sends and arrivals.
        #[test]
        fn credits_invariant(ops in proptest::collection::vec(0u8..2, 1..200)) {
            let total = 8u32;
            let mut f = Flow::new(FlowModel::Credits { count: total }, 4_096);
            let mut outstanding = 0u32;
            for op in ops {
                match op {
                    0 => {
                        if f.can_send(100) {
                            f.on_frame_sent(100);
                            outstanding += 1;
                        }
                    }
                    _ => {
                        if outstanding > 0 {
                            let n = f.on_frame_arrived(100);
                            f.on_credits_returned(n);
                            outstanding -= 1;
                        }
                    }
                }
                prop_assert!(f.headroom() <= total as u64);
                prop_assert_eq!(f.headroom() + outstanding as u64, total as u64);
            }
        }

        /// In-flight bytes never exceed the send buffer, and headroom plus
        /// in-flight always equals the configured window.
        #[test]
        fn window_invariant(ops in proptest::collection::vec(0u8..2, 1..300)) {
            let sb = 4_000u64;
            let mut f = Flow::new(FlowModel::Window { send_buf: sb, recv_buf: sb }, 1_000);
            let mut inflight: Vec<u64> = vec![];
            for op in ops {
                match op {
                    0 => {
                        if f.can_send(1_000) {
                            f.on_frame_sent(1_000);
                            inflight.push(1_000);
                        }
                    }
                    _ => {
                        if let Some(b) = inflight.pop() {
                            f.on_frame_arrived(b);
                        }
                    }
                }
                let infl: u64 = inflight.iter().sum();
                prop_assert!(infl <= sb);
                prop_assert_eq!(f.headroom() + infl, sb);
            }
        }
    }
}
