//! # hpsock-net — simulated cluster substrate
//!
//! Models the paper's testbed: a 16-node PC cluster on a GigaNet cLAN
//! switch, with three protocol stacks (raw VIA, SocketVIA, kernel TCP over
//! LANE) whose cost parameters are calibrated to the paper's Figure 4
//! micro-benchmarks. See `DESIGN.md` §2 for the substitution argument and
//! [`params`] for the calibration derivation.
//!
//! Layering:
//!
//! * [`params`] — per-transport cost models ([`params::PathCosts`]) and
//!   closed-form latency/bandwidth curves used by planners and tests.
//! * [`frame`] — segmentation of application messages into wire frames.
//! * [`flow`] — flow-control state machines (VIA descriptor credits,
//!   TCP byte windows).
//! * [`engine`] — the discrete-event network engine walking frames through
//!   `host_tx → nic/wire → switch → host_rx` FCFS stages.
//! * [`cluster`] — node resource construction and engine installation.

pub mod cluster;
pub mod engine;
pub mod fault;
pub mod flow;
pub mod fluid;
pub mod frame;
pub mod netmodel;
pub mod params;
pub mod via;

pub use cluster::{configured_oversub, parse_oversub, Cluster, NodeSpec, Topology, INTER_RACK_HOP};
pub use engine::{
    ConnId, ConnStats, Delivery, Endpoint, NetCmd, NetError, NetSwitch, Network, NodeCore, NodeId,
    NodeResources, StreamError, StreamErrorKind,
};
pub use fault::{FaultPlan, LinkFilter, LinkFilterKind, LinkScope, RecoveryCfg};
pub use flow::Flow;
pub use fluid::max_min_rates;
pub use netmodel::{configured_netmodel, parse_netmodel, with_netmodel, NetModel};
pub use params::{FlowModel, PathCosts, TransportKind};
pub use via::{Completion, CreditRing, RecvDescriptor};

#[cfg(test)]
mod proptests;
