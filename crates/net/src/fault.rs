//! Deterministic fault injection: composable per-link filters installed on
//! a [`crate::Cluster`] and evaluated by the network engine.
//!
//! The layer follows the `Filter` idiom of simulated-transport test
//! harnesses: a fault plan is an ordered chain of link filters (drop,
//! delay, link-flap) plus scheduled node crashes, compiled per connection
//! when the engine cores start. Every probabilistic decision draws from
//! the *transmitting core's* seeded RNG stream, so a faulted run is
//! digest-reproducible across invocations and across `HPSOCK_SHARDS`
//! partitions (per-process RNG streams are shard-invariant, and fault
//! delays only ever *add* latency, preserving the conservative-window
//! lookahead).
//!
//! Plans come from the strictly parsed `HPSOCK_FAULTS` environment
//! variable (parse errors name the variable, like `HPSOCK_SEEDS`), or
//! from the scoped [`with_plan`]/[`with_spec`] overrides tests and the
//! experiment sweeps use — `std::env::set_var` mid-run is undefined
//! behaviour on glibc while other threads call `getenv`.
//!
//! ## Spec grammar
//!
//! Comma-separated clauses; `DUR` accepts `ns`/`us`/`ms`/`s` suffixes,
//! `P` is a probability in `[0, 1]`, `LINK` scopes a filter to one
//! directed node pair (`SRC->DST`, either side `*` for any):
//!
//! ```text
//! drop=P[@LINK]          lose each message with probability P
//! delay=P:DUR[@LINK]     add DUR to each message with probability P
//! flap=PERIOD:DOWN[@LINK] link down for DOWN at the end of each PERIOD
//! crash=NODE@TIME        node NODE fail-stops at TIME
//! detect=DUR             loss/crash detection latency (default 500us)
//! retries=N              per-message retry budget (default 5)
//! backoff=DUR            first retry backoff, doubling (default 1ms)
//! ```
//!
//! Example: `HPSOCK_FAULTS=drop=0.01,flap=5ms:500us@0->2,crash=1@40ms`.

use hpsock_sim::{Dur, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

/// Recovery knobs the DataCutter layer reads off an installed plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCfg {
    /// How long after a message is wire-dropped the sender learns of the
    /// loss (models an application-level timeout/NACK).
    pub detect: Dur,
    /// Resend attempts per message before the stream is declared dead.
    pub retries: u32,
    /// Backoff before the first resend; doubles per attempt.
    pub backoff: Dur,
}

impl Default for RecoveryCfg {
    fn default() -> Self {
        RecoveryCfg {
            detect: Dur::micros(500),
            retries: 5,
            backoff: Dur::millis(1),
        }
    }
}

/// Which directed node pairs a link filter applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkScope {
    /// Source node constraint (`None` = any).
    pub src: Option<usize>,
    /// Destination node constraint (`None` = any).
    pub dst: Option<usize>,
}

impl LinkScope {
    /// The unconstrained scope (every link).
    pub const ANY: LinkScope = LinkScope {
        src: None,
        dst: None,
    };

    /// Does a `src -> dst` connection fall under this scope?
    pub fn matches(&self, src: usize, dst: usize) -> bool {
        self.src.map_or(true, |s| s == src) && self.dst.map_or(true, |d| d == dst)
    }
}

/// One composable per-link fault filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFilterKind {
    /// Lose each message with probability `p`.
    Drop {
        /// Per-message loss probability.
        p: f64,
    },
    /// Add `extra` to each message's wire delay with probability `p`
    /// (`p < 1` reorders messages across a connection).
    Delay {
        /// Per-message delay probability.
        p: f64,
        /// Added one-way latency.
        extra: Dur,
    },
    /// Periodic link flap: the link is down for the last `down` of every
    /// `period`; messages entering the wire during a down window are lost.
    Flap {
        /// Flap cycle length.
        period: Dur,
        /// Down time at the end of each cycle.
        down: Dur,
    },
}

/// A link filter bound to its scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFilter {
    /// Which links the filter applies to.
    pub scope: LinkScope,
    /// The fault behaviour.
    pub kind: LinkFilterKind,
}

/// A parsed fault plan: the filter chain, crash schedule and recovery
/// parameters. Install via `HPSOCK_FAULTS` or [`with_plan`]; the cluster
/// picks it up at build time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Link filters in declaration order (the chain composes: any drop
    /// verdict wins, delay extras add up).
    pub filters: Vec<LinkFilter>,
    /// `(node, time)` fail-stop schedule.
    pub crashes: Vec<(usize, SimTime)>,
    /// Recovery parameters handed to the DataCutter layer.
    pub recovery: RecoveryCfg,
}

impl FaultPlan {
    /// True when the plan injects anything at all. An inactive plan is
    /// never installed, keeping fault-free runs byte-identical to a build
    /// without the fault layer (pinned by the determinism tests).
    pub fn is_active(&self) -> bool {
        !self.filters.is_empty() || !self.crashes.is_empty()
    }

    /// Earliest scheduled crash of `node`, if any.
    pub fn crash_time(&self, node: usize) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, t)| t)
            .min()
    }

    /// Compile the per-connection fault state for a `src -> dst` link.
    /// `None` when no filter or crash touches the link (the engine's hot
    /// path then carries no fault branch at all).
    pub fn compile(&self, src: usize, dst: usize) -> Option<ConnFaults> {
        let chain: Vec<LinkFilterKind> = self
            .filters
            .iter()
            .filter(|f| f.scope.matches(src, dst))
            .map(|f| f.kind)
            .collect();
        let cut_at = match (self.crash_time(src), self.crash_time(dst)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if chain.is_empty() && cut_at.is_none() {
            return None;
        }
        Some(ConnFaults {
            chain,
            cut_at,
            detect: self.recovery.detect,
        })
    }

    /// Parse an `HPSOCK_FAULTS` spec. Errors name the variable, mirroring
    /// `HPSOCK_SEEDS`/`HPSOCK_TAILS`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, val) = clause.split_once('=').ok_or_else(|| {
                format!("HPSOCK_FAULTS: clause {clause:?} is not of the form key=value")
            })?;
            match key.trim() {
                "drop" => {
                    let (body, scope) = split_scope(val)?;
                    plan.filters.push(LinkFilter {
                        scope,
                        kind: LinkFilterKind::Drop {
                            p: parse_prob(body, "drop")?,
                        },
                    });
                }
                "delay" => {
                    let (body, scope) = split_scope(val)?;
                    let (p, d) = body
                        .split_once(':')
                        .ok_or_else(|| format!("HPSOCK_FAULTS: delay takes P:DUR, got {body:?}"))?;
                    plan.filters.push(LinkFilter {
                        scope,
                        kind: LinkFilterKind::Delay {
                            p: parse_prob(p, "delay")?,
                            extra: parse_dur(d)?,
                        },
                    });
                }
                "flap" => {
                    let (body, scope) = split_scope(val)?;
                    let (period, down) = body.split_once(':').ok_or_else(|| {
                        format!("HPSOCK_FAULTS: flap takes PERIOD:DOWN, got {body:?}")
                    })?;
                    let (period, down) = (parse_dur(period)?, parse_dur(down)?);
                    if down >= period {
                        return Err(format!(
                            "HPSOCK_FAULTS: flap down time {down} must be shorter than \
                             the period {period}"
                        ));
                    }
                    plan.filters.push(LinkFilter {
                        scope,
                        kind: LinkFilterKind::Flap { period, down },
                    });
                }
                "crash" => {
                    let (node, at) = val.split_once('@').ok_or_else(|| {
                        format!("HPSOCK_FAULTS: crash takes NODE@TIME, got {val:?}")
                    })?;
                    let node = node.trim().parse::<usize>().map_err(|_| {
                        format!("HPSOCK_FAULTS: crash node must be an integer, got {node:?}")
                    })?;
                    plan.crashes.push((node, SimTime::ZERO + parse_dur(at)?));
                }
                "detect" => plan.recovery.detect = parse_dur(val)?,
                "backoff" => plan.recovery.backoff = parse_dur(val)?,
                "retries" => {
                    plan.recovery.retries = val.trim().parse::<u32>().map_err(|_| {
                        format!(
                            "HPSOCK_FAULTS: retries must be a non-negative integer, got {val:?}"
                        )
                    })?;
                }
                other => {
                    return Err(format!(
                        "HPSOCK_FAULTS: unknown clause {other:?} (expected drop, delay, \
                         flap, crash, detect, retries or backoff)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Split an optional trailing `@SRC->DST` scope off a clause value.
fn split_scope(val: &str) -> Result<(&str, LinkScope), String> {
    match val.split_once('@') {
        None => Ok((val, LinkScope::ANY)),
        Some((body, link)) => {
            let (src, dst) = link.split_once("->").ok_or_else(|| {
                format!("HPSOCK_FAULTS: link scope must be SRC->DST, got {link:?}")
            })?;
            let side = |s: &str, which: &str| -> Result<Option<usize>, String> {
                let s = s.trim();
                if s == "*" {
                    return Ok(None);
                }
                s.parse::<usize>().map(Some).map_err(|_| {
                    format!("HPSOCK_FAULTS: link {which} must be a node index or *, got {s:?}")
                })
            };
            Ok((
                body,
                LinkScope {
                    src: side(src, "source")?,
                    dst: side(dst, "destination")?,
                },
            ))
        }
    }
}

/// Parse a probability in `[0, 1]`.
fn parse_prob(raw: &str, clause: &str) -> Result<f64, String> {
    let p = raw.trim().parse::<f64>().map_err(|_| {
        format!("HPSOCK_FAULTS: {clause} probability must be a number, got {raw:?}")
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!(
            "HPSOCK_FAULTS: {clause} probability must be in [0, 1], got {raw}"
        ));
    }
    Ok(p)
}

/// Parse a duration with an `ns`/`us`/`ms`/`s` suffix.
fn parse_dur(raw: &str) -> Result<Dur, String> {
    let raw = raw.trim();
    let (num, scale_ns) = if let Some(n) = raw.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = raw.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = raw.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = raw.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!(
            "HPSOCK_FAULTS: duration {raw:?} needs an ns/us/ms/s suffix"
        ));
    };
    let v = num.trim().parse::<f64>().map_err(|_| {
        format!("HPSOCK_FAULTS: duration {raw:?} is not a number with an ns/us/ms/s suffix")
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "HPSOCK_FAULTS: duration {raw:?} must be finite and non-negative"
        ));
    }
    Ok(Dur::nanos((v * scale_ns).round() as u64))
}

/// The verdict for one message entering the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MsgFate {
    /// Deliver, with this much added one-way latency.
    Deliver {
        /// Latency added by triggered delay filters.
        extra: Dur,
    },
    /// Lose the whole message (all frames).
    Drop,
}

/// Per-connection compiled fault state, evaluated once per message at the
/// moment its first frame enters the wire.
#[derive(Debug, Clone)]
pub struct ConnFaults {
    chain: Vec<LinkFilterKind>,
    /// Earliest crash time of either endpoint node.
    pub(crate) cut_at: Option<SimTime>,
    /// Loss-detection latency for this link.
    pub(crate) detect: Dur,
}

impl ConnFaults {
    /// Evaluate the filter chain for one message at `now`. Every
    /// probabilistic filter draws exactly once, in chain order, so the
    /// RNG stream advances identically regardless of verdicts.
    pub(crate) fn fate(&self, now: SimTime, rng: &mut SmallRng) -> MsgFate {
        let mut dropped = self.cut_at.is_some_and(|t| now >= t);
        let mut extra = Dur::ZERO;
        for f in &self.chain {
            match *f {
                LinkFilterKind::Drop { p } => {
                    if rng.gen_unit_f64() < p {
                        dropped = true;
                    }
                }
                LinkFilterKind::Delay { p, extra: e } => {
                    if rng.gen_unit_f64() < p {
                        extra += e;
                    }
                }
                LinkFilterKind::Flap { period, down } => {
                    let phase = now.as_nanos() % period.as_nanos().max(1);
                    if phase >= period.as_nanos() - down.as_nanos() {
                        dropped = true;
                    }
                }
            }
        }
        if dropped {
            MsgFate::Drop
        } else {
            MsgFate::Deliver { extra }
        }
    }
}

thread_local! {
    /// Per-thread override consulted by [`configured_plan`] before the
    /// `HPSOCK_FAULTS` environment variable (see [`with_plan`]).
    static FAULT_OVERRIDE: std::cell::RefCell<Option<Option<Arc<FaultPlan>>>> =
        const { std::cell::RefCell::new(None) };
}

/// The fault-plan override active on this thread, if any. Thread pools
/// that fan simulation work out to workers (the experiment sweeps) capture
/// this on the submitting thread and re-install it in each worker via
/// [`with_plan`], so an override scopes like a process-wide setting.
pub fn fault_override() -> Option<Option<Arc<FaultPlan>>> {
    FAULT_OVERRIDE.with(|c| c.borrow().clone())
}

/// Run `f` with [`configured_plan`] returning `plan` on this thread,
/// regardless of `HPSOCK_FAULTS`; the previous override is restored
/// afterwards, including on unwind. `Some(plan)` installs a plan,
/// `None` forces fault-free.
pub fn with_plan<T>(plan: Option<Arc<FaultPlan>>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Option<Arc<FaultPlan>>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            FAULT_OVERRIDE.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(FAULT_OVERRIDE.with(|c| c.replace(Some(plan))));
    f()
}

/// [`with_plan`] from a spec string; panics on a malformed spec (the
/// message names `HPSOCK_FAULTS`). An empty spec scopes a fault-free run.
pub fn with_spec<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("{e}"));
    with_plan(plan.is_active().then(|| Arc::new(plan)), f)
}

/// The active fault plan: the [`with_plan`] override if scoped, else a
/// strict parse of `HPSOCK_FAULTS` (invalid specs abort with a message
/// naming the variable). `None` — the default — means no fault layer
/// state is installed at all.
pub fn configured_plan() -> Option<Arc<FaultPlan>> {
    if let Some(p) = fault_override() {
        return p;
    }
    match std::env::var("HPSOCK_FAULTS") {
        Ok(raw) => {
            let plan = FaultPlan::parse(&raw).unwrap_or_else(|e| panic!("{e}"));
            plan.is_active().then(|| Arc::new(plan))
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_composes_clauses() {
        let p = FaultPlan::parse("drop=0.01,delay=0.5:20us@1->2,flap=5ms:500us,crash=2@40ms")
            .expect("valid spec");
        assert!(p.is_active());
        assert_eq!(p.filters.len(), 3);
        assert_eq!(
            p.filters[0],
            LinkFilter {
                scope: LinkScope::ANY,
                kind: LinkFilterKind::Drop { p: 0.01 }
            }
        );
        assert_eq!(
            p.filters[1].scope,
            LinkScope {
                src: Some(1),
                dst: Some(2)
            }
        );
        assert_eq!(
            p.filters[1].kind,
            LinkFilterKind::Delay {
                p: 0.5,
                extra: Dur::micros(20)
            }
        );
        assert_eq!(p.crashes, vec![(2, SimTime::ZERO + Dur::millis(40))]);
        assert_eq!(p.crash_time(2), Some(SimTime::ZERO + Dur::millis(40)));
        assert_eq!(p.crash_time(0), None);
    }

    #[test]
    fn parse_recovery_knobs_and_defaults() {
        let p = FaultPlan::parse("drop=0.1,detect=250us,retries=3,backoff=2ms").unwrap();
        assert_eq!(
            p.recovery,
            RecoveryCfg {
                detect: Dur::micros(250),
                retries: 3,
                backoff: Dur::millis(2),
            }
        );
        let d = FaultPlan::parse("drop=0.1").unwrap();
        assert_eq!(d.recovery, RecoveryCfg::default());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let p = FaultPlan::parse("").unwrap();
        assert!(!p.is_active());
        assert_eq!(FaultPlan::parse("  ,  ").unwrap(), p);
    }

    #[test]
    fn parse_errors_name_the_variable() {
        for bad in [
            "drop",
            "drop=2.0",
            "drop=x",
            "delay=0.5",
            "delay=0.5:10",
            "flap=1ms:2ms",
            "flap=5ms",
            "crash=1",
            "crash=x@1ms",
            "retries=-1",
            "detect=10",
            "teleport=1",
            "drop=0.1@1",
            "drop=0.1@a->b",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains("HPSOCK_FAULTS"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn durations_parse_all_suffixes() {
        assert_eq!(parse_dur("250ns").unwrap(), Dur::nanos(250));
        assert_eq!(parse_dur(" 20us ").unwrap(), Dur::micros(20));
        assert_eq!(parse_dur("5ms").unwrap(), Dur::millis(5));
        assert_eq!(parse_dur("1.5s").unwrap(), Dur::millis(1500));
        assert_eq!(parse_dur("0.5us").unwrap(), Dur::nanos(500));
        assert!(parse_dur("10").is_err(), "suffix required");
        assert!(parse_dur("-1ms").is_err());
    }

    #[test]
    fn scope_filters_compile_per_link() {
        let p = FaultPlan::parse("drop=0.5@0->1,delay=1.0:10us@*->1,crash=3@1ms").unwrap();
        let c01 = p.compile(0, 1).expect("both filters apply");
        assert_eq!(c01.chain.len(), 2);
        let c21 = p.compile(2, 1).expect("delay applies");
        assert_eq!(c21.chain.len(), 1);
        assert!(p.compile(1, 0).is_none(), "untouched link compiles to None");
        let c03 = p.compile(0, 3).expect("crash of node 3 cuts the link");
        assert!(c03.chain.is_empty());
        assert_eq!(c03.cut_at, Some(SimTime::ZERO + Dur::millis(1)));
    }

    #[test]
    fn fate_is_deterministic_and_draws_uniformly() {
        let plan = FaultPlan::parse("drop=0.3,delay=0.5:10us").unwrap();
        let cf = plan.compile(0, 1).unwrap();
        let run = || {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..64)
                .map(|i| cf.fate(SimTime::from_nanos(i * 1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same seed, same fates");
        let fates = run();
        assert!(fates.iter().any(|f| matches!(f, MsgFate::Drop)));
        assert!(fates
            .iter()
            .any(|f| matches!(f, MsgFate::Deliver { extra } if *extra > Dur::ZERO)));
    }

    #[test]
    fn flap_drops_only_in_the_down_window() {
        let plan = FaultPlan::parse("flap=1ms:100us").unwrap();
        let cf = plan.compile(0, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let up = cf.fate(SimTime::from_nanos(100_000), &mut rng);
        assert!(matches!(up, MsgFate::Deliver { .. }));
        let down = cf.fate(SimTime::from_nanos(950_000), &mut rng);
        assert_eq!(down, MsgFate::Drop);
        let next_up = cf.fate(SimTime::from_nanos(1_000_000), &mut rng);
        assert!(
            matches!(next_up, MsgFate::Deliver { .. }),
            "next period is up"
        );
    }

    #[test]
    fn crash_cuts_after_the_scheduled_time() {
        let plan = FaultPlan::parse("crash=1@1ms").unwrap();
        let cf = plan.compile(0, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            cf.fate(SimTime::from_nanos(999_999), &mut rng),
            MsgFate::Deliver { .. }
        ));
        assert_eq!(
            cf.fate(SimTime::from_nanos(1_000_000), &mut rng),
            MsgFate::Drop
        );
    }

    #[test]
    fn with_plan_overrides_and_restores() {
        assert!(configured_plan().is_none(), "default is fault-free");
        let plan = Arc::new(FaultPlan::parse("drop=0.5").unwrap());
        let inner = with_plan(Some(Arc::clone(&plan)), || {
            assert_eq!(configured_plan().as_deref(), Some(plan.as_ref()));
            with_plan(None, || configured_plan().is_none())
        });
        assert!(inner, "nested override wins inside its scope");
        assert!(configured_plan().is_none(), "override restored");
        let via_spec = with_spec("drop=0.25", configured_plan);
        assert_eq!(via_spec.unwrap().filters.len(), 1);
        assert!(
            with_spec("", configured_plan).is_none(),
            "an empty spec scopes a fault-free run"
        );
    }
}
